#![forbid(unsafe_code)]
//! # tane-repro
//!
//! Umbrella crate for the TANE reproduction suite. Re-exports the public API
//! of every workspace crate so that examples and integration tests can write
//! `use tane_repro::prelude::*;`.
//!
//! The individual crates:
//!
//! * [`tane_util`] — attribute-set bitsets and fast hashing.
//! * [`tane_relation`] — typed relations, dictionary encoding, CSV I/O.
//! * [`tane_datasets`] — synthetic generators emulating the paper's datasets.
//! * [`tane_partition`] — stripped partitions, products, `g3` error.
//! * [`tane_core`] — the TANE algorithm (exact + approximate, memory + disk).
//! * [`tane_fdep`] — the FDEP baseline (Savnik & Flach 1993).
//! * [`tane_baselines`] — brute-force oracle and ablation variants.

pub use tane_baselines as baselines;
pub use tane_core as core;
pub use tane_datasets as datasets;
pub use tane_fdep as fdep;
pub use tane_partition as partition;
pub use tane_relation as relation;
pub use tane_util as util;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use tane_core::{ApproxTaneConfig, Fd, TaneConfig, TaneResult};
    pub use tane_relation::{Relation, RelationBuilder, Schema};
    pub use tane_util::AttrSet;
}
