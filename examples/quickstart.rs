//! Quickstart: discover all minimal functional dependencies of a relation.
//!
//! Builds the example relation from Figure 1 of the TANE paper, runs the
//! discovery, and prints the dependencies with attribute names — including
//! the `{B,C} -> A` dependency the paper walks through in Example 2.
//!
//! Run with: `cargo run --example quickstart`

use tane_repro::prelude::*;
use tane_repro::relation::Value;

fn main() {
    // The paper's Figure 1: eight rows over attributes A, B, C, D.
    let schema = Schema::new(["A", "B", "C", "D"]).expect("valid schema");
    let mut builder = Relation::builder(schema);
    for row in [
        ["1", "a", "$", "Flower"],
        ["1", "A", "£", "Tulip"],
        ["2", "A", "$", "Daffodil"],
        ["2", "A", "$", "Flower"],
        ["2", "b", "£", "Lily"],
        ["3", "b", "$", "Orchid"],
        ["3", "c", "£", "Flower"],
        ["3", "c", "#", "Rose"],
    ] {
        builder
            .push_row(row.map(Value::from))
            .expect("row matches schema");
    }
    let relation = builder.build();

    let result = tane_repro::core::discover_fds(&relation, &TaneConfig::default())
        .expect("in-memory discovery cannot fail");

    println!(
        "{} minimal functional dependencies in {} rows x {} attributes:",
        result.count(),
        relation.num_rows(),
        relation.num_attrs()
    );
    print!("{}", result.render(relation.schema()));

    println!("\ncandidate keys:");
    for key in &result.keys {
        println!("  {}", relation.schema().display_set(*key));
    }

    println!("\nsearch statistics:");
    println!("  lattice levels: {}", result.stats.levels);
    println!("  attribute sets processed: {}", result.stats.sets_total);
    println!("  validity tests: {}", result.stats.validity_tests);
    println!("  time: {:?}", result.stats.elapsed);

    // The dependency the paper proves in Example 2.
    let bc_to_a = Fd::new(AttrSet::from_indices([1, 2]), 0);
    assert!(
        result.fds.contains(&bc_to_a),
        "{{B,C}} -> A must be discovered"
    );
    println!(
        "\n{} holds, as shown in Example 2 of the paper.",
        bc_to_a.display_with(relation.schema().names())
    );
}
