//! Schema reverse engineering: recover structure from a denormalized table.
//!
//! One of the applications the paper lists for FD discovery (Section 1) is
//! database reverse engineering. Given a flat orders table, this example
//! discovers its dependencies, derives the candidate keys, and proposes a
//! lossless decomposition: every non-key single-attribute determinant with
//! its dependents becomes its own table (a 3NF-style synthesis sketch).
//!
//! Run with: `cargo run --example schema_reverse_engineering`

use tane_repro::core::discover_fds;
use tane_repro::datasets::{planted_relation, PLANTED_NAMES};
use tane_repro::prelude::*;

fn main() {
    // A denormalized orders table: order_id is the key; customer_city
    // depends on customer_id; product_price depends on product_id.
    let relation = planted_relation(800, 0.0, 11);
    let names: Vec<String> = PLANTED_NAMES.iter().map(|s| s.to_string()).collect();

    let result = discover_fds(&relation, &TaneConfig::default()).expect("discovery");
    println!("discovered {} minimal dependencies", result.count());

    // Candidate keys fall out of the search for free (key pruning).
    println!("\ncandidate keys:");
    for key in &result.keys {
        println!("  {}", relation.schema().display_set(*key));
    }
    assert!(
        result.keys.contains(&AttrSet::singleton(0)),
        "order_id must be a key"
    );

    // Partial-dependency analysis: single-attribute determinants that are
    // not keys indicate embedded entities.
    println!("\nembedded entities (non-key single-attribute determinants):");
    let mut proposed: Vec<(usize, Vec<usize>)> = Vec::new();
    for a in 0..relation.num_attrs() {
        let lhs = AttrSet::singleton(a);
        if result.keys.contains(&lhs) {
            continue;
        }
        let dependents: Vec<usize> = result
            .fds
            .iter()
            .filter(|fd| fd.lhs == lhs)
            .map(|fd| fd.rhs)
            .collect();
        if !dependents.is_empty() {
            proposed.push((a, dependents));
        }
    }
    for (det, deps) in &proposed {
        let dep_names: Vec<&str> = deps.iter().map(|&d| names[d].as_str()).collect();
        println!("  {} determines {}", names[*det], dep_names.join(", "));
    }

    // Propose the decomposition.
    println!("\nproposed decomposition:");
    let mut extracted = AttrSet::empty();
    for (det, deps) in &proposed {
        let mut table = vec![names[*det].clone()];
        table.extend(deps.iter().map(|&d| names[d].clone()));
        for &d in deps {
            extracted.insert(d);
        }
        println!("  table ({})  -- key: {}", table.join(", "), names[*det]);
    }
    let remaining: Vec<String> = (0..relation.num_attrs())
        .filter(|a| !extracted.contains(*a))
        .map(|a| names[a].clone())
        .collect();
    println!("  table ({})  -- key: {}", remaining.join(", "), names[0]);

    // The planted structure must be recovered: customer_id -> customer_city
    // and product_id -> product_price.
    assert!(proposed
        .iter()
        .any(|(d, deps)| *d == 1 && deps.contains(&2)));
    assert!(proposed
        .iter()
        .any(|(d, deps)| *d == 3 && deps.contains(&4)));
    println!("\nrecovered both planted entities (customers, products).");
}
