//! Algorithm comparison: TANE vs FDEP vs naive levelwise, live.
//!
//! A miniature of the paper's Figure 4: run all three algorithms on growing
//! copies of the Wisconsin-shaped dataset and watch FDEP's quadratic pair
//! scan fall behind TANE's near-linear partition products, while all three
//! keep producing the identical dependency set.
//!
//! Run with: `cargo run --release --example algorithm_comparison`

use tane_repro::baselines::naive_levelwise_fds;
use tane_repro::core::discover_fds;
use tane_repro::datasets::scaled_wbc;
use tane_repro::fdep::fdep_fds;
use tane_repro::prelude::*;
use tane_repro::util::Stopwatch;

fn main() {
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>12}  (seconds)",
        "copies", "rows", "TANE", "FDEP", "naive"
    );
    for copies in [1usize, 2, 4] {
        let relation = scaled_wbc(copies);

        let sw = Stopwatch::start();
        let tane = discover_fds(&relation, &TaneConfig::default()).expect("discovery");
        let tane_secs = sw.elapsed_secs();

        let sw = Stopwatch::start();
        let (fdep, _) = fdep_fds(&relation);
        let fdep_secs = sw.elapsed_secs();

        let sw = Stopwatch::start();
        let (naive, _) = naive_levelwise_fds(&relation, relation.num_attrs());
        let naive_secs = sw.elapsed_secs();

        assert_eq!(tane.fds, fdep, "FDEP must agree with TANE");
        assert_eq!(tane.fds, naive, "the naive baseline must agree with TANE");

        println!(
            "{copies:>6} {:>8} {tane_secs:>12.4} {fdep_secs:>12.4} {naive_secs:>12.4}",
            relation.num_rows()
        );
    }
    println!("\nall three algorithms produced identical dependency sets at every size.");
    println!("(the paper's Figure 4 extends this sweep to 357,888 rows, where only");
    println!(" TANE remains feasible — run `repro figure4` for the full series)");
}
