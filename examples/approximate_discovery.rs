//! Approximate dependencies: find rules that *almost* hold.
//!
//! Generates a denormalized orders table in which `product_id ->
//! product_price` is violated by a small rate of data-entry errors, then
//! sweeps the `g3` threshold ε to show how the approximate cover changes —
//! the scenario the paper's Section 1 motivates ("some rows contain errors
//! or represent exceptions to the rule").
//!
//! Run with: `cargo run --example approximate_discovery`

use tane_repro::core::{discover_approx_fds, discover_fds, fd_error};
use tane_repro::datasets::{planted_relation, PLANTED_NAMES};
use tane_repro::prelude::*;

fn main() {
    // 2000 orders; 3% of product_price cells are corrupted.
    let relation = planted_relation(2000, 0.03, 42);
    let names: Vec<String> = PLANTED_NAMES.iter().map(|s| s.to_string()).collect();

    // Exact discovery misses the damaged rule entirely.
    let exact = discover_fds(&relation, &TaneConfig::default()).expect("discovery");
    let product_to_price = Fd::new(AttrSet::singleton(3), 4);
    println!("exact FDs found: {}", exact.count());
    println!(
        "  contains product_id -> product_price? {}",
        exact.fds.contains(&product_to_price)
    );
    println!(
        "  actual g3 error of that rule: {:.4}",
        fd_error(&relation, product_to_price)
    );

    // Sweep ε: the rule appears once the threshold passes its error.
    println!("\nepsilon sweep:");
    println!(
        "{:>8}  {:>6}  {:>32}",
        "epsilon", "N", "product_id -> product_price?"
    );
    for eps in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let result =
            discover_approx_fds(&relation, &ApproxTaneConfig::new(eps)).expect("discovery");
        let found = result.fds.contains(&product_to_price);
        println!("{eps:>8}  {:>6}  {:>32}", result.count(), found);
    }

    // At a threshold above the noise rate, inspect the discovered cover.
    let eps = 0.05;
    let result = discover_approx_fds(&relation, &ApproxTaneConfig::new(eps)).expect("discovery");
    println!("\napproximate dependencies at eps = {eps} (showing single-attribute LHS):");
    for fd in result.fds.iter().filter(|fd| fd.lhs.len() <= 1) {
        println!(
            "  {:<40} g3 = {:.4}",
            fd.display_with(&names),
            fd_error(&relation, *fd)
        );
    }
    assert!(result.fds.contains(&product_to_price));
}
