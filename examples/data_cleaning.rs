//! Data cleaning: pinpoint the rows that break a near-dependency.
//!
//! The paper's abstract highlights that with partitions "the erroneous or
//! exceptional rows can be identified easily". This example plants known
//! errors into `product_id -> product_price`, rediscovers the rule as an
//! approximate dependency, extracts a minimum set of violating rows, and
//! verifies that removing them makes the rule exact again.
//!
//! Run with: `cargo run --example data_cleaning`

use tane_repro::core::{discover_approx_fds, fd_error, violating_rows};
use tane_repro::datasets::{planted_relation, PLANTED_NAMES};
use tane_repro::prelude::*;
use tane_repro::relation::Value;

fn main() {
    let relation = planted_relation(1500, 0.02, 7);
    let names: Vec<String> = PLANTED_NAMES.iter().map(|s| s.to_string()).collect();

    // Step 1: find rules that hold on at least 95% of the data.
    let result = discover_approx_fds(&relation, &ApproxTaneConfig::new(0.05)).expect("discovery");

    // Step 2: among them, pick the near-rules — valid approximately but not
    // exactly — with small LHS (the interesting cleaning candidates).
    println!("near-dependencies (0 < g3 <= 0.05, single-attribute LHS):");
    let mut near = Vec::new();
    for fd in result.fds.iter().filter(|fd| fd.lhs.len() == 1) {
        let err = fd_error(&relation, *fd);
        if err > 0.0 {
            println!("  {:<40} g3 = {err:.4}", fd.display_with(&names));
            near.push(*fd);
        }
    }

    // Step 3: for the product-price rule, identify the culprits.
    let rule = Fd::new(AttrSet::singleton(3), 4);
    assert!(
        near.contains(&rule),
        "the planted near-rule must be rediscovered"
    );
    let bad_rows = violating_rows(&relation, rule);
    println!(
        "\n{}: {} of {} rows violate the rule",
        rule.display_with(&names),
        bad_rows.len(),
        relation.num_rows()
    );
    for &t in bad_rows.iter().take(5) {
        let t = t as usize;
        println!(
            "  row {t}: product_id={} has outlier price={}",
            relation.column_codes(3)[t],
            relation.column_codes(4)[t],
        );
    }
    if bad_rows.len() > 5 {
        println!("  ... and {} more", bad_rows.len() - 5);
    }

    // Step 4: drop the culprits and verify the rule now holds exactly.
    let keep: Vec<usize> = (0..relation.num_rows())
        .filter(|t| !bad_rows.contains(&(*t as u32)))
        .collect();
    let schema = Schema::new(PLANTED_NAMES).expect("valid schema");
    let mut builder = Relation::builder(schema);
    for &t in &keep {
        builder
            .push_row(
                (0..relation.num_attrs())
                    .map(|a| Value::from(i64::from(relation.column_codes(a)[t]))),
            )
            .expect("row matches schema");
    }
    let cleaned = builder.build();
    let err_after = fd_error(&cleaned, rule);
    println!(
        "\nafter removing {} rows: g3 = {err_after} (rule now {})",
        bad_rows.len(),
        if err_after == 0.0 {
            "holds exactly"
        } else {
            "still violated"
        }
    );
    assert_eq!(err_after, 0.0);
}
