//! Association rules from equivalence classes — the extension the paper's
//! concluding remarks sketch ("an equivalence class corresponds then to a
//! particular value combination of the attribute set").
//!
//! Mines attribute–value rules from the orders table and shows the unified
//! view: a functional dependency is exactly the case where *every* class of
//! the LHS yields a confidence-1.0 rule.
//!
//! Run with: `cargo run --release --example association_rules`

use tane_repro::core::{discover_fds, mine_assoc_rules, AssocConfig};
use tane_repro::datasets::{planted_relation, PLANTED_NAMES};
use tane_repro::prelude::*;

fn main() {
    let relation = planted_relation(400, 0.0, 21);
    let names: Vec<String> = PLANTED_NAMES.iter().map(|s| s.to_string()).collect();

    // Mine rules with modest support and high confidence.
    let config = AssocConfig::new(0.02, 0.9, 2);
    let rules = mine_assoc_rules(&relation, &config).expect("mining cannot fail in memory");
    println!(
        "{} association rules at support >= 2%, confidence >= 90%",
        rules.len()
    );

    // Show the strongest rules about product prices.
    println!("\nrules predicting product_price (top 8 by support):");
    let mut price_rules: Vec<_> = rules.iter().filter(|r| r.rhs_attr == 4).collect();
    price_rules.sort_by(|a, b| b.support_rows.cmp(&a.support_rows));
    for rule in price_rules.iter().take(8) {
        println!("  {}", rule.display_with(&names));
    }

    // The unified view: product_id -> product_price is an FD, so every
    // frequent product_id class appears as a confidence-1.0 rule.
    let fds = discover_fds(&relation, &TaneConfig::default()).expect("discovery");
    let fd = Fd::new(AttrSet::singleton(3), 4);
    assert!(fds.fds.contains(&fd), "planted FD must be discovered");
    let fd_rules: Vec<_> = rules
        .iter()
        .filter(|r| r.lhs_attrs == AttrSet::singleton(3) && r.rhs_attr == 4)
        .collect();
    println!(
        "\nproduct_id -> product_price is a functional dependency;\n\
         its {} frequent classes all mine as rules with confidence 1.0: {}",
        fd_rules.len(),
        fd_rules.iter().all(|r| r.confidence() == 1.0)
    );
    assert!(fd_rules.iter().all(|r| r.confidence() == 1.0));
}
