//! Cross-crate integration tests: CSV in → discovery → verified cover out,
//! exercising the public API exactly the way the examples and the CLI do.

use tane_repro::baselines::{naive_levelwise_fds, verify_minimal_cover};
use tane_repro::core::{discover_approx_fds, discover_fds, violating_rows};
use tane_repro::fdep::fdep_fds;
use tane_repro::prelude::*;
use tane_repro::relation::csv::{read_csv_from, write_csv, CsvOptions};

/// The paper's Figure 1 relation, entered as CSV text.
const FIGURE1_CSV: &str = "\
A,B,C,D
1,a,$,Flower
1,AA,£,Tulip
2,AA,$,Daffodil
2,AA,$,Flower
2,b,£,Lily
3,b,$,Orchid
3,c,£,Flower
3,c,#,Rose
";

fn figure1() -> Relation {
    read_csv_from(FIGURE1_CSV.as_bytes(), &CsvOptions::default()).expect("valid CSV")
}

#[test]
fn csv_to_verified_cover() {
    let r = figure1();
    assert_eq!(r.num_rows(), 8);
    assert_eq!(r.num_attrs(), 4);
    let result = discover_fds(&r, &TaneConfig::default()).unwrap();
    // The full pipeline output is a provably perfect minimal cover.
    let issues = verify_minimal_cover(&r, &result.fds, 4, 0.0);
    assert!(issues.is_empty(), "{issues:?}");
    // Example 2's dependency came through the whole pipeline.
    assert!(result
        .fds
        .contains(&Fd::new(AttrSet::from_indices([1, 2]), 0)));
}

#[test]
fn all_four_algorithms_agree_end_to_end() {
    let r = figure1();
    let tane = discover_fds(&r, &TaneConfig::default()).unwrap().fds;
    let tane_disk = discover_fds(&r, &TaneConfig::disk(1 << 16)).unwrap().fds;
    let (fdep, _) = fdep_fds(&r);
    let (naive, _) = naive_levelwise_fds(&r, r.num_attrs());
    assert_eq!(tane, tane_disk);
    assert_eq!(tane, fdep);
    assert_eq!(tane, naive);
}

#[test]
fn csv_roundtrip_preserves_dependencies() {
    let r = figure1();
    let before = discover_fds(&r, &TaneConfig::default()).unwrap().fds;
    let mut buf = Vec::new();
    write_csv(&r, &mut buf, b',').unwrap();
    let r2 = read_csv_from(buf.as_slice(), &CsvOptions::default()).unwrap();
    let after = discover_fds(&r2, &TaneConfig::default()).unwrap().fds;
    assert_eq!(before, after);
}

#[test]
fn synthetic_datasets_flow_through_discovery() {
    // Small representatives of each generator family.
    let wbc = tane_repro::datasets::wisconsin_breast_cancer();
    let result = discover_fds(&wbc, &TaneConfig::default()).unwrap();
    assert!(result.count() > 0);

    let planted = tane_repro::datasets::planted_relation(300, 0.0, 5);
    let result = discover_fds(&planted, &TaneConfig::default()).unwrap();
    // order_id is the planted key.
    assert!(result.keys.contains(&AttrSet::singleton(0)));
    assert!(result.fds.contains(&Fd::new(AttrSet::singleton(1), 2)));
}

#[test]
fn approximate_pipeline_finds_and_localizes_exceptions() {
    let r = tane_repro::datasets::planted_relation(600, 0.04, 9);
    let rule = Fd::new(AttrSet::singleton(3), 4);

    // Not an exact FD…
    let exact = discover_fds(&r, &TaneConfig::default()).unwrap();
    assert!(!exact.fds.contains(&rule));

    // …but an approximate one at a tolerant threshold…
    let approx = discover_approx_fds(&r, &ApproxTaneConfig::new(0.1)).unwrap();
    assert!(approx.fds.contains(&rule));

    // …whose violations are localized and sufficient.
    let bad = violating_rows(&r, rule);
    assert!(!bad.is_empty());
    assert!(bad.len() < r.num_rows() / 10);
}

#[test]
fn paper_scale_up_construction_end_to_end() {
    let r = figure1();
    let base = discover_fds(&r, &TaneConfig::default()).unwrap().fds;
    for n in [2usize, 5, 16] {
        let big = r.concat_disjoint_copies(n).unwrap();
        assert_eq!(big.num_rows(), 8 * n);
        let fds = discover_fds(&big, &TaneConfig::default()).unwrap().fds;
        assert_eq!(fds, base, "×{n} must preserve the cover");
    }
}

#[test]
fn disk_and_memory_agree_on_a_bigger_input() {
    let r = tane_repro::datasets::scaled_wbc(4);
    let mem = discover_fds(&r, &TaneConfig::default()).unwrap();
    let disk = discover_fds(&r, &TaneConfig::disk(1 << 14)).unwrap();
    assert_eq!(mem.fds, disk.fds);
    assert!(disk.stats.disk_writes > 0);
    assert!(disk.stats.disk_reads > 0, "tiny cache must force reloads");
}

#[test]
fn max_lhs_budget_is_respected_through_the_stack() {
    let r = tane_repro::datasets::wisconsin_breast_cancer();
    for m in [1usize, 2, 3] {
        let result = discover_fds(&r, &TaneConfig::default().with_max_lhs(m)).unwrap();
        assert!(result.fds.iter().all(|fd| fd.lhs.len() <= m));
        assert!(result.stats.levels <= m + 1);
    }
}
