//! Integration tests for the beyond-the-paper extensions: FD-cover
//! reasoning, association rules, and the alternative error measures —
//! exercised together on shared synthetic data.

use tane_repro::core::{
    attribute_closure, candidate_keys, discover_fds, implies, mine_assoc_rules, remove_redundant,
    AssocConfig,
};
use tane_repro::partition::{g1_error, g2_error, g3_error, StrippedPartition};
use tane_repro::prelude::*;

fn orders() -> Relation {
    tane_repro::datasets::planted_relation(400, 0.0, 13)
}

#[test]
fn discovered_cover_supports_armstrong_reasoning() {
    let r = orders();
    let result = discover_fds(&r, &TaneConfig::default()).unwrap();

    // The key's closure is everything.
    let closure = attribute_closure(&result.fds, AttrSet::singleton(0));
    assert_eq!(closure, r.schema().all_attrs());

    // customer_id determines its city transitively through the cover.
    assert!(implies(&result.fds, Fd::new(AttrSet::singleton(1), 2)));
    // ... but not the product price.
    assert!(!implies(&result.fds, Fd::new(AttrSet::singleton(1), 4)));

    // Keys derived from the cover match the keys the search reported.
    let derived = candidate_keys(&result.fds, r.num_attrs());
    assert_eq!(derived, result.keys);

    // The reduced cover still implies every discovered dependency.
    let reduced = remove_redundant(&result.fds);
    for fd in &result.fds {
        assert!(implies(&reduced, *fd));
    }
}

#[test]
fn association_rules_refine_functional_dependencies() {
    let r = orders();
    let fds = discover_fds(&r, &TaneConfig::default()).unwrap().fds;
    let rules = mine_assoc_rules(&r, &AssocConfig::new(0.01, 1.0, 1)).unwrap();

    // Every confidence-1.0 rule whose LHS attribute functionally determines
    // the RHS attribute is consistent with the FD; conversely the FD's
    // frequent classes must all appear as rules.
    let fd = Fd::new(AttrSet::singleton(1), 2); // customer_id -> customer_city
    assert!(fds.contains(&fd));
    let fd_rules: Vec<_> = rules
        .iter()
        .filter(|rule| rule.lhs_attrs == fd.lhs && rule.rhs_attr == fd.rhs)
        .collect();
    assert!(!fd_rules.is_empty());
    assert!(fd_rules.iter().all(|rule| rule.confidence() == 1.0));
}

#[test]
fn all_three_error_measures_agree_on_validity() {
    let r = tane_repro::datasets::planted_relation(500, 0.05, 3);
    for (lhs, rhs) in [(1usize, 2usize), (3, 4), (1, 4)] {
        let x = AttrSet::singleton(lhs);
        let px = StrippedPartition::from_attr_set(&r, x);
        let pxa = StrippedPartition::from_attr_set(&r, x.with(rhs));
        let (g1, g2, g3) = (
            g1_error(&px, &pxa),
            g2_error(&px, &pxa),
            g3_error(&px, &pxa),
        );
        // Zero together or positive together.
        assert_eq!(g1 == 0.0, g2 == 0.0, "lhs={lhs} rhs={rhs}");
        assert_eq!(g2 == 0.0, g3 == 0.0, "lhs={lhs} rhs={rhs}");
        // Known orderings.
        assert!(g1 <= g2 + 1e-12);
        assert!(g3 <= g2 + 1e-12);
    }
}
