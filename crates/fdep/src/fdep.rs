//! FDEP assembly: negative cover → positive cover.

use crate::agree::{agree_sets, max_invalid_lhs};
use crate::hitting::minimal_hitting_sets;
use tane_relation::Relation;
use tane_util::{canonical_fds, AttrSet, Fd, Stopwatch};

/// Statistics of an FDEP run, for the benchmark harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FdepStats {
    /// Row pairs compared — always `|r|·(|r|−1)/2`, the quadratic phase.
    pub pairs_compared: usize,
    /// Distinct agree sets found.
    pub distinct_agree_sets: usize,
    /// Maximal invalid dependencies across all rhs (size of the negative
    /// cover).
    pub max_invalid_deps: usize,
    /// Wall-clock time of the whole run.
    pub elapsed: std::time::Duration,
}

/// Discovers all minimal non-trivial functional dependencies with the FDEP
/// algorithm (Savnik & Flach 1993). Output is identical to
/// `tane_core::discover_fds`; only the method (and its scaling in `|r|`)
/// differs.
pub fn fdep_fds(relation: &Relation) -> (Vec<Fd>, FdepStats) {
    let sw = Stopwatch::start();
    let n_attrs = relation.num_attrs();
    let n_rows = relation.num_rows();
    let mut stats = FdepStats {
        pairs_compared: n_rows * n_rows.saturating_sub(1) / 2,
        ..FdepStats::default()
    };

    // Phase 1: negative cover.
    let agree = agree_sets(relation);
    stats.distinct_agree_sets = agree.len();

    // Phase 2: per rhs, minimal transversals of the complement hypergraph.
    let r_all = AttrSet::full(n_attrs);
    let mut fds = Vec::new();
    for rhs in 0..n_attrs {
        let neg = max_invalid_lhs(&agree, rhs);
        stats.max_invalid_deps += neg.len();
        let lhs_universe = r_all.without(rhs);
        // X valid ⟺ X ⊈ M for all maximal invalid M
        //         ⟺ X ∩ (lhs_universe ∖ M) ≠ ∅ for all M.
        let edges: Vec<AttrSet> = neg.iter().map(|&m| lhs_universe.difference(m)).collect();
        for lhs in minimal_hitting_sets(&edges) {
            fds.push(Fd::new(lhs, rhs));
        }
    }
    stats.elapsed = sw.elapsed();
    (canonical_fds(fds), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_baselines::brute_force_fds;
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn matches_brute_force_on_figure1() {
        let r = figure1();
        let (fds, stats) = fdep_fds(&r);
        assert_eq!(fds, brute_force_fds(&r, 4));
        assert_eq!(stats.pairs_compared, 8 * 7 / 2);
        assert!(stats.distinct_agree_sets > 0);
        assert!(stats.max_invalid_deps > 0);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::builder(Schema::new(["A", "B"]).unwrap()).build();
        let (fds, stats) = fdep_fds(&r);
        assert_eq!(fds, brute_force_fds(&r, 2));
        assert_eq!(stats.pairs_compared, 0);
    }

    #[test]
    fn single_row() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![1], vec![2]]).unwrap();
        let (fds, _) = fdep_fds(&r);
        assert_eq!(fds, brute_force_fds(&r, 2));
    }

    #[test]
    fn constant_columns() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![1, 1, 1], vec![0, 1, 2]]).unwrap();
        let (fds, _) = fdep_fds(&r);
        assert_eq!(fds, brute_force_fds(&r, 2));
        assert!(fds.contains(&Fd::new(AttrSet::empty(), 0)));
    }

    #[test]
    fn duplicate_rows() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![0, 0, 1], vec![1, 1, 0]]).unwrap();
        let (fds, _) = fdep_fds(&r);
        assert_eq!(fds, brute_force_fds(&r, 2));
    }

    #[test]
    fn matches_tane_on_copies() {
        let r = figure1().concat_disjoint_copies(3).unwrap();
        let (fdep, _) = fdep_fds(&r);
        let tane = tane_core::discover_fds(&r, &tane_core::TaneConfig::default()).unwrap();
        assert_eq!(fdep, tane.fds);
    }
}
