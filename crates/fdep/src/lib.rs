#![forbid(unsafe_code)]
//! FDEP — the comparison baseline of the paper's experiments.
//!
//! Savnik & Flach's FDEP (*Bottom-up induction of functional dependencies
//! from relations*, KDD'93) is the algorithm TANE is measured against in
//! Tables 1 and 3 and Figure 4. It works in two phases (paper, Section 6,
//! "Still another approach"):
//!
//! 1. **Negative cover** — compare all pairs of rows; each pair's *agree
//!    set* `ag(t,u)` witnesses the invalid dependencies `ag(t,u) → A` for
//!    every `A` the rows disagree on. Keeping only the maximal invalid
//!    left-hand sides per rhs yields the maximal invalid dependencies. This
//!    phase is Ω(|r|²) in the number of rows — the source of FDEP's
//!    quadratic curve in Figure 4 — but polynomial in `|R|`.
//! 2. **Positive cover** — a valid LHS is exactly one that is *not* a
//!    subset of any maximal invalid LHS, so the minimal valid LHSs are the
//!    minimal transversals of the complement hypergraph
//!    `{ (R∖{A})∖X : X maximal invalid for A }`. This phase is exponential
//!    in `|R|` but independent of `|r|`.
//!
//! The modules mirror the two phases: [`agree`] and [`hitting`], assembled
//! in [`fdep`].

pub mod agree;
pub mod fdep;
pub mod hitting;

pub use agree::{agree_sets, max_invalid_lhs};
pub use fdep::{fdep_fds, FdepStats};
pub use hitting::minimal_hitting_sets;
