//! Agree sets and the negative cover.
//!
//! The agree set `ag(t,u)` of two rows is the set of attributes on which
//! they coincide. Every pair of distinct rows refutes the dependencies
//! `ag(t,u) → A` for the attributes `A ∉ ag(t,u)` they disagree on; the
//! *negative cover* for rhs `A` is the family of maximal such left-hand
//! sides. `X → A` is valid iff `X` is a subset of **no** member of that
//! family.

use tane_relation::Relation;
use tane_util::{AttrSet, FxHashSet};

/// Computes the distinct agree sets of all `|r|·(|r|−1)/2` row pairs.
///
/// Pairs of fully identical rows produce the full attribute set `R`, which
/// refutes nothing (there is no `A ∉ R`) but is still returned — the
/// maximalization in [`max_invalid_lhs`] discards it per rhs.
///
/// This is deliberately the quadratic pairwise scan of the FDEP paper; its
/// Ω(|r|²) growth is what Figure 4 of the TANE paper demonstrates.
pub fn agree_sets(relation: &Relation) -> FxHashSet<AttrSet> {
    let n = relation.num_rows();
    let n_attrs = relation.num_attrs();
    let mut out: FxHashSet<AttrSet> = FxHashSet::default();
    // Column-slice borrow once; the inner loop reads straight from the
    // dictionary codes.
    let columns: Vec<&[u32]> = (0..n_attrs).map(|a| relation.column_codes(a)).collect();
    for t in 0..n {
        for u in (t + 1)..n {
            let mut s = AttrSet::empty();
            for (a, col) in columns.iter().enumerate() {
                if col[t] == col[u] {
                    s.insert(a);
                }
            }
            out.insert(s);
        }
    }
    out
}

/// For one rhs `A`, the maximal invalid left-hand sides: maximal agree sets
/// not containing `A`. Any `X ⊆ R∖{A}` is a valid LHS for `A` iff it is not
/// a subset of any returned set.
pub fn max_invalid_lhs(agree: &FxHashSet<AttrSet>, rhs: usize) -> Vec<AttrSet> {
    let candidates: Vec<AttrSet> = agree.iter().copied().filter(|x| !x.contains(rhs)).collect();
    maximalize(candidates)
}

/// Removes every set that is a proper subset of another set in the list.
fn maximalize(mut sets: Vec<AttrSet>) -> Vec<AttrSet> {
    // Sort by descending cardinality: a set can only be contained in an
    // earlier (larger-or-equal) one.
    sets.sort_unstable_by_key(|s| std::cmp::Reverse(s.len()));
    let mut out: Vec<AttrSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| s.is_subset_of(*m)) {
            out.push(s);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn agree_sets_of_figure1() {
        let r = figure1();
        let sets = agree_sets(&r);
        // Rows 2,3 (0-based) agree on A,B,C; rows 3,4 agree on A only.
        assert!(sets.contains(&AttrSet::from_indices([0, 1, 2])));
        assert!(sets.contains(&AttrSet::singleton(0)));
        // Nothing agrees on everything (no duplicate rows).
        assert!(!sets.contains(&AttrSet::full(4)));
        // Agree sets are closed over actual pair structure: spot-check one.
        assert_eq!(r.agree_set(2, 3), AttrSet::from_indices([0, 1, 2]));
    }

    #[test]
    fn duplicate_rows_produce_full_agree_set() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![1, 1], vec![2, 2]]).unwrap();
        let sets = agree_sets(&r);
        assert!(sets.contains(&AttrSet::full(2)));
        // And it refutes nothing.
        assert!(max_invalid_lhs(&sets, 0).is_empty());
        assert!(max_invalid_lhs(&sets, 1).is_empty());
    }

    #[test]
    fn empty_and_single_row_have_no_pairs() {
        let schema = Schema::new(["A"]).unwrap();
        let empty = Relation::builder(schema.clone()).build();
        assert!(agree_sets(&empty).is_empty());
        let single = Relation::from_codes(schema, vec![vec![7]]).unwrap();
        assert!(agree_sets(&single).is_empty());
    }

    #[test]
    fn max_invalid_lhs_maximalizes() {
        let mut agree = FxHashSet::default();
        agree.insert(AttrSet::from_indices([1]));
        agree.insert(AttrSet::from_indices([1, 2]));
        agree.insert(AttrSet::from_indices([2, 3]));
        agree.insert(AttrSet::from_indices([0])); // contains rhs 0? no — it IS {0}
        let max = max_invalid_lhs(&agree, 0);
        // {1} ⊂ {1,2} dropped; {0} contains rhs and is excluded.
        assert_eq!(max.len(), 2);
        assert!(max.contains(&AttrSet::from_indices([1, 2])));
        assert!(max.contains(&AttrSet::from_indices([2, 3])));
    }

    #[test]
    fn validity_via_negative_cover_matches_brute_force() {
        let r = figure1();
        let agree = agree_sets(&r);
        for rhs in 0..4usize {
            let neg = max_invalid_lhs(&agree, rhs);
            for bits in 0u64..16 {
                let x = AttrSet::from_bits(bits);
                if x.contains(rhs) {
                    continue;
                }
                let valid_by_cover = !neg.iter().any(|m| x.is_subset_of(*m));
                let valid_brute = tane_baselines::fd_holds(&r, x, rhs);
                assert_eq!(valid_by_cover, valid_brute, "X={x:?} A={rhs}");
            }
        }
    }

    #[test]
    fn maximalize_keeps_incomparable_sets() {
        let sets = vec![
            AttrSet::from_indices([0, 1]),
            AttrSet::from_indices([1, 2]),
            AttrSet::from_indices([0]),
            AttrSet::from_indices([0, 1]), // duplicate
        ];
        let out = maximalize(sets);
        assert_eq!(out.len(), 2);
    }
}
