//! Minimal hitting sets (hypergraph transversals).
//!
//! FDEP's positive-cover phase reduces to: given, per rhs `A`, the edges
//! `E_X = (R∖{A})∖X` for each maximal invalid LHS `X`, find all minimal
//! attribute sets intersecting every edge. This module implements Berge's
//! incremental transversal algorithm: fold edges in one at a time,
//! extending the transversals that miss the new edge by each of its
//! vertices and re-minimalizing. Exponential in the worst case — as any
//! transversal enumeration must be — but edge counts here are the number of
//! maximal invalid dependencies, which is small for real data.

use tane_util::AttrSet;

/// All minimal hitting sets of `edges`.
///
/// Conventions: with no edges the empty set hits everything → `[∅]`.
/// If any edge is empty it cannot be hit → `[]`.
pub fn minimal_hitting_sets(edges: &[AttrSet]) -> Vec<AttrSet> {
    let mut transversals: Vec<AttrSet> = vec![AttrSet::empty()];
    // Processing larger edges last keeps intermediate families smaller.
    let mut edges: Vec<AttrSet> = edges.to_vec();
    edges.sort_unstable_by_key(|e| e.len());
    edges.dedup();
    for &edge in &edges {
        if edge.is_empty() {
            return Vec::new();
        }
        let (hit, miss): (Vec<AttrSet>, Vec<AttrSet>) =
            transversals.into_iter().partition(|t| !t.is_disjoint(edge));
        let mut next = hit;
        for t in miss {
            for v in edge.iter() {
                let candidate = t.with(v);
                // Keep only if minimal w.r.t. the family built so far: no
                // existing transversal (which already hits every edge seen,
                // including this one) may be contained in it.
                if !next.iter().any(|m| m.is_subset_of(candidate)) {
                    // And remove any existing member it is contained in —
                    // cannot happen for the `hit` part (they hit `edge`
                    // without `v`), but extensions of other `miss` members
                    // can be supersets of this candidate.
                    next.retain(|m| !candidate.is_subset_of(*m) || *m == candidate);
                    next.push(candidate);
                }
            }
        }
        transversals = next;
    }
    transversals.sort_unstable();
    transversals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hs(edges: &[&[usize]]) -> Vec<AttrSet> {
        let edges: Vec<AttrSet> = edges
            .iter()
            .map(|e| AttrSet::from_indices(e.iter().copied()))
            .collect();
        minimal_hitting_sets(&edges)
    }

    /// Brute-force reference: enumerate all subsets of the union.
    fn hs_reference(edges: &[AttrSet]) -> Vec<AttrSet> {
        if edges.iter().any(|e| e.is_empty()) {
            return Vec::new();
        }
        let universe = edges.iter().fold(AttrSet::empty(), |acc, &e| acc.union(e));
        let verts: Vec<usize> = universe.iter().collect();
        let mut hitting: Vec<AttrSet> = Vec::new();
        for mask in 0u64..(1 << verts.len()) {
            let s = AttrSet::from_indices(
                verts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &v)| v),
            );
            if edges.iter().all(|e| !s.is_disjoint(*e)) {
                hitting.push(s);
            }
        }
        let mut minimal: Vec<AttrSet> = hitting
            .iter()
            .copied()
            .filter(|&s| !hitting.iter().any(|&t| t.is_proper_subset_of(s)))
            .collect();
        minimal.sort_unstable();
        minimal
    }

    #[test]
    fn no_edges_gives_empty_set() {
        assert_eq!(hs(&[]), vec![AttrSet::empty()]);
    }

    #[test]
    fn empty_edge_gives_nothing() {
        assert_eq!(hs(&[&[]]), Vec::<AttrSet>::new());
        assert_eq!(hs(&[&[1], &[]]), Vec::<AttrSet>::new());
    }

    #[test]
    fn single_edge() {
        let out = hs(&[&[0, 2]]);
        assert_eq!(out, vec![AttrSet::singleton(0), AttrSet::singleton(2)]);
    }

    #[test]
    fn two_disjoint_edges_need_one_from_each() {
        let out = hs(&[&[0], &[1, 2]]);
        assert_eq!(
            out,
            vec![AttrSet::from_indices([0, 1]), AttrSet::from_indices([0, 2])]
        );
    }

    #[test]
    fn overlapping_edges_share_a_vertex() {
        let out = hs(&[&[0, 1], &[1, 2]]);
        // {1} hits both; {0,2} hits both; {0,1} would contain {1} → excluded.
        assert_eq!(
            out,
            vec![AttrSet::singleton(1), AttrSet::from_indices([0, 2])]
        );
    }

    #[test]
    fn duplicate_edges_are_harmless() {
        assert_eq!(hs(&[&[0, 1], &[0, 1]]), hs(&[&[0, 1]]));
    }

    #[test]
    fn triangle_hypergraph() {
        // Edges {0,1},{1,2},{0,2}: transversals are any 2 vertices.
        let out = hs(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(
            out,
            vec![
                AttrSet::from_indices([0, 1]),
                AttrSet::from_indices([0, 2]),
                AttrSet::from_indices([1, 2]),
            ]
        );
    }

    #[test]
    fn matches_reference_on_exhaustive_small_hypergraphs() {
        // Every hypergraph with ≤ 3 edges over 4 vertices.
        let all_edges: Vec<AttrSet> = (1u64..16).map(AttrSet::from_bits).collect();
        for i in 0..all_edges.len() {
            for j in i..all_edges.len() {
                for k in j..all_edges.len() {
                    let edges = [all_edges[i], all_edges[j], all_edges[k]];
                    assert_eq!(
                        minimal_hitting_sets(&edges),
                        hs_reference(&edges),
                        "edges {edges:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn larger_random_instance_matches_reference() {
        // Deterministic pseudo-random edges over 8 vertices.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let edges: Vec<AttrSet> = (0..6)
                .map(|_| AttrSet::from_bits(next() & 0xff))
                .filter(|e| !e.is_empty())
                .collect();
            assert_eq!(
                minimal_hitting_sets(&edges),
                hs_reference(&edges),
                "edges {edges:?}"
            );
        }
    }
}
