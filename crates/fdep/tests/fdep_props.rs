//! Property tests: FDEP must agree with the brute-force oracle and with
//! TANE on arbitrary random relations — the paper's Table 1 implicitly
//! relies on all algorithms computing the same `N`.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_baselines::brute_force_fds;
use tane_core::{discover_fds, TaneConfig};
use tane_fdep::fdep_fds;
use tane_relation::{Relation, Schema};

fn relation() -> impl Strategy<Value = Relation> {
    (1usize..=6, 0usize..=25).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, n_rows..=n_rows),
            n_attrs..=n_attrs,
        )
        .prop_map(move |cols| {
            Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fdep_matches_oracle(r in relation()) {
        let (fds, _) = fdep_fds(&r);
        prop_assert_eq!(fds, brute_force_fds(&r, r.num_attrs()));
    }

    #[test]
    fn fdep_matches_tane(r in relation()) {
        let (fdep, _) = fdep_fds(&r);
        let tane = discover_fds(&r, &TaneConfig::default()).unwrap();
        prop_assert_eq!(fdep, tane.fds);
    }
}
