//! Pruning-soundness oracle for the ranked (top-k) search.
//!
//! The ranked pool is defined *without* reference to the lattice walk: a
//! dependency `X → A` is a pool entrant iff it strictly improves on every
//! generalization — `g3(X → A) < g3(V → A)` for every `V ⊊ X` (equivalently
//! iff the sound full approximate run at `ε = g3(X → A)` reports it in its
//! minimal cover; see DESIGN §12). The oracle here rebuilds that pool by
//! brute force from the definitional `g3` of `tane-baselines`, ranks it by
//! the canonical `(g3, |lhs|, rhs, lhs)` key, and demands the search's heap
//! equal its first `k` entries exactly — so neither the heap-bound pruning,
//! the dominance pruning, the early exit, nor any of TANE's own pruning
//! rules may ever cost a ranked answer.

use tane_core::{discover_topk_fds, RankedFd, TaneConfig, TopKConfig};
use tane_datasets::{generate, ColumnSpec, DatasetSpec};
use tane_relation::{Relation, Schema, Value};
use tane_util::{AttrSet, Fd};

/// The paper's Figure 1 relation.
fn figure1() -> Relation {
    let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
    let mut b = Relation::builder(schema);
    for row in [
        ["1", "a", "$", "Flower"],
        ["1", "A", "L", "Tulip"],
        ["2", "A", "$", "Daffodil"],
        ["2", "A", "$", "Flower"],
        ["2", "b", "L", "Lily"],
        ["3", "b", "$", "Orchid"],
        ["3", "c", "L", "Rose"],
        ["3", "c", "#", "Rose"],
    ] {
        b.push_row(row.map(Value::from)).unwrap();
    }
    b.build()
}

/// A small generated relation with exact, near-exact, and noisy planted
/// dependencies — large enough that the ranked pruning has something to
/// skip, small enough for the exponential brute-force oracle.
fn small_planted() -> Relation {
    generate(&DatasetSpec {
        name: "topk-oracle".into(),
        rows: 60,
        columns: vec![
            ColumnSpec::Categorical { distinct: 5 },
            ColumnSpec::Categorical { distinct: 4 },
            ColumnSpec::Derived {
                of: vec![0, 1],
                distinct: 8,
            },
            ColumnSpec::NoisyDerived {
                of: vec![1],
                distinct: 3,
                noise: 0.1,
            },
            ColumnSpec::Skewed {
                distinct: 6,
                exponent: 1.3,
            },
            ColumnSpec::NoisyDerived {
                of: vec![0, 4],
                distinct: 5,
                noise: 0.05,
            },
        ],
        seed: 0x10c4,
    })
    .unwrap()
}

/// Brute-force ranked pool: every strict-improvement dependency, best
/// first under `(g3_rows, |lhs|, rhs, lhs)`. `g3` is monotone
/// non-increasing in the LHS, so the minimum over all proper subsets is
/// attained one attribute smaller, and strict improvement only needs the
/// one-smaller generalizations checked.
fn brute_pool(relation: &Relation) -> Vec<RankedFd> {
    let n_attrs = relation.num_attrs();
    let n_rows = relation.num_rows();
    let mut pool: Vec<RankedFd> = Vec::new();
    for bits in 0..(1u64 << n_attrs) {
        let lhs = AttrSet::from_indices((0..n_attrs).filter(|i| bits >> i & 1 == 1));
        for rhs in (0..n_attrs).filter(|&a| !lhs.contains(a)) {
            let g3_rows = tane_baselines::fd_g3_rows(relation, lhs, rhs);
            let improves_all = lhs
                .iter()
                .all(|a| tane_baselines::fd_g3_rows(relation, lhs.without(a), rhs) > g3_rows);
            if improves_all {
                pool.push(RankedFd {
                    fd: Fd::new(lhs, rhs),
                    g3_rows,
                    n_rows,
                });
            }
        }
    }
    pool.sort_by_key(|e| (e.g3_rows, e.fd.lhs.len(), e.fd.rhs, e.fd.lhs));
    pool
}

fn run_topk(relation: &Relation, k: usize, threads: usize) -> tane_core::TaneResult {
    let config = TopKConfig {
        base: TaneConfig {
            threads,
            ..TaneConfig::default()
        },
        ..TopKConfig::new(k)
    };
    discover_topk_fds(relation, &config).unwrap()
}

fn assert_matches_oracle(relation: &Relation, label: &str) {
    let pool = brute_pool(relation);
    assert!(!pool.is_empty(), "{label}: oracle pool must not be empty");
    for k in [1, 2, 3, 5, 10, pool.len(), pool.len() + 7] {
        let result = run_topk(relation, k, 1);
        let heap = result.ranked.as_deref().expect("ranked mode sets ranked");
        let want = &pool[..k.min(pool.len())];
        assert_eq!(
            heap, want,
            "{label} k={k}: heap diverged from the brute-force pool"
        );
        // The flat cover is the same set in canonical order.
        let mut canonical: Vec<Fd> = heap.iter().map(|e| e.fd).collect();
        canonical.sort_by_key(|fd| (fd.rhs, fd.lhs));
        assert_eq!(result.fds, canonical, "{label} k={k}: fds/ranked disagree");
    }
}

#[test]
fn figure1_heap_matches_brute_force_pool() {
    assert_matches_oracle(&figure1(), "figure1");
}

#[test]
fn planted_heap_matches_brute_force_pool() {
    assert_matches_oracle(&small_planted(), "planted");
}

#[test]
fn pruned_run_equals_prefix_of_unpruned_run() {
    // TopK{k} must equal the first k of a run whose heap never fills (k
    // larger than any pool), on which neither the heap bound nor the early
    // exit can ever fire — the pruning may save work, never answers.
    for relation in [figure1(), small_planted()] {
        let full = run_topk(&relation, 4096, 1);
        let full_heap = full.ranked.as_deref().unwrap();
        assert_eq!(full.stats.topk_bound_pruned, 0);
        assert_eq!(full.stats.topk_early_exit_level, None);
        for k in [1, 3, 8] {
            let pruned = run_topk(&relation, k, 1);
            let heap = pruned.ranked.as_deref().unwrap();
            assert_eq!(heap, &full_heap[..k.min(full_heap.len())]);
        }
    }
}

#[test]
fn ranked_pruning_actually_engages() {
    // Guard against silently testing an unpruned walk: at k=1 on the
    // planted relation the heap bound must skip candidates before their
    // exact g3 is paid for, and the walk must stop before the lattice is
    // exhausted (6 attributes would otherwise mean 6 levels).
    let result = run_topk(&small_planted(), 1, 1);
    assert!(
        result.stats.topk_bound_pruned > 0,
        "bound pruning never engaged"
    );
    assert!(
        result.stats.topk_dominated > 0,
        "dominance pruning never engaged"
    );
    let full = run_topk(&small_planted(), 4096, 1);
    assert!(
        result.stats.validity_tests < full.stats.validity_tests,
        "pruned run must decide fewer tests than the unpruned run"
    );
}

#[test]
fn early_exit_fires_on_exact_heavy_relations() {
    // Figure 1 has enough shallow exact dependencies that a small heap
    // fills with perfect scores; from then on every deeper candidate loses
    // the (g3, |lhs|) tie-break and the walk must stop early.
    let result = run_topk(&figure1(), 1, 1);
    let exit = result
        .stats
        .topk_early_exit_level
        .expect("k=1 on figure1 must exit early");
    assert!(exit < 4, "exit level {exit} is not early for 4 attributes");
    // Correctness is already covered by the oracle; double-check the heap
    // here so the early exit provably did not cost the answer.
    assert_eq!(
        result.ranked.as_deref().unwrap(),
        &brute_pool(&figure1())[..1]
    );
}

#[test]
fn k_zero_returns_empty_and_exits_immediately() {
    let result = run_topk(&small_planted(), 0, 1);
    assert_eq!(result.ranked.as_deref(), Some(&[][..]));
    assert!(result.fds.is_empty());
    assert_eq!(result.stats.topk_early_exit_level, Some(1));
    assert_eq!(result.stats.topk_improvements, 0);
}

#[test]
fn ranked_heap_is_thread_invariant() {
    for relation in [figure1(), small_planted()] {
        for k in [1, 4, 16] {
            let baseline = run_topk(&relation, k, 1);
            for threads in [2, 4, 8] {
                let got = run_topk(&relation, k, threads);
                assert_eq!(
                    got.ranked, baseline.ranked,
                    "k={k} threads={threads}: ranked heap diverged from serial"
                );
                assert_eq!(got.fds, baseline.fds);
                assert_eq!(
                    got.stats.topk_bound_pruned,
                    baseline.stats.topk_bound_pruned
                );
                assert_eq!(got.stats.topk_dominated, baseline.stats.topk_dominated);
                assert_eq!(
                    got.stats.topk_early_exit_level,
                    baseline.stats.topk_early_exit_level
                );
                assert_eq!(got.stats.validity_tests, baseline.stats.validity_tests);
            }
        }
    }
}

#[test]
fn improvement_counter_tracks_heap_insertions() {
    let result = run_topk(&figure1(), 3, 1);
    assert!(result.stats.topk_improvements >= 3);
    let heap = result.ranked.as_deref().unwrap();
    assert_eq!(heap.len(), 3);
    // Heap is ordered best-first and every score is a valid fraction.
    for pair in heap.windows(2) {
        assert!(
            (
                pair[0].g3_rows,
                pair[0].fd.lhs.len(),
                pair[0].fd.rhs,
                pair[0].fd.lhs
            ) <= (
                pair[1].g3_rows,
                pair[1].fd.lhs.len(),
                pair[1].fd.rhs,
                pair[1].fd.lhs
            )
        );
    }
    for e in heap {
        assert!(e.g3() >= 0.0 && e.g3() < 1.0);
    }
}
