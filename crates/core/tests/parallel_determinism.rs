//! Determinism under parallelism: the worker count must never change a
//! search result. The pool writes batch outputs into index-addressed slots
//! and every decision stays in the serial driver — work-stealing only
//! changes *which worker* fills a slot, never which slot (DESIGN §9) — so
//! `threads ∈ {1, 2, 4, 8}` have to produce identical dependencies, keys,
//! and lattice statistics on every combination of dataset × storage
//! backend × mode — including the counters (`products`, `validity_tests`,
//! `g3_*`) that would drift first if scheduling leaked into the search.

use tane_core::{
    discover_approx_fds, discover_fds, ApproxTaneConfig, Storage, TaneConfig, TaneResult,
};
use tane_datasets::{generate, ColumnSpec, DatasetSpec};
use tane_relation::{Relation, Schema, Value};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The paper's Figure 1 relation.
fn figure1() -> Relation {
    let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
    let mut b = Relation::builder(schema);
    for row in [
        ["1", "a", "$", "Flower"],
        ["1", "A", "L", "Tulip"],
        ["2", "A", "$", "Daffodil"],
        ["2", "A", "$", "Flower"],
        ["2", "b", "L", "Lily"],
        ["3", "b", "$", "Orchid"],
        ["3", "c", "L", "Rose"],
        ["3", "c", "#", "Rose"],
    ] {
        b.push_row(row.map(Value::from)).unwrap();
    }
    b.build()
}

/// A generated relation with planted exact and approximate dependencies,
/// large enough (8 attrs × 6000 rows) that the element-count gate engages
/// the pool for level-1 construction, products, and batched `g3` tests.
fn planted() -> Relation {
    generate(&DatasetSpec {
        name: "planted".into(),
        rows: 6000,
        columns: vec![
            ColumnSpec::Categorical { distinct: 24 },
            ColumnSpec::Categorical { distinct: 30 },
            ColumnSpec::Skewed {
                distinct: 40,
                exponent: 1.2,
            },
            ColumnSpec::NearUnique { distinct: 2900 },
            ColumnSpec::Derived {
                of: vec![0, 1],
                distinct: 16,
            },
            ColumnSpec::NoisyDerived {
                of: vec![1, 2],
                distinct: 12,
                noise: 0.04,
            },
            ColumnSpec::Categorical { distinct: 6 },
            ColumnSpec::NoisyDerived {
                of: vec![0, 6],
                distinct: 10,
                noise: 0.08,
            },
        ],
        seed: 0x7a3e,
    })
    .unwrap()
}

fn storages() -> Vec<(&'static str, Storage)> {
    vec![
        ("memory", Storage::Memory),
        // A small cache so partitions actually spill and the pipelined
        // fetch path runs.
        (
            "disk",
            Storage::Disk {
                cache_bytes: 1 << 16,
            },
        ),
    ]
}

/// Everything that must be invariant across worker counts. Wall-clock and
/// the parallel instrumentation (grains, busy time) legitimately vary.
fn invariant_view(r: &TaneResult) -> impl PartialEq + std::fmt::Debug {
    (
        r.fds.clone(),
        r.keys.clone(),
        r.stats.products,
        r.stats.levels,
        r.stats.sets_per_level.clone(),
        r.stats.validity_tests,
        r.stats.g3_exact_computations,
        r.stats.g3_decided_by_bounds,
        r.stats.keys_found,
        r.stats.disk_reads,
        r.stats.disk_bytes_read,
        r.stats.disk_bytes_written,
    )
}

fn assert_thread_invariant(relation: &Relation, label: &str, epsilon: f64) {
    for (storage_label, storage) in storages() {
        let run = |threads: usize| {
            let base = TaneConfig {
                storage: storage.clone(),
                threads,
                ..TaneConfig::default()
            };
            if epsilon > 0.0 {
                let config = ApproxTaneConfig {
                    base,
                    ..ApproxTaneConfig::new(epsilon)
                };
                discover_approx_fds(relation, &config).unwrap()
            } else {
                discover_fds(relation, &base).unwrap()
            }
        };
        let baseline = run(THREAD_COUNTS[0]);
        assert_eq!(
            baseline.stats.parallel_workers, THREAD_COUNTS[0],
            "worker count must be reported"
        );
        for &threads in &THREAD_COUNTS[1..] {
            let got = run(threads);
            assert_eq!(
                invariant_view(&got),
                invariant_view(&baseline),
                "{label} ε={epsilon} on {storage_label}: threads={threads} diverged from serial"
            );
            assert_eq!(got.stats.parallel_workers, threads);
        }
    }
}

#[test]
fn figure1_exact_is_thread_invariant() {
    assert_thread_invariant(&figure1(), "figure1", 0.0);
}

#[test]
fn figure1_approx_is_thread_invariant() {
    assert_thread_invariant(&figure1(), "figure1", 0.125);
}

#[test]
fn planted_exact_is_thread_invariant() {
    assert_thread_invariant(&planted(), "planted", 0.0);
}

#[test]
fn planted_approx_is_thread_invariant() {
    // ε chosen between the planted noise levels so some tests sit inside
    // the g3 bounds gap and the batched exact-g3 path actually runs.
    assert_thread_invariant(&planted(), "planted", 0.05);
}

#[test]
fn parallel_paths_actually_engage_on_the_planted_relation() {
    // Guards the suite against silently testing serial-vs-serial: with 8
    // workers on the planted relation the pool must have claimed grains.
    let r = planted();
    let config = TaneConfig {
        threads: 8,
        ..TaneConfig::default()
    };
    let result = discover_fds(&r, &config).unwrap();
    assert_eq!(result.stats.parallel_workers, 8);
    assert!(
        result.stats.parallel_grains > 0,
        "pool never engaged: gate or dispatch is broken"
    );
    assert!(result.stats.worker_busy > std::time::Duration::ZERO);
    // Engagement guard for the work-stealing scheduler itself: with 8
    // workers over deques seeded by contiguous blocks, the skewed planted
    // columns leave some deques short and others long, so at least one
    // steal must land. Zero steals means the deques degenerated to a
    // single-owner split (scheduler not exercised).
    assert!(
        result.stats.worker_steals > 0,
        "work-stealing never engaged: deque split or steal path is broken"
    );

    // The same guard at 4 workers — the smallest count the ISSUE's scaling
    // acceptance talks about — so the steal path is proven at every
    // configuration the scaling bench measures.
    let result4 = discover_fds(
        &r,
        &TaneConfig {
            threads: 4,
            ..TaneConfig::default()
        },
    )
    .unwrap();
    assert!(
        result4.stats.worker_steals > 0,
        "work-stealing never engaged at 4 workers"
    );

    // The serial runtime must record busy time too (utilization against
    // the 1-thread baseline is meaningless otherwise), and must never
    // report scheduler activity — there is no scheduler.
    let serial = discover_fds(
        &r,
        &TaneConfig {
            threads: 1,
            ..TaneConfig::default()
        },
    )
    .unwrap();
    assert!(
        serial.stats.worker_busy > std::time::Duration::ZERO,
        "serial path records no busy time: the scaling report cannot compute utilization"
    );
    assert_eq!(serial.stats.worker_steals, 0);
    assert_eq!(serial.stats.worker_parks, 0);

    // And the approximate run must push undecided tests through the
    // batched exact-g3 path.
    let approx = discover_approx_fds(
        &r,
        &ApproxTaneConfig {
            base: TaneConfig {
                threads: 8,
                ..TaneConfig::default()
            },
            ..ApproxTaneConfig::new(0.05)
        },
    )
    .unwrap();
    assert!(
        approx.stats.g3_exact_computations > 0,
        "no undecided tests: the batched g3 path is untested at ε=0.05"
    );
}
