//! The central correctness property of the whole reproduction: on arbitrary
//! random relations, every TANE configuration — memory or disk storage, any
//! combination of pruning rules, exact or approximate, with or without the
//! g3 bounds — produces exactly the brute-force minimal cover.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_baselines::{brute_force_approx_fds, brute_force_fds, verify_minimal_cover};
use tane_core::{discover_approx_fds, discover_fds, ApproxTaneConfig, TaneConfig};
use tane_relation::{Relation, Schema};

/// Random relations with up to 6 attributes and 30 rows; domains of size ≤ 3
/// make both valid FDs and approximate FDs frequent.
fn relation() -> impl Strategy<Value = Relation> {
    (1usize..=6, 0usize..=30).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..3, n_rows..=n_rows),
            n_attrs..=n_attrs,
        )
        .prop_map(move |cols| {
            Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
        })
    })
}

/// Wider-domain relations: keys and near-keys are common, stressing key
/// pruning.
fn keyish_relation() -> impl Strategy<Value = Relation> {
    (2usize..=5, 4usize..=24).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..12, n_rows..=n_rows),
            n_attrs..=n_attrs,
        )
        .prop_map(move |cols| {
            Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_default_matches_oracle(r in relation()) {
        let got = discover_fds(&r, &TaneConfig::default()).unwrap();
        let want = brute_force_fds(&r, r.num_attrs());
        prop_assert_eq!(&got.fds, &want);
        prop_assert!(verify_minimal_cover(&r, &got.fds, r.num_attrs(), 0.0).is_empty());
    }

    #[test]
    fn exact_all_ablations_match_oracle(r in relation()) {
        let want = brute_force_fds(&r, r.num_attrs());
        for rhs_plus in [false, true] {
            for key in [false, true] {
                for empty in [false, true] {
                    let config = TaneConfig {
                        rhs_plus_pruning: rhs_plus,
                        key_pruning: key,
                        empty_cplus_pruning: empty,
                        ..TaneConfig::default()
                    };
                    let got = discover_fds(&r, &config).unwrap();
                    prop_assert_eq!(
                        &got.fds, &want,
                        "rhs_plus={} key={} empty={}", rhs_plus, key, empty
                    );
                }
            }
        }
    }

    #[test]
    fn exact_keyish_matches_oracle(r in keyish_relation()) {
        let got = discover_fds(&r, &TaneConfig::default()).unwrap();
        prop_assert_eq!(got.fds, brute_force_fds(&r, r.num_attrs()));
    }

    #[test]
    fn disk_storage_matches_memory(r in relation()) {
        let mem = discover_fds(&r, &TaneConfig::default()).unwrap();
        // Tiny cache forces eviction and reload on every level.
        let disk = discover_fds(&r, &TaneConfig::disk(256)).unwrap();
        prop_assert_eq!(mem.fds, disk.fds);
    }

    #[test]
    fn approx_matches_oracle(r in relation(), eps in 0.0f64..=0.6) {
        let got = discover_approx_fds(&r, &ApproxTaneConfig::new(eps)).unwrap();
        let want = brute_force_approx_fds(&r, r.num_attrs(), eps);
        prop_assert_eq!(&got.fds, &want, "eps={}", eps);
    }

    #[test]
    fn approx_keyish_matches_oracle(r in keyish_relation(), eps in 0.0f64..=0.4) {
        // Keys are plentiful here: this stresses the superkey-closure
        // recovery of dependencies cut by key pruning.
        let got = discover_approx_fds(&r, &ApproxTaneConfig::new(eps)).unwrap();
        let want = brute_force_approx_fds(&r, r.num_attrs(), eps);
        prop_assert_eq!(&got.fds, &want, "eps={}", eps);
    }

    #[test]
    fn approx_ablations_match(r in relation(), eps in 0.0f64..=0.5) {
        let want = brute_force_approx_fds(&r, r.num_attrs(), eps);
        for use_bounds in [false, true] {
            for key in [false, true] {
                let config = ApproxTaneConfig {
                    base: TaneConfig { key_pruning: key, ..TaneConfig::default() },
                    use_g3_bounds: use_bounds,
                    ..ApproxTaneConfig::new(eps)
                };
                let got = discover_approx_fds(&r, &config).unwrap();
                prop_assert_eq!(&got.fds, &want, "eps={} bounds={} key={}", eps, use_bounds, key);
            }
        }
    }

    #[test]
    fn paper_faithful_heuristic_is_valid_and_exact_at_zero(r in relation(), eps in 0.0f64..=0.5) {
        // The aggressive-rhs+ heuristic may return an incomplete cover for
        // eps > 0, but every reported dependency must still satisfy the
        // threshold, and at eps = 0 it must equal the exact algorithm.
        let got = discover_approx_fds(&r, &ApproxTaneConfig::paper_faithful(eps)).unwrap();
        let n = r.num_rows();
        for fd in &got.fds {
            prop_assert!(!fd.is_trivial());
            let g3 = if n == 0 {
                0.0
            } else {
                tane_baselines::fd_g3_rows(&r, fd.lhs, fd.rhs) as f64 / n as f64
            };
            prop_assert!(g3 <= eps + 1e-12, "{} has g3 {} > {}", fd, g3, eps);
        }
        let exact_zero = discover_approx_fds(&r, &ApproxTaneConfig::paper_faithful(0.0)).unwrap();
        prop_assert_eq!(exact_zero.fds, brute_force_fds(&r, r.num_attrs()));
    }

    #[test]
    fn max_lhs_equals_oracle_truncation(r in relation(), m in 0usize..=4) {
        let got = discover_fds(&r, &TaneConfig::default().with_max_lhs(m)).unwrap();
        prop_assert_eq!(got.fds, brute_force_fds(&r, m));
    }

    #[test]
    fn copies_preserve_cover(r in relation(), n in 1usize..=4) {
        prop_assume!(r.num_rows() > 0);
        let base = discover_fds(&r, &TaneConfig::default()).unwrap();
        // The ×n construction preserves every dependency with a non-empty
        // LHS (agreement never crosses copies), but ∅ → A breaks as soon as
        // a constant column gets a second copy-specific value — the paper's
        // datasets have no such dependencies, and we exclude them here.
        prop_assume!(base.fds.iter().all(|fd| !fd.lhs.is_empty()));
        let big = discover_fds(&r.concat_disjoint_copies(n).unwrap(), &TaneConfig::default()).unwrap();
        prop_assert_eq!(base.fds, big.fds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel products must be bit-for-bit equivalent to the serial path.
    #[test]
    fn parallel_matches_serial(r in relation(), threads in 2usize..=4) {
        let serial = discover_fds(&r, &TaneConfig::default()).unwrap();
        let parallel = discover_fds(&r, &TaneConfig::default().with_threads(threads)).unwrap();
        prop_assert_eq!(serial.fds, parallel.fds);
        prop_assert_eq!(serial.keys, parallel.keys);
        prop_assert_eq!(serial.stats.sets_total, parallel.stats.sets_total);
    }
}
