//! Configuration for the TANE search.

use std::sync::Arc;
use tane_partition::DiskQuota;

/// Where level partitions are kept between lattice levels.
///
/// The paper evaluates both variants (Section 7): the scalable **TANE**
/// spills partitions to disk, **TANE/MEM** keeps everything in memory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Storage {
    /// All partitions in main memory (the paper's TANE/MEM).
    #[default]
    Memory,
    /// Partitions spilled to a temporary directory, with at most
    /// `cache_bytes` of hot partitions resident (the paper's TANE).
    Disk {
        /// In-memory cache budget in bytes.
        cache_bytes: usize,
    },
}

/// Configuration for exact FD discovery.
///
/// The defaults reproduce the full TANE algorithm of Section 5. The pruning
/// switches exist for the ablation experiments: disabling them yields the
/// "less effective pruning criteria" variants the paper compares against in
/// Section 6 — the search stays correct, it just visits more of the lattice.
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Partition storage backend.
    pub storage: Storage,
    /// Disk storage only: a shared quota charged for every spilled
    /// partition byte. The server attaches one per dataset so concurrent
    /// searches share a single disk cap; `None` (the default) means
    /// unlimited. Configs compare equal when they share the same quota
    /// *object* (or both have none).
    pub disk_quota: Option<Arc<DiskQuota>>,
    /// Maximum LHS size `|X|` to consider (`None` = unrestricted). Table 3
    /// of the paper uses `|X| = 4` for some comparisons.
    pub max_lhs: Option<usize>,
    /// Apply the rhs⁺ refinement (COMPUTE-DEPENDENCIES line 8): on each
    /// valid `X\{A} → A`, also remove all `B ∈ R\X` from `C⁺(X)`.
    /// Disabling reverts to the plain rhs candidate sets `C(X)`.
    pub rhs_plus_pruning: bool,
    /// Apply key pruning (PRUNE lines 4–8): delete keys from the level,
    /// emitting their remaining minimal dependencies directly.
    pub key_pruning: bool,
    /// Delete sets with `C⁺(X) = ∅` from the level (PRUNE lines 2–3).
    pub empty_cplus_pruning: bool,
    /// Worker threads for the partition products of each level (`1` =
    /// serial, the paper's algorithm). Products within a level are
    /// independent, so this parallelizes the dominant cost on row-heavy
    /// inputs without changing any result — an extension beyond the paper.
    pub threads: usize,
    /// Disk storage with `threads > 1` only: route parent fetches through
    /// the legacy worker-0 fetch funnel (one worker streams parent pairs
    /// through a bounded channel) instead of letting every worker read the
    /// shared segment store directly. The funnel is strictly slower — it
    /// serializes all segment reads behind one thread — and exists as the
    /// measured baseline for `repro disk-scaling`; results are identical
    /// either way. Default `false`: direct concurrent fetches.
    pub fetch_funnel: bool,
}

impl Default for TaneConfig {
    fn default() -> Self {
        TaneConfig {
            storage: Storage::Memory,
            disk_quota: None,
            max_lhs: None,
            rhs_plus_pruning: true,
            key_pruning: true,
            empty_cplus_pruning: true,
            threads: 1,
            fetch_funnel: false,
        }
    }
}

impl PartialEq for TaneConfig {
    fn eq(&self, other: &Self) -> bool {
        let quota_eq = match (&self.disk_quota, &other.disk_quota) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        self.storage == other.storage
            && quota_eq
            && self.max_lhs == other.max_lhs
            && self.rhs_plus_pruning == other.rhs_plus_pruning
            && self.key_pruning == other.key_pruning
            && self.empty_cplus_pruning == other.empty_cplus_pruning
            && self.threads == other.threads
            && self.fetch_funnel == other.fetch_funnel
    }
}

impl TaneConfig {
    /// The paper's scalable TANE: partitions on disk with the given cache.
    pub fn disk(cache_bytes: usize) -> TaneConfig {
        TaneConfig {
            storage: Storage::Disk { cache_bytes },
            ..TaneConfig::default()
        }
    }

    /// Convenience setter for the LHS size cap.
    pub fn with_max_lhs(mut self, max_lhs: usize) -> TaneConfig {
        self.max_lhs = Some(max_lhs);
        self
    }

    /// Parallel products with `threads` workers (see
    /// [`threads`](Self::threads)).
    pub fn with_threads(mut self, threads: usize) -> TaneConfig {
        assert!(threads >= 1, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Charge every spilled partition byte against `quota` (see
    /// [`disk_quota`](Self::disk_quota)). No effect on memory storage.
    pub fn with_disk_quota(mut self, quota: Arc<DiskQuota>) -> TaneConfig {
        self.disk_quota = Some(quota);
        self
    }

    /// Route disk-mode parent fetches through the legacy worker-0 funnel
    /// (see [`fetch_funnel`](Self::fetch_funnel)); benchmarking baseline.
    pub fn with_fetch_funnel(mut self) -> TaneConfig {
        self.fetch_funnel = true;
        self
    }

    /// Ablation: disable every optional pruning rule (empty-`C⁺` deletion is
    /// kept — it is what makes the lattice walk terminate early enough to
    /// run at all, and even the naive baselines use it).
    pub fn without_pruning(mut self) -> TaneConfig {
        self.rhs_plus_pruning = false;
        self.key_pruning = false;
        self
    }
}

/// Configuration for approximate dependency discovery
/// (`g3(X → A) ≤ epsilon`).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxTaneConfig {
    /// The shared search configuration.
    pub base: TaneConfig,
    /// Error threshold `ε ∈ [0, 1]` (paper, Section 1).
    pub epsilon: f64,
    /// Use the quick `g3` bounds from \[4\] to decide validity tests without
    /// the exact O(‖π̂‖) computation where possible. Ablation switch; the
    /// result is identical either way.
    pub use_g3_bounds: bool,
    /// Apply the rhs⁺ removal (line 8) on *approximately* valid
    /// dependencies too, not only exactly valid ones (line 8′).
    ///
    /// This reproduces the performance profile of the paper's Table 2 /
    /// Figure 3 — at large ε nearly every `∅ → A` is valid, line 8 empties
    /// the singleton `C⁺` sets, and the whole search collapses after one
    /// level — but it is a **heuristic**: Lemma 4(1) does not hold under
    /// `g3`-validity, so the output is a valid-but-not-necessarily-complete
    /// set of approximate dependencies (every reported dependency satisfies
    /// the threshold; some minimal ones may be missing and some reported
    /// ones may not be minimal). With `epsilon = 0` it changes nothing.
    /// Default `false`: the sound algorithm, which matches the brute-force
    /// oracle exactly.
    pub aggressive_rhs_plus: bool,
}

impl ApproxTaneConfig {
    /// Approximate discovery at threshold `epsilon` with default settings.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `[0, 1]` or is NaN.
    pub fn new(epsilon: f64) -> ApproxTaneConfig {
        assert!(
            (0.0..=1.0).contains(&epsilon),
            "epsilon must be within [0, 1], got {epsilon}"
        );
        ApproxTaneConfig {
            base: TaneConfig::default(),
            epsilon,
            use_g3_bounds: true,
            aggressive_rhs_plus: false,
        }
    }

    /// The paper-faithful performance variant: see
    /// [`aggressive_rhs_plus`](Self::aggressive_rhs_plus).
    pub fn paper_faithful(epsilon: f64) -> ApproxTaneConfig {
        ApproxTaneConfig {
            aggressive_rhs_plus: true,
            ..ApproxTaneConfig::new(epsilon)
        }
    }
}

/// Configuration for ranked (top-k) dependency discovery: an anytime
/// search for the `k` best non-redundant dependencies by `g3` error
/// (see `crate::rank` and DESIGN §12).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKConfig {
    /// The shared search configuration.
    pub base: TaneConfig,
    /// How many ranked dependencies to keep. `0` is allowed (the search
    /// exits after one level with an empty result); a `k` larger than the
    /// candidate pool simply returns the whole pool, ranked.
    pub k: usize,
}

impl TopKConfig {
    /// Ranked discovery of the `k` best dependencies with default settings.
    pub fn new(k: usize) -> TopKConfig {
        TopKConfig {
            base: TaneConfig::default(),
            k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_pruning() {
        let c = TaneConfig::default();
        assert_eq!(c.storage, Storage::Memory);
        assert_eq!(c.max_lhs, None);
        assert!(c.rhs_plus_pruning && c.key_pruning && c.empty_cplus_pruning);
    }

    #[test]
    fn builders() {
        let c = TaneConfig::disk(1 << 20);
        assert_eq!(
            c.storage,
            Storage::Disk {
                cache_bytes: 1 << 20
            }
        );
        let c = TaneConfig::default().with_max_lhs(4);
        assert_eq!(c.max_lhs, Some(4));
        let c = TaneConfig::default().without_pruning();
        assert!(!c.rhs_plus_pruning && !c.key_pruning);
        assert!(c.empty_cplus_pruning);
    }

    #[test]
    fn quota_and_funnel_configs() {
        let q = Arc::new(DiskQuota::new(1024));
        let a = TaneConfig::disk(1 << 20).with_disk_quota(q.clone());
        let b = TaneConfig::disk(1 << 20).with_disk_quota(q);
        assert_eq!(a, b, "same quota object compares equal");
        let c = TaneConfig::disk(1 << 20).with_disk_quota(Arc::new(DiskQuota::new(1024)));
        assert_ne!(a, c, "distinct quota objects are distinct configs");
        assert!(!TaneConfig::default().fetch_funnel);
        assert!(TaneConfig::default().with_fetch_funnel().fetch_funnel);
    }

    #[test]
    fn approx_config_validates_epsilon() {
        let c = ApproxTaneConfig::new(0.05);
        assert_eq!(c.epsilon, 0.05);
        assert!(c.use_g3_bounds);
        assert!(std::panic::catch_unwind(|| ApproxTaneConfig::new(1.5)).is_err());
        assert!(std::panic::catch_unwind(|| ApproxTaneConfig::new(-0.1)).is_err());
        assert!(std::panic::catch_unwind(|| ApproxTaneConfig::new(f64::NAN)).is_err());
    }
}
