//! The TANE search: COMPUTE-DEPENDENCIES, PRUNE, and the levelwise driver.
//!
//! This module is a direct implementation of the pseudocode in Section 5 of
//! the paper, in both exact and approximate modes:
//!
//! ```text
//! L_0 := {∅};  C⁺(∅) := R;  L_1 := {{A} | A ∈ R};  ℓ := 1
//! while L_ℓ ≠ ∅:
//!     COMPUTE-DEPENDENCIES(L_ℓ)
//!     PRUNE(L_ℓ)
//!     L_{ℓ+1} := GENERATE-NEXT-LEVEL(L_ℓ);  ℓ := ℓ + 1
//! ```
//!
//! Exact validity tests are O(1) comparisons of partition summaries
//! (Lemma 2); approximate tests use the quick `g3` bounds first and fall
//! back to the exact O(‖π̂‖) computation only when the bounds cannot decide
//! (paper, Section 5 "Optimizations").
//!
//! ## Key pruning and approximate dependencies
//!
//! The paper's Section 5 describes the approximate variant as changing only
//! the validity test (line 5′) and the rhs⁺ refinement (line 8′). Read
//! literally, that keeps PRUNE's key pruning — which is **unsound** for
//! approximate dependencies. The exact-mode soundness argument rests on
//! Lemma 4(2): *if `X` is a superkey and `X\{B} → B` holds, `X\{B}` is a
//! superkey*. With `g3`-validity the lemma fails: `X\{B} → B` can hold
//! approximately while `X\{B}` is far from a superkey. Concretely, in the
//! Figure 1 relation at `ε = 1/8`, `{A,D}` is a key, so the node `{A,C,D}`
//! is never generated — yet `{C,D} → A` (error 1/8) is a minimal approximate
//! dependency whose only test lives at that node.
//!
//! This implementation therefore adds a *superkey-closure test* in
//! approximate mode: after pruning level ℓ, for every live node `W` and
//! candidate rhs `A ∉ W` such that `W ∪ {A}` contains an already-found key,
//! the partition `π_{W∪{A}}` is a superkey partition, so
//! `g3(W → A) = e(W)` **exactly** (the two bounds coincide) and the test is
//! decided from metadata already on hand. Minimality for these recovered
//! dependencies (and for key-pruning outputs in approximate mode) is
//! checked against the set of dependencies found so far, which the
//! levelwise order makes exact.
//!
//! A second, related fix applies to **both** modes: PRUNE's key-output
//! minimality test `A ∈ ∩_{B∈X} C⁺(X∪{A}\{B})` reads same-level sets that
//! may never have been generated *because a subset key was pruned earlier*
//! (e.g. with key `{D}`, the sets `{B,D}` and `{C,D}` never exist, and the
//! minimal FD `{B,C} → D` would be silently skipped at key `{B,C}` if
//! missing sets were treated as failures). The key outputs therefore use
//! the found-so-far minimality check as well; property tests against the
//! brute-force oracle pin both fixes down.

use crate::config::{ApproxTaneConfig, Storage, TaneConfig, TopKConfig};
use crate::lattice::{
    first_level_sets, generate_next_level, Level, LevelEntry, NextLevelCandidate,
};
use crate::rank::{RankState, TopKEvent};
use crate::result::{LevelEvent, TaneError, TaneResult, TaneStats};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;
use tane_partition::{
    g3_removed_rows_with_scratch, product_with_scratch, G3Bounds, G3Scratch, MemoryStore,
    PartitionStore, ProductScratch, ReadPhase, SegmentStore, StrippedPartition,
};
use tane_relation::Relation;
use tane_util::{adaptive_grain, canonical_fds, AttrSet, Fd, Slots, Stopwatch, WorkerPool};

/// Discovers all minimal non-trivial functional dependencies of `relation`
/// (the paper's central task, Section 1).
///
/// # Errors
///
/// Only the disk storage backend can fail (I/O); see [`TaneError`].
pub fn discover_fds(relation: &Relation, config: &TaneConfig) -> Result<TaneResult, TaneError> {
    discover_fds_with(relation, config, |_| {})
}

/// Discovers all minimal non-trivial approximate dependencies
/// `X → A` with `g3(X → A) ≤ config.epsilon` (paper, Sections 1–2).
///
/// With `epsilon = 0` the result equals [`discover_fds`].
pub fn discover_approx_fds(
    relation: &Relation,
    config: &ApproxTaneConfig,
) -> Result<TaneResult, TaneError> {
    discover_approx_fds_with(relation, config, |_| {})
}

/// [`discover_fds`], observing the search level by level: `on_level` fires a
/// [`LevelEvent`] each time COMPUTE-DEPENDENCIES + PRUNE finish a lattice
/// level, *before* the next level's partitions are generated — the earliest
/// moment the level's dependencies are final. The buffering entry points are
/// implemented on top of this one with a no-op observer.
///
/// The union of `new_minimal_fds` over all events equals the returned
/// `TaneResult::fds` as a set (the final result is globally re-canonicalized,
/// so the *order* across levels differs).
pub fn discover_fds_with(
    relation: &Relation,
    config: &TaneConfig,
    mut on_level: impl FnMut(LevelEvent),
) -> Result<TaneResult, TaneError> {
    run(
        relation,
        config,
        Mode::Exact,
        &mut on_level,
        &mut |_| {},
        None,
    )
}

/// [`discover_approx_fds`] with a per-level observer; see
/// [`discover_fds_with`] for the event contract.
pub fn discover_approx_fds_with(
    relation: &Relation,
    config: &ApproxTaneConfig,
    mut on_level: impl FnMut(LevelEvent),
) -> Result<TaneResult, TaneError> {
    run(
        relation,
        &config.base,
        Mode::Approx {
            epsilon: config.epsilon,
            use_bounds: config.use_g3_bounds,
            aggressive: config.aggressive_rhs_plus,
        },
        &mut on_level,
        &mut |_| {},
        None,
    )
}

/// Discovers the `k` best non-redundant dependencies of `relation`, ranked
/// by `g3` error with the canonical tie-break (see [`crate::rank`]).
///
/// The ranked pool contains every `X → A` that strictly improves on all
/// its generalizations — exactly the union, over all thresholds `ε`, of the
/// minimal covers [`discover_approx_fds`] reports. The search prunes
/// candidates whose cheap `g3` lower bound cannot beat the current k-th
/// best and stops the lattice walk as soon as no remaining level can enter
/// the heap, so it is an *anytime, early-exit* search: on inputs with many
/// shallow exact dependencies it touches a fraction of the lattice a full
/// run would (DESIGN §12). `TaneResult::ranked` holds the heap, best
/// first; `TaneResult::fds` holds the same dependencies in canonical order.
pub fn discover_topk_fds(
    relation: &Relation,
    config: &TopKConfig,
) -> Result<TaneResult, TaneError> {
    discover_topk_fds_with(relation, config, |_| {}, |_| {})
}

/// [`discover_topk_fds`] with observers: `on_level` fires per lattice level
/// (see [`discover_fds_with`]; in ranked mode `new_minimal_fds` carries the
/// *exact* minimal dependencies first proven at the level), and `on_topk`
/// fires after every level on which the heap changed, carrying the current
/// best-k snapshot — the stream's anytime result.
pub fn discover_topk_fds_with(
    relation: &Relation,
    config: &TopKConfig,
    mut on_level: impl FnMut(LevelEvent),
    mut on_topk: impl FnMut(TopKEvent),
) -> Result<TaneResult, TaneError> {
    run(
        relation,
        &config.base,
        Mode::TopK { k: config.k },
        &mut on_level,
        &mut on_topk,
        None,
    )
}

/// [`discover_fds_with`] with an external partition supplier: the
/// incremental **re-verify** entry point used by the `tane-delta` engine.
///
/// The search runs exactly as usual, except that every next-level candidate
/// is first offered to `hooks.supply`; a supplied partition skips that
/// candidate's product (counted in [`TaneStats::partitions_supplied`]
/// instead of [`TaneStats::products`]). Because a supplied partition must
/// equal the producted one as a set of classes, and every consumer of a
/// partition (`error_rows`, `is_superkey`, `g3`, refinement checks) is
/// independent of class order, the discovered dependencies, keys, and
/// [`LevelEvent`] stream are byte-identical to a from-scratch run on the
/// same relation — only the product counters differ.
pub fn reverify_fds_with(
    relation: &Relation,
    config: &TaneConfig,
    hooks: &mut ReverifyHooks<'_>,
    mut on_level: impl FnMut(LevelEvent),
) -> Result<TaneResult, TaneError> {
    run(
        relation,
        config,
        Mode::Exact,
        &mut on_level,
        &mut |_| {},
        Some(hooks),
    )
}

/// [`discover_approx_fds_with`] with an external partition supplier; see
/// [`reverify_fds_with`] for the supply contract.
pub fn reverify_approx_fds_with(
    relation: &Relation,
    config: &ApproxTaneConfig,
    hooks: &mut ReverifyHooks<'_>,
    mut on_level: impl FnMut(LevelEvent),
) -> Result<TaneResult, TaneError> {
    run(
        relation,
        &config.base,
        Mode::Approx {
            epsilon: config.epsilon,
            use_bounds: config.use_g3_bounds,
            aggressive: config.aggressive_rhs_plus,
        },
        &mut on_level,
        &mut |_| {},
        Some(hooks),
    )
}

/// External partition supply for the incremental re-verify pass.
///
/// `supply` is called once per [`NextLevelCandidate`], in the deterministic
/// candidate order of GENERATE-NEXT-LEVEL, on the serial driver thread —
/// so a supplier doubles as a visit log of exactly which lattice nodes the
/// search materializes. Returning `Some(π̂)` hands the search a
/// ready-made stripped partition for `candidate.set` (it must equal
/// `π̂_{parent_a} · π̂_{parent_b}` as a set of classes, over the same row
/// count); returning `None` lets the search compute the product itself.
pub struct ReverifyHooks<'a> {
    /// The partition supplier; see the struct docs for the contract.
    pub supply: &'a mut dyn FnMut(&NextLevelCandidate) -> Option<StrippedPartition>,
}

#[derive(Clone, Copy)]
enum Mode {
    Exact,
    Approx {
        epsilon: f64,
        use_bounds: bool,
        aggressive: bool,
    },
    /// Ranked anytime search for the `k` best non-redundant dependencies
    /// by `g3`; runs the exact-mode lattice walk (the `C⁺` machinery is
    /// sound for the ranked pool — every pruned test has an equal-or-better
    /// generalization, see DESIGN §12) plus the ranking state of
    /// [`crate::rank`].
    TopK {
        k: usize,
    },
}

/// Accumulates discovered dependencies plus, per rhs, the valid LHSs found
/// so far — the levelwise order makes "no recorded LHS is a subset" an exact
/// minimality test, used by the approximate-mode key outputs and superkey-
/// closure tests.
struct Discovery {
    fds: Vec<Fd>,
    minimal_lhs: Vec<Vec<AttrSet>>,
}

impl Discovery {
    fn new(n_attrs: usize) -> Discovery {
        Discovery {
            fds: Vec::new(),
            minimal_lhs: vec![Vec::new(); n_attrs],
        }
    }

    fn record(&mut self, fd: Fd) {
        self.minimal_lhs[fd.rhs].push(fd.lhs);
        self.fds.push(fd);
    }

    /// `true` iff some already-found valid dependency `V → rhs` has
    /// `V ⊆ lhs` (equality included, which also prevents duplicates).
    fn has_valid_subset(&self, lhs: AttrSet, rhs: usize) -> bool {
        self.minimal_lhs[rhs].iter().any(|&v| v.is_subset_of(lhs))
    }
}

/// Partition storage, dispatched statically per backend.
///
/// Reads (`get`, `elements_hint`) take `&self` and are safe from any worker
/// thread; every mutation stays `&mut self` and therefore on the serial
/// driver — the aliasing rules are what let the segment store run its
/// snapshot machinery without a global lock (DESIGN §13).
enum Store {
    Memory(MemoryStore),
    Disk(Box<SegmentStore>),
}

impl Store {
    fn from_config(config: &TaneConfig) -> Result<Store, TaneError> {
        Ok(match &config.storage {
            Storage::Memory => Store::Memory(MemoryStore::new()),
            Storage::Disk { cache_bytes } => Store::Disk(Box::new(match &config.disk_quota {
                Some(quota) => SegmentStore::with_quota(*cache_bytes, quota.clone())?,
                None => SegmentStore::new(*cache_bytes)?,
            })),
        })
    }

    fn put(&mut self, key: AttrSet, p: StrippedPartition) -> Result<(), TaneError> {
        match self {
            Store::Memory(s) => s.put(key, p)?,
            Store::Disk(s) => s.put(key, p)?,
        }
        Ok(())
    }

    fn get(&self, key: AttrSet) -> Result<std::sync::Arc<StrippedPartition>, TaneError> {
        Ok(match self {
            Store::Memory(s) => s.get(key)?,
            Store::Disk(s) => s.get(key)?,
        })
    }

    fn remove(&mut self, key: AttrSet) {
        match self {
            Store::Memory(s) => s.remove(key),
            Store::Disk(s) => s.remove(key),
        }
    }

    /// Declares the current batch of puts — one lattice level — complete.
    /// The segment store seals the level's segment file (records become
    /// immutable and `pread`-able by any worker) and releases the level's
    /// cache pins, making grandparent levels evictable level-at-a-time.
    fn seal_level(&mut self) -> Result<(), TaneError> {
        match self {
            Store::Memory(_) => Ok(()),
            Store::Disk(s) => Ok(s.seal_level()?),
        }
    }

    /// `‖π̂‖` of the stored partition, from index metadata alone (no I/O);
    /// 0 if absent. Drives the parallel-dispatch gate.
    fn elements_hint(&self, key: AttrSet) -> usize {
        match self {
            Store::Memory(s) => s.elements_hint(key).unwrap_or(0),
            Store::Disk(s) => s.elements_hint(key).unwrap_or(0),
        }
    }

    /// Opens a snapshot pin on the disk store (memory storage needs none):
    /// partitions fetched until the matching [`end_read_phase`] stay
    /// resident, and segments removed meanwhile stay on disk.
    ///
    /// [`end_read_phase`]: Store::end_read_phase
    fn begin_read_phase(&self) -> Option<ReadPhase> {
        match self {
            Store::Memory(_) => None,
            Store::Disk(s) => Some(s.begin_read_phase()),
        }
    }

    fn end_read_phase(&self, phase: Option<ReadPhase>) {
        if let (Store::Disk(s), Some(p)) = (self, phase) {
            s.end_read_phase(p);
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            Store::Memory(s) => s.resident_bytes(),
            Store::Disk(s) => s.resident_bytes(),
        }
    }

    fn disk_counters(&self) -> (u64, u64) {
        match self {
            Store::Memory(_) => (0, 0),
            Store::Disk(s) => (s.disk_reads(), s.disk_writes()),
        }
    }

    fn disk_byte_counters(&self) -> (u64, u64) {
        match self {
            Store::Memory(_) => (0, 0),
            Store::Disk(s) => (s.disk_bytes_read(), s.disk_bytes_written()),
        }
    }

    /// (evictions, snapshot pins, oversized-resident sweeps).
    fn cache_counters(&self) -> (u64, u64, u64) {
        match self {
            Store::Memory(_) => (0, 0, 0),
            Store::Disk(s) => (s.evictions(), s.snapshot_pins(), s.oversized_resident()),
        }
    }
}

/// Minimum estimated work — stripped-partition elements `Σ‖π̂‖` across a
/// batch — before the batch is dispatched to the worker pool; below this,
/// dispatch overhead costs more than the work. The old gate compared the
/// *candidate count*, which kept a ten-product level over millions of rows
/// serial; product and `g3` cost is proportional to partition elements,
/// not item count, so that is what the gate must estimate.
const PARALLEL_MIN_ELEMENTS: usize = 1 << 15;

/// The per-search parallel runtime: one persistent [`WorkerPool`] plus
/// per-worker scratch tables, all allocated once per run and reused across
/// every lattice level (no per-level thread spawns or O(|r|) allocations).
///
/// Determinism argument: workers write results into index-addressed
/// [`Slots`], so batch outputs are gathered in input order, and every
/// decision that *consumes* those outputs (C⁺ updates, pruning, FD
/// recording) stays in the serial driver — the search result is
/// byte-identical for any worker count.
struct ParallelRuntime {
    pool: WorkerPool,
    product_scratches: Vec<Mutex<ProductScratch>>,
    g3_scratches: Vec<Mutex<G3Scratch>>,
    /// Accumulated time the product stage waited on partition fetches
    /// (see [`TaneStats::fetch_stall`]).
    fetch_stall: Duration,
    /// Route disk-mode parent fetches through the legacy worker-0 funnel
    /// instead of direct concurrent reads (benchmark baseline; see
    /// [`TaneConfig::fetch_funnel`]).
    fetch_funnel: bool,
}

impl ParallelRuntime {
    fn new(threads: usize, n_rows: usize, fetch_funnel: bool) -> ParallelRuntime {
        let pool = WorkerPool::new(threads);
        ParallelRuntime {
            product_scratches: (0..threads)
                .map(|_| Mutex::new(ProductScratch::new(n_rows)))
                .collect(),
            g3_scratches: (0..threads)
                .map(|_| Mutex::new(G3Scratch::new(n_rows)))
                .collect(),
            pool,
            fetch_stall: Duration::ZERO,
            fetch_funnel,
        }
    }

    /// True when a batch of estimated `Σ‖π̂‖ = est_elements` is worth
    /// dispatching to the pool.
    fn engage(&self, est_elements: usize) -> bool {
        self.pool.threads() > 1 && est_elements >= PARALLEL_MIN_ELEMENTS
    }

    /// The level's products, in candidate order, with the caller's serial
    /// `driver` tail overlapped against the compute whenever the pool is
    /// engaged: workers chew through the products while the driver thread
    /// runs `driver()` — the observer event and the approximate-mode
    /// superkey-closure scan of the *previous* level — and only then joins
    /// in as worker 0. The driver closure must not read any product
    /// output; it runs concurrently with them.
    ///
    /// Workers fetch their own parents straight from the shared store
    /// (`get` is `&self`): disk reads from different workers proceed
    /// concurrently as positioned reads of sealed segments, coalesced by
    /// the store's single-flight cache. The whole batch runs inside one
    /// *read phase*, so every distinct parent costs exactly one disk read
    /// no matter how many workers ask or in what order — the disk-read
    /// counters stay byte-identical across worker counts, which is what
    /// keeps the §9 determinism argument intact now that fetch *timing* is
    /// no longer serialized (DESIGN §13).
    fn products_overlapped(
        &mut self,
        store: &mut Store,
        candidates: &[NextLevelCandidate],
        driver: impl FnOnce(),
    ) -> Result<Vec<(AttrSet, StrippedPartition)>, TaneError> {
        if candidates.is_empty() {
            driver();
            return Ok(Vec::new());
        }
        // Work estimate from index metadata alone — no partition is
        // touched before the phase opens, so the gate decision is I/O-free
        // and identical at every thread count.
        let est: usize = candidates
            .iter()
            .map(|c| store.elements_hint(c.parent_a) + store.elements_hint(c.parent_b))
            .sum();
        let phase = store.begin_read_phase();
        let result = self.products_inner(store, candidates, est, driver);
        store.end_read_phase(phase);
        result
    }

    fn products_inner(
        &mut self,
        store: &Store,
        candidates: &[NextLevelCandidate],
        est: usize,
        driver: impl FnOnce(),
    ) -> Result<Vec<(AttrSet, StrippedPartition)>, TaneError> {
        // Benchmark baseline: the legacy worker-0 fetch funnel, which
        // serializes every segment read behind one thread.
        if self.fetch_funnel && self.pool.threads() > 1 && matches!(store, Store::Disk(_)) {
            driver();
            return self.pipelined_products(store, candidates);
        }
        if self.engage(est) {
            let pool = &self.pool;
            let scratches = &self.product_scratches;
            let grain = adaptive_grain(candidates.len(), est, self.pool.threads());
            let slots = self.pool.run_indexed_overlapped(
                candidates.len(),
                grain,
                move |worker, i| {
                    let cand = &candidates[i];
                    let fetch_sw = Stopwatch::start();
                    let pair = store
                        .get(cand.parent_a)
                        .and_then(|pa| store.get(cand.parent_b).map(|pb| (pa, pb)));
                    pool.add_stall(worker, fetch_sw.elapsed());
                    pair.map(|(pa, pb)| {
                        let mut scratch = scratches[worker].lock().expect("product scratch");
                        (cand.set, product_with_scratch(&pa, &pb, &mut scratch))
                    })
                },
                driver,
            );
            // Slots are gathered in candidate order, so on failure the
            // error reported is the first failing *candidate*, independent
            // of which worker hit an error first.
            let mut out = Vec::with_capacity(slots.len());
            for slot in slots {
                out.push(slot?);
            }
            Ok(out)
        } else {
            driver();
            let fetch_sw = Stopwatch::start();
            let mut fetched = Vec::with_capacity(candidates.len());
            for cand in candidates {
                let pa = store.get(cand.parent_a)?;
                let pb = store.get(cand.parent_b)?;
                fetched.push((cand.set, pa, pb));
            }
            self.fetch_stall += fetch_sw.elapsed();
            let busy_sw = Stopwatch::start();
            let mut scratch = self.product_scratches[0].lock().expect("product scratch");
            let out = fetched
                .iter()
                .map(|(set, pa, pb)| (*set, product_with_scratch(pa, pb, &mut scratch)))
                .collect();
            drop(scratch);
            self.pool.add_busy(busy_sw.elapsed());
            Ok(out)
        }
    }

    /// The legacy disk-backend pipeline, kept behind
    /// [`TaneConfig::fetch_funnel`] as the measured baseline for
    /// `repro disk-scaling`: worker 0 streams parent pairs — in candidate
    /// order — through a bounded channel; every other worker (and worker 0
    /// itself, once the last fetch is sent) computes products into
    /// index-addressed slots. All segment reads serialize behind worker 0,
    /// which is exactly the bottleneck the shared-read store removes.
    fn pipelined_products(
        &mut self,
        store: &Store,
        candidates: &[NextLevelCandidate],
    ) -> Result<Vec<(AttrSet, StrippedPartition)>, TaneError> {
        type Item = (
            usize,
            AttrSet,
            Arc<StrippedPartition>,
            Arc<StrippedPartition>,
        );
        let depth = self.pool.threads() * 2;
        let (tx, rx) = mpsc::sync_channel::<Item>(depth);
        let tx = Mutex::new(Some(tx));
        let rx = Mutex::new(rx);
        let fetch_err: Mutex<Option<TaneError>> = Mutex::new(None);
        let slots: Slots<(AttrSet, StrippedPartition)> = Slots::new(candidates.len());
        let pool = &self.pool;
        let scratches = &self.product_scratches;
        pool.run(&|worker| {
            if worker == 0 {
                let tx = tx.lock().expect("sender").take().expect("fetcher sender");
                'fetch: for (i, cand) in candidates.iter().enumerate() {
                    let pair = store
                        .get(cand.parent_a)
                        .and_then(|pa| store.get(cand.parent_b).map(|pb| (pa, pb)));
                    let (pa, pb) = match pair {
                        Ok(p) => p,
                        Err(e) => {
                            *fetch_err.lock().expect("fetch error slot") = Some(e);
                            break;
                        }
                    };
                    let mut item = (i, cand.set, pa, pb);
                    // try_send instead of send: if every compute worker
                    // died of a panic, a blocking send would never return.
                    loop {
                        match tx.try_send(item) {
                            Ok(()) => break,
                            Err(mpsc::TrySendError::Full(back)) => {
                                if pool.panicked() {
                                    break 'fetch;
                                }
                                item = back;
                                std::thread::sleep(Duration::from_micros(50));
                            }
                            Err(mpsc::TrySendError::Disconnected(_)) => break 'fetch,
                        }
                    }
                }
                // Sender drops here: computers drain the queue and stop.
            }
            let mut scratch = scratches[worker].lock().expect("product scratch");
            loop {
                let wait_sw = Stopwatch::start();
                // lint:lock-order(scratches -> rx): each worker holds its
                // own scratch for the whole drain loop and briefly takes
                // the shared receiver; nothing ever grabs a scratch while
                // holding the receiver.
                let item = rx.lock().expect("receiver").recv();
                // Blocked-recv time is a fetch stall wherever it happens:
                // it is attributed to the worker that blocked, so the
                // pipeline's residual stall is visible per worker, not
                // just on the fetcher.
                pool.add_stall(worker, wait_sw.elapsed());
                match item {
                    Ok((i, set, pa, pb)) => {
                        pool.add_claims(worker, 1);
                        slots.put(i, (set, product_with_scratch(&pa, &pb, &mut scratch)));
                    }
                    Err(mpsc::RecvError) => break,
                }
            }
        });
        if let Some(e) = fetch_err.into_inner().expect("fetch error slot") {
            return Err(e);
        }
        Ok(slots.into_vec())
    }

    /// Level-1 singleton partitions, in attribute order.
    fn singleton_partitions(&self, relation: &Relation) -> Vec<StrippedPartition> {
        let n_attrs = relation.num_attrs();
        // Counting sort over a column touches all |r| rows, so the work
        // estimate is |R|·|r| (singleton partitions have ‖π̂‖ ≤ |r|).
        let est = n_attrs.saturating_mul(relation.num_rows());
        if self.engage(est) {
            let grain = adaptive_grain(n_attrs, est, self.pool.threads());
            self.pool.run_indexed(n_attrs, grain, |_, a| {
                StrippedPartition::from_column(relation.column_codes(a))
            })
        } else {
            let busy_sw = Stopwatch::start();
            let out = (0..n_attrs)
                .map(|a| StrippedPartition::from_column(relation.column_codes(a)))
                .collect();
            self.pool.add_busy(busy_sw.elapsed());
            out
        }
    }

    /// Exact `g3` for a batch of undecided validity tests, in input order.
    fn g3_batch(&self, pending: &[(Arc<StrippedPartition>, Arc<StrippedPartition>)]) -> Vec<usize> {
        let est: usize = pending
            .iter()
            .map(|(sub, set)| sub.num_elements() + set.num_elements())
            .sum();
        if self.engage(est) {
            let grain = adaptive_grain(pending.len(), est, self.pool.threads());
            self.pool.run_indexed(pending.len(), grain, |worker, i| {
                let (pi_sub, pi_set) = &pending[i];
                let mut scratch = self.g3_scratches[worker].lock().expect("g3 scratch");
                g3_removed_rows_with_scratch(pi_sub, pi_set, &mut scratch)
            })
        } else {
            let busy_sw = Stopwatch::start();
            let mut scratch = self.g3_scratches[0].lock().expect("g3 scratch");
            let out = pending
                .iter()
                .map(|(pi_sub, pi_set)| g3_removed_rows_with_scratch(pi_sub, pi_set, &mut scratch))
                .collect();
            drop(scratch);
            self.pool.add_busy(busy_sw.elapsed());
            out
        }
    }
}

fn run(
    relation: &Relation,
    config: &TaneConfig,
    mode: Mode,
    on_level: &mut dyn FnMut(LevelEvent),
    on_topk: &mut dyn FnMut(TopKEvent),
    mut hooks: Option<&mut ReverifyHooks<'_>>,
) -> Result<TaneResult, TaneError> {
    let sw = Stopwatch::start();
    let n_attrs = relation.num_attrs();
    let n_rows = relation.num_rows();
    let r_all = AttrSet::full(n_attrs);
    let mut stats = TaneStats::default();
    let mut disc = Discovery::new(n_attrs);
    let mut found_keys: Vec<AttrSet> = Vec::new();
    // Ranked mode: the heap + dominance pool, mutated on this thread only.
    let mut rank = match mode {
        Mode::TopK { k } => Some(RankState::new(k, n_attrs, n_rows)),
        _ => None,
    };

    if n_attrs == 0 {
        stats.elapsed = sw.elapsed();
        return Ok(TaneResult {
            fds: disc.fds,
            keys: found_keys,
            ranked: rank.map(RankState::into_ranked),
            stats,
        });
    }

    let mut store = Store::from_config(config)?;
    // The whole parallel runtime — pool threads and per-worker scratch
    // tables — is allocated here, once, and reused by every level.
    let mut runtime = ParallelRuntime::new(config.threads, n_rows, config.fetch_funnel);

    // L_0 = {∅} with C⁺(∅) = R. Its partition is the one-class π_∅,
    // needed by approximate validity tests at level 1.
    let unit = StrippedPartition::unit(n_rows);
    let mut prev_level = Level::new();
    prev_level.push(LevelEntry {
        set: AttrSet::empty(),
        cplus: r_all,
        error_rows: unit.error_rows(),
        is_superkey: unit.is_superkey(),
        deleted: false,
    });
    store.put(AttrSet::empty(), unit)?;

    // L_1: singleton partitions straight from the dictionary columns,
    // constructed on the pool when the relation is large enough (they are
    // independent counting sorts) and stored in attribute order either way.
    let mut current = Level::new();
    let singletons = runtime.singleton_partitions(relation);
    for (set, pi) in first_level_sets(n_attrs).into_iter().zip(singletons) {
        current.push(LevelEntry {
            set,
            cplus: r_all, // overwritten by COMPUTE-DEPENDENCIES
            error_rows: pi.error_rows(),
            is_superkey: pi.is_superkey(),
            deleted: false,
        });
        store.put(set, pi)?;
    }
    // Levels 0 and 1 are fully written: seal them so their records are
    // immutable on disk and readable by any worker from here on.
    store.seal_level()?;

    let mut ell = 1usize;
    while !current.is_empty() {
        let level_sw = Stopwatch::start();
        let fds_before = disc.fds.len();
        stats.levels = ell;
        let level_size = current.len();
        stats.sets_per_level.push(level_size);
        stats.sets_total += level_size;
        stats.sets_max_level = stats.sets_max_level.max(level_size);

        compute_dependencies(
            relation,
            config,
            mode,
            &mut current,
            &prev_level,
            &store,
            &runtime,
            &mut stats,
            &mut disc,
            rank.as_mut(),
        )?;

        // Partitions of level ℓ−1 are no longer needed: validity tests for
        // this level are done and products for level ℓ+1 use level ℓ.
        for e in prev_level.entries() {
            store.remove(e.set);
        }

        prune(
            config,
            &mut current,
            &mut stats,
            &mut disc,
            &mut found_keys,
            rank.as_mut(),
        );

        // What remains of the level is serial driver work — the
        // approximate-mode superkey-closure recovery and the observer
        // event — and it no longer gates the next level's products: in the
        // overlapped flow below, `level_tail` runs on the driver thread
        // *while* the pool multiplies the next level's partitions. That is
        // legal because the tail reads only level-ℓ metadata (never a
        // product output), and the products read only the frozen pruned
        // level (never `disc`, `stats`, or the observer's state); see
        // DESIGN §9 for the full argument.
        //
        // Ranked mode instead runs the tail *now*: its superkey-closure
        // scores feed the early-exit decision, which must be taken before
        // the next level's products are paid for — early exit is the whole
        // point of the ranked workload (DESIGN §12).
        if rank.is_some() {
            level_tail(
                config,
                mode,
                &current,
                &found_keys,
                n_rows,
                &mut stats,
                &mut disc,
                on_level,
                on_topk,
                rank.as_mut(),
                ell,
                fds_before,
                &level_sw,
                store.resident_bytes(),
            );
        }

        // LHS size cap: dependencies tested at level ℓ+1 have LHS size ℓ.
        if config.max_lhs.is_some_and(|m| ell > m) {
            if rank.is_none() {
                level_tail(
                    config,
                    mode,
                    &current,
                    &found_keys,
                    n_rows,
                    &mut stats,
                    &mut disc,
                    on_level,
                    on_topk,
                    None,
                    ell,
                    fds_before,
                    &level_sw,
                    store.resident_bytes(),
                );
            }
            stats.level_times.push(level_sw.elapsed());
            break;
        }

        // Ranked early exit: every candidate at a deeper level has an LHS
        // of ≥ ℓ attributes and so loses even a score tie against the
        // current k-th best (see RankState::early_exit); no remaining
        // level can enter the heap, so the walk stops here.
        if rank.as_ref().is_some_and(|r| r.early_exit(ell)) {
            stats.topk_early_exit_level = Some(ell);
            stats.level_times.push(level_sw.elapsed());
            break;
        }

        let candidates = generate_next_level(&current);
        let mut next = Level::new();
        // Incremental re-verify: offer every candidate, in order, to the
        // supplier first — still on the driver thread, still in the
        // deterministic candidate order of GENERATE-NEXT-LEVEL, *before*
        // any product is dispatched. A supplied partition already equals
        // the Lemma 3 product (as a set of classes), so its product is
        // skipped.
        let mut supplied: Vec<Option<StrippedPartition>> = match hooks.as_deref_mut() {
            Some(h) => candidates.iter().map(|c| (h.supply)(c)).collect(),
            None => (0..candidates.len()).map(|_| None).collect(),
        };
        let missing: Vec<_> = candidates
            .iter()
            .zip(&supplied)
            .filter(|(_, s)| s.is_none())
            .map(|(&c, _)| c)
            .collect();
        // The remaining partitions: parents stream out of the store in
        // candidate order and multiply per Lemma 3 — on the pool when the
        // level's estimated element volume warrants it, with disk fetches
        // pipelined against the products, and the level's serial tail
        // overlapped against the compute. `partitions_bytes` is captured
        // before dispatch: the store is untouched until the products are
        // gathered, so the observer sees the same value as the serial
        // ordering.
        let partitions_bytes = store.resident_bytes();
        let produced = if rank.is_some() {
            // Ranked mode already ran the tail above.
            runtime.products_overlapped(&mut store, &missing, || {})?
        } else {
            runtime.products_overlapped(&mut store, &missing, || {
                level_tail(
                    config,
                    mode,
                    &current,
                    &found_keys,
                    n_rows,
                    &mut stats,
                    &mut disc,
                    on_level,
                    on_topk,
                    None,
                    ell,
                    fds_before,
                    &level_sw,
                    partitions_bytes,
                )
            })?
        };
        stats.products += produced.len();
        stats.partitions_supplied += candidates.len() - missing.len();
        // Entries join `next` in exact candidate order whether their
        // partition was supplied or producted — entry order within a level
        // feeds the found-so-far minimality checks, so it must not depend
        // on which route a partition took.
        let mut produced = produced.into_iter();
        for (candidate, slot) in candidates.iter().zip(supplied.iter_mut()) {
            let (set, pi) = match slot.take() {
                Some(pi) => {
                    debug_assert_eq!(pi.n_rows(), n_rows, "supplied partition row count");
                    (candidate.set, pi)
                }
                None => produced
                    .next()
                    .expect("one product per unsupplied candidate"),
            };
            next.push(LevelEntry {
                set,
                cplus: r_all,
                error_rows: pi.error_rows(),
                is_superkey: pi.is_superkey(),
                deleted: false,
            });
            store.put(set, pi)?;
        }
        stats.peak_resident_bytes = stats.peak_resident_bytes.max(store.resident_bytes());
        // Level ℓ+1 is fully written: seal its segment (records become
        // immutable for concurrent reads) and release level ℓ's cache
        // pins — level-at-a-time eviction of the grandparent level.
        store.seal_level()?;

        // Partitions of deleted level-ℓ entries never participate in
        // products (deleted sets do not join); free them now.
        for e in current.entries().iter().filter(|e| e.deleted) {
            store.remove(e.set);
        }

        prev_level = current;
        current = next;
        ell += 1;
        stats.level_times.push(level_sw.elapsed());
    }

    let (reads, writes) = store.disk_counters();
    let (bytes_read, bytes_written) = store.disk_byte_counters();
    stats.disk_reads = reads;
    stats.disk_writes = writes;
    stats.disk_bytes_read = bytes_read;
    stats.disk_bytes_written = bytes_written;
    let (evictions, pins, oversized) = store.cache_counters();
    stats.store_evictions = evictions;
    stats.store_pins = pins;
    stats.oversized_resident = oversized;
    stats.parallel_workers = runtime.pool.threads();
    let totals = runtime.pool.totals();
    stats.parallel_grains = totals.claims;
    stats.worker_steals = totals.steals;
    stats.worker_parks = totals.parks;
    stats.worker_spin = totals.spin;
    stats.worker_busy = runtime.pool.busy_time();
    // Serial fetch phases accumulate on the runtime; the pipelined backend
    // attributes blocked-recv time per worker into the pool's counters.
    stats.fetch_stall = runtime.fetch_stall + totals.stall;
    stats.elapsed = sw.elapsed();
    found_keys.sort_unstable();
    if let Some(r) = rank {
        stats.topk_bound_pruned = r.bound_pruned;
        stats.topk_dominated = r.dominated;
        stats.topk_improvements = r.improvements;
        let ranked = r.into_ranked();
        return Ok(TaneResult {
            fds: canonical_fds(ranked.iter().map(|e| e.fd).collect()),
            keys: found_keys,
            ranked: Some(ranked),
            stats,
        });
    }
    Ok(TaneResult {
        fds: canonical_fds(disc.fds),
        keys: found_keys,
        ranked: None,
        stats,
    })
}

/// The serial tail of a lattice level: everything that must happen after
/// PRUNE but does not touch the next level's partitions. In the overlapped
/// flow this runs on the driver thread while the pool computes the next
/// level's products (see [`ParallelRuntime::products_overlapped`]); the
/// level's dependency set is final the moment PRUNE returns, so the
/// observer event here carries exactly the dependencies a serial run would
/// report, in the same order.
#[allow(clippy::too_many_arguments)]
fn level_tail(
    config: &TaneConfig,
    mode: Mode,
    current: &Level,
    found_keys: &[AttrSet],
    n_rows: usize,
    stats: &mut TaneStats,
    disc: &mut Discovery,
    on_level: &mut dyn FnMut(LevelEvent),
    on_topk: &mut dyn FnMut(TopKEvent),
    mut rank: Option<&mut RankState>,
    ell: usize,
    fds_before: usize,
    level_sw: &Stopwatch,
    partitions_bytes: usize,
) {
    // Approximate mode only: recover the dependencies whose test nodes
    // key pruning cut away (see the module docs).
    if let Mode::Approx { epsilon, .. } = mode {
        if config.key_pruning {
            superkey_closure_tests(config, current, found_keys, epsilon, n_rows, stats, disc);
        }
    }
    // Ranked mode: the same recovery, scored — for a live `W` and rhs `A`
    // with `W ∪ {A}` above a pruned key, `g3(W → A) = e(W)` exactly.
    if let Mode::TopK { .. } = mode {
        let rank = rank.as_deref_mut().expect("ranked mode carries rank state");
        if config.key_pruning {
            topk_superkey_closure(config, current, found_keys, stats, rank);
        }
    }

    // The level's dependency set is final here — deeper levels only ever
    // have larger LHSs, so nothing below can shadow a dependency found at
    // this level. Streaming consumers receive the event while the next
    // level's partitions are still being producted.
    on_level(LevelEvent {
        level: ell,
        new_minimal_fds: canonical_fds(disc.fds[fds_before..].to_vec()),
        level_time: level_sw.elapsed(),
        partitions_bytes,
    });

    // Ranked mode: one heap snapshot per level on which the heap changed,
    // after the level line — the stream's anytime result.
    if let Some(rank) = rank {
        if let Some(heap) = rank.take_snapshot() {
            on_topk(TopKEvent { level: ell, heap });
        }
    }
}

/// COMPUTE-DEPENDENCIES(L_ℓ) — paper, Section 5.
#[allow(clippy::too_many_arguments)]
fn compute_dependencies(
    relation: &Relation,
    config: &TaneConfig,
    mode: Mode,
    current: &mut Level,
    prev: &Level,
    store: &Store,
    runtime: &ParallelRuntime,
    stats: &mut TaneStats,
    disc: &mut Discovery,
    mut rank: Option<&mut RankState>,
) -> Result<(), TaneError> {
    let n_attrs = relation.num_attrs();
    let n_rows = relation.num_rows();
    let r_all = AttrSet::full(n_attrs);

    // Line 2: C⁺(X) := ∩_{A ∈ X} C⁺(X \ {A}).
    for i in 0..current.entries().len() {
        let set = current.entries()[i].set;
        let mut cplus = r_all;
        for (_, sub) in set.proper_subsets_one_smaller() {
            match prev.get(sub) {
                Some(p) => cplus &= p.cplus,
                None => {
                    cplus = AttrSet::empty();
                    break;
                }
            }
        }
        current.entries_mut()[i].cplus = cplus;
    }

    // Lines 3–8: validity tests on X\{A} → A for A ∈ X ∩ C⁺(X).
    //
    // Within one level the tests are mutually independent: each candidate
    // list `X ∩ C⁺(X)` is fixed by the line-2 pass above, and a test's
    // outcome depends only on previous-level summaries and partitions —
    // never on another test's C⁺ update. Approximate mode exploits that by
    // splitting the loop in two: a *decide* pass that resolves every test
    // (batching the undecided-by-bounds exact `g3` computations onto the
    // worker pool), then an *apply* pass that replays the tests in the
    // original serial order, recording dependencies and refining C⁺ —
    // so the output is byte-identical to the serial interleaving.
    let decisions = match mode {
        Mode::Exact | Mode::TopK { .. } => None,
        Mode::Approx {
            epsilon,
            use_bounds,
            ..
        } => Some(decide_approx_tests(
            current, prev, store, runtime, stats, epsilon, use_bounds, n_rows,
        )?),
    };
    // Ranked mode: its own decide pass — Lemma 2 first, then the heap
    // bound, batching the surviving exact `g3` scores onto the pool.
    let topk_decisions = match mode {
        Mode::TopK { .. } => Some(decide_topk_tests(
            current,
            prev,
            store,
            runtime,
            stats,
            rank.as_deref_mut().expect("ranked mode carries rank state"),
        )?),
        _ => None,
    };
    let mut next_decision = decisions.iter().flatten();
    let mut next_topk = topk_decisions.iter().flatten();
    for i in 0..current.entries().len() {
        let entry = &current.entries()[i];
        let set = entry.set;
        let x_error = entry.error_rows;
        let candidates = set.intersect(entry.cplus);
        let mut cplus = entry.cplus;
        for a in candidates.iter() {
            let (valid, holds_exactly) = match mode {
                Mode::Exact => {
                    let sub_entry = prev.get(set.without(a)).expect(
                        "non-empty C+ implies every parent is present in the previous level",
                    );
                    stats.validity_tests += 1;
                    let v = sub_entry.error_rows == x_error;
                    (v, v)
                }
                Mode::Approx { aggressive, .. } => {
                    match next_decision.next().expect("one decision per test") {
                        TestDecision::ValidExactly => (true, true),
                        // The paper-faithful heuristic treats approximately
                        // valid dependencies like exact ones for line 8
                        // (see ApproxTaneConfig::aggressive_rhs_plus).
                        TestDecision::ValidApproximately => (true, aggressive),
                        TestDecision::Invalid => (false, false),
                    }
                }
                Mode::TopK { .. } => {
                    let rank = rank.as_deref_mut().expect("ranked mode carries rank state");
                    match *next_topk.next().expect("one decision per test") {
                        // Exactly valid: a minimal exact FD (a ∈ C⁺(X)
                        // guarantees minimality) — a pool entrant with
                        // score 0, and the usual C⁺ updates apply.
                        TopKDecision::ValidExactly => {
                            rank.offer(Fd::new(set.without(a), a), 0);
                            (true, true)
                        }
                        // Scored candidate: a ranked pool entrant iff no
                        // recorded generalization is at least as good. The
                        // dependency does not *hold*, so C⁺ is untouched.
                        TopKDecision::Scored { g3_rows } => {
                            let fd = Fd::new(set.without(a), a);
                            if rank.is_dominated(fd.lhs, a, g3_rows) {
                                rank.dominated += 1;
                            } else {
                                rank.offer(fd, g3_rows);
                            }
                            (false, false)
                        }
                        TopKDecision::Skipped => (false, false),
                    }
                }
            };
            if valid {
                // Line 6: output the minimal dependency.
                disc.record(Fd::new(set.without(a), a));
                // Line 7: remove A from C⁺(X).
                cplus.remove(a);
                // Line 8 (exact) / 8′–9′ (approximate): the rhs⁺ refinement
                // is only sound when the dependency holds *exactly*.
                if config.rhs_plus_pruning && holds_exactly {
                    cplus -= r_all.difference(set);
                }
            }
        }
        current.entries_mut()[i].cplus = cplus;
    }
    Ok(())
}

/// The outcome of one approximate validity test, decided ahead of the
/// serial apply pass.
#[derive(Clone, Copy)]
enum TestDecision {
    /// `g3 = 0`: the dependency holds exactly (Lemma 2 comparison).
    ValidExactly,
    /// `0 < g3 ≤ ε`: holds approximately (bounds or exact `g3`).
    ValidApproximately,
    /// `g3 > ε`.
    Invalid,
}

/// Approximate-mode decide pass: resolves every validity test of the level
/// in the serial candidate order — Lemma 2 equality first, then the quick
/// `g3` bounds, leaving only the genuinely undecided tests, whose exact
/// O(‖π̂‖) `g3` computations are batched onto the worker pool. Partition
/// fetches for the batch stay on this thread, in test order, so the disk
/// cache evolves exactly as under the serial interleaving.
#[allow(clippy::too_many_arguments)]
fn decide_approx_tests(
    current: &Level,
    prev: &Level,
    store: &Store,
    runtime: &ParallelRuntime,
    stats: &mut TaneStats,
    epsilon: f64,
    use_bounds: bool,
    n_rows: usize,
) -> Result<Vec<TestDecision>, TaneError> {
    let mut decisions: Vec<TestDecision> = Vec::new();
    // Index into `pending` per undecided test, parallel to `decisions`.
    let mut pending_at: Vec<Option<usize>> = Vec::new();
    let mut pending: Vec<(Arc<StrippedPartition>, Arc<StrippedPartition>)> = Vec::new();
    for entry in current.entries() {
        let set = entry.set;
        let x_error = entry.error_rows;
        for a in set.intersect(entry.cplus).iter() {
            let sub = set.without(a);
            let sub_entry = prev
                .get(sub)
                .expect("non-empty C+ implies every parent is present in the previous level");
            stats.validity_tests += 1;
            if sub_entry.error_rows == x_error {
                decisions.push(TestDecision::ValidExactly);
                pending_at.push(None);
                continue;
            }
            if use_bounds {
                let bounds = G3Bounds {
                    lower_rows: sub_entry.error_rows.saturating_sub(x_error),
                    upper_rows: sub_entry.error_rows,
                    n_rows,
                };
                if let Some(decision) = bounds.decide(epsilon) {
                    stats.g3_decided_by_bounds += 1;
                    decisions.push(if decision {
                        TestDecision::ValidApproximately
                    } else {
                        TestDecision::Invalid
                    });
                    pending_at.push(None);
                    continue;
                }
            }
            let pi_sub = store.get(sub)?;
            let pi_set = store.get(set)?;
            decisions.push(TestDecision::Invalid); // placeholder, patched below
            pending_at.push(Some(pending.len()));
            pending.push((pi_sub, pi_set));
        }
    }
    if !pending.is_empty() {
        stats.g3_exact_computations += pending.len();
        let removed = runtime.g3_batch(&pending);
        for (slot, at) in decisions.iter_mut().zip(&pending_at) {
            if let Some(k) = *at {
                let valid = n_rows == 0 || removed[k] as f64 / n_rows as f64 <= epsilon;
                *slot = if valid {
                    TestDecision::ValidApproximately
                } else {
                    TestDecision::Invalid
                };
            }
        }
    }
    Ok(decisions)
}

/// The outcome of one ranked-mode validity test, decided ahead of the
/// serial apply pass.
#[derive(Clone, Copy)]
enum TopKDecision {
    /// `g3 = 0` by the Lemma 2 comparison: a minimal exact dependency.
    ValidExactly,
    /// A ranked candidate whose exact `g3` score is known (from the batch
    /// computation, or for free when the node is a superkey and the two
    /// bounds coincide).
    Scored {
        /// Exact `g3 · |r|` of the test's dependency.
        g3_rows: usize,
    },
    /// Skipped before its exact `g3` was paid for: the cheap lower bound
    /// could not beat the current k-th best, or a recorded generalization
    /// already dominates even the lower bound.
    Skipped,
}

/// Ranked-mode decide pass: resolves every validity test of the level in
/// the serial candidate order — Lemma 2 equality first, then the heap
/// bound against the k-th best *as of the start of the level* (the heap is
/// only mutated by the serial apply pass, so the threshold each test sees
/// is independent of the worker count), leaving only candidates that could
/// enter the heap, whose exact O(‖π̂‖) `g3` scores are batched onto the
/// worker pool. Pruning against the level-start threshold is sound — the
/// threshold only ever tightens — and the apply pass re-checks each final
/// score against the live threshold before inserting.
fn decide_topk_tests(
    current: &Level,
    prev: &Level,
    store: &Store,
    runtime: &ParallelRuntime,
    stats: &mut TaneStats,
    rank: &mut RankState,
) -> Result<Vec<TopKDecision>, TaneError> {
    let mut decisions: Vec<TopKDecision> = Vec::new();
    // Index into `pending` per undecided test, parallel to `decisions`.
    let mut pending_at: Vec<Option<usize>> = Vec::new();
    let mut pending: Vec<(Arc<StrippedPartition>, Arc<StrippedPartition>)> = Vec::new();
    for entry in current.entries() {
        let set = entry.set;
        let x_error = entry.error_rows;
        for a in set.intersect(entry.cplus).iter() {
            let sub = set.without(a);
            let sub_entry = prev
                .get(sub)
                .expect("non-empty C+ implies every parent is present in the previous level");
            stats.validity_tests += 1;
            if sub_entry.error_rows == x_error {
                decisions.push(TopKDecision::ValidExactly);
                pending_at.push(None);
                continue;
            }
            // Superkey node: e(X) = 0, the `g3` bounds coincide, and the
            // score e(X\{A}) is exact without touching the partitions.
            if x_error == 0 {
                decisions.push(TopKDecision::Scored {
                    g3_rows: sub_entry.error_rows,
                });
                pending_at.push(None);
                continue;
            }
            let fd = Fd::new(sub, a);
            // Quick lower bound in rows: g3 ≥ e(X\{A}) − e(X) (paper §5's
            // bound, here steering the ranked pruning instead of an ε
            // threshold). Sound to prune on: the true score is at least
            // the bound, and rank_key is monotone in the score.
            let lower = sub_entry.error_rows - x_error;
            if rank.cannot_enter(&fd, lower) {
                rank.note_bound_pruned();
                decisions.push(TopKDecision::Skipped);
                pending_at.push(None);
                continue;
            }
            // Dominated even at the lower bound: the true score can only
            // be worse, so the candidate is redundant for sure.
            if rank.is_dominated(sub, a, lower) {
                rank.dominated += 1;
                decisions.push(TopKDecision::Skipped);
                pending_at.push(None);
                continue;
            }
            let pi_sub = store.get(sub)?;
            let pi_set = store.get(set)?;
            decisions.push(TopKDecision::Scored { g3_rows: 0 }); // patched below
            pending_at.push(Some(pending.len()));
            pending.push((pi_sub, pi_set));
        }
    }
    if !pending.is_empty() {
        stats.g3_exact_computations += pending.len();
        let removed = runtime.g3_batch(&pending);
        for (slot, at) in decisions.iter_mut().zip(&pending_at) {
            if let Some(k) = *at {
                *slot = TopKDecision::Scored {
                    g3_rows: removed[k],
                };
            }
        }
    }
    Ok(decisions)
}

/// PRUNE(L_ℓ) — paper, Section 5: delete sets with empty `C⁺`, and delete
/// keys after emitting the minimal dependencies that their supersets would
/// have produced.
fn prune(
    config: &TaneConfig,
    current: &mut Level,
    stats: &mut TaneStats,
    disc: &mut Discovery,
    found_keys: &mut Vec<AttrSet>,
    mut rank: Option<&mut RankState>,
) {
    for i in 0..current.entries().len() {
        let entry = &current.entries()[i];
        if entry.deleted {
            continue;
        }
        let set = entry.set;
        // Lines 2–3: empty rhs⁺ candidate set.
        if config.empty_cplus_pruning && entry.cplus.is_empty() {
            current.entries_mut()[i].deleted = true;
            continue;
        }
        // Lines 4–8: key pruning.
        if config.key_pruning && entry.is_superkey {
            stats.keys_found += 1;
            let lhs_ok = config.max_lhs.is_none_or(|m| set.len() <= m);
            if lhs_ok {
                let outside = entry.cplus.difference(set);
                for a in outside.iter() {
                    // X is a superkey, so X → A always holds exactly; only
                    // minimality needs checking (PRUNE line 6). The paper
                    // tests A ∈ ∩_{B ∈ X} C⁺(X ∪ {A} \ {B}) over same-level
                    // sets, but those sets can be missing precisely because
                    // a *subset key* was pruned earlier — e.g. with key {D},
                    // the sets {B,D} and {C,D} are never generated, and the
                    // minimal FD {B,C} → D would be skipped at key {B,C}.
                    // Checking against the dependencies found so far is
                    // exact: every valid V → A with V ⊂ X (|V| < ℓ) has a
                    // minimal witness already recorded by the levelwise
                    // order.
                    if !disc.has_valid_subset(set, a) {
                        disc.record(Fd::new(set, a));
                        // Ranked mode: an exactly valid minimal dependency
                        // is always a pool entrant (score 0, and no proper
                        // subset can do better than 0 without shadowing
                        // its minimality).
                        if let Some(r) = rank.as_deref_mut() {
                            r.offer(Fd::new(set, a), 0);
                        }
                    }
                }
            }
            // Line 8: delete the key; remember it (the approximate-mode
            // superkey-closure tests consume the list, and TaneResult
            // exposes it as the relation's candidate keys).
            current.entries_mut()[i].deleted = true;
            found_keys.push(set);
        }
    }
}

/// Approximate-mode recovery of dependencies lost to key pruning (see the
/// module docs): for a live node `W` and rhs candidate `A ∉ W`, if
/// `W ∪ {A}` contains a pruned key then `π_{W∪{A}}` is a superkey partition
/// and `g3(W → A) = e(W)` exactly, so the validity test is free.
fn superkey_closure_tests(
    config: &TaneConfig,
    current: &Level,
    found_keys: &[AttrSet],
    epsilon: f64,
    n_rows: usize,
    stats: &mut TaneStats,
    disc: &mut Discovery,
) {
    if found_keys.is_empty() {
        return;
    }
    let mut recovered: Vec<Fd> = Vec::new();
    for entry in current.entries().iter().filter(|e| !e.deleted) {
        let w = entry.set;
        if config.max_lhs.is_some_and(|m| w.len() > m) {
            continue;
        }
        for a in entry.cplus.difference(w).iter() {
            let y = w.with(a);
            if !found_keys.iter().any(|&k| k.is_subset_of(y)) {
                continue; // Y will be (or was) generated; the normal path covers it.
            }
            stats.validity_tests += 1;
            let valid = n_rows == 0 || (entry.error_rows as f64 / n_rows as f64) <= epsilon;
            if valid && !disc.has_valid_subset(w, a) {
                recovered.push(Fd::new(w, a));
            }
        }
    }
    // Recovered LHSs all have the same size, so none can shadow another;
    // record them after the scan so the minimality checks above see a
    // consistent snapshot.
    for fd in recovered {
        disc.record(fd);
    }
}

/// Ranked-mode counterpart of [`superkey_closure_tests`]: the same test
/// nodes that key pruning cut away, offered to the heap with their exact
/// scores — for a live `W` and rhs `A ∉ W` with `W ∪ {A}` above a pruned
/// key, `π_{W∪{A}}` is a superkey partition and `g3(W → A) = e(W)`, so the
/// score is free. Runs before the level's early-exit check so a recovered
/// entrant can keep the walk alive (DESIGN §12).
fn topk_superkey_closure(
    config: &TaneConfig,
    current: &Level,
    found_keys: &[AttrSet],
    stats: &mut TaneStats,
    rank: &mut RankState,
) {
    if found_keys.is_empty() {
        return;
    }
    for entry in current.entries().iter().filter(|e| !e.deleted) {
        let w = entry.set;
        if config.max_lhs.is_some_and(|m| w.len() > m) {
            continue;
        }
        for a in entry.cplus.difference(w).iter() {
            let y = w.with(a);
            if !found_keys.iter().any(|&k| k.is_subset_of(y)) {
                continue; // Y will be (or was) generated; the normal path covers it.
            }
            stats.validity_tests += 1;
            let fd = Fd::new(w, a);
            if rank.cannot_enter(&fd, entry.error_rows) {
                rank.note_bound_pruned();
                continue;
            }
            if rank.is_dominated(w, a, entry.error_rows) {
                rank.dominated += 1;
                continue;
            }
            rank.offer(fd, entry.error_rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ApproxTaneConfig, TaneConfig};
    use tane_baselines::{brute_force_approx_fds, brute_force_fds, verify_minimal_cover};
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn exact_matches_brute_force_on_figure1() {
        let r = figure1();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert_eq!(result.fds, brute_force_fds(&r, 4));
        assert!(verify_minimal_cover(&r, &result.fds, 4, 0.0).is_empty());
        assert!(result.stats.validity_tests > 0);
        assert!(result.stats.sets_total >= 4);
    }

    #[test]
    fn figure1_contains_known_dependencies() {
        let r = figure1();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        // {B,C} → A from the paper's Example 2.
        assert!(result
            .fds
            .contains(&Fd::new(AttrSet::from_indices([1, 2]), 0)));
        // {A} → B does not hold.
        assert!(!result.fds.contains(&Fd::new(AttrSet::singleton(0), 1)));
    }

    #[test]
    fn all_pruning_ablations_agree() {
        let r = figure1();
        let reference = discover_fds(&r, &TaneConfig::default()).unwrap().fds;
        for (rhs_plus, key) in [(false, false), (false, true), (true, false)] {
            let config = TaneConfig {
                rhs_plus_pruning: rhs_plus,
                key_pruning: key,
                ..TaneConfig::default()
            };
            let got = discover_fds(&r, &config).unwrap().fds;
            assert_eq!(got, reference, "rhs_plus={rhs_plus} key={key}");
        }
        // Even without empty-C+ pruning.
        let config = TaneConfig {
            rhs_plus_pruning: false,
            key_pruning: false,
            empty_cplus_pruning: false,
            ..TaneConfig::default()
        };
        assert_eq!(discover_fds(&r, &config).unwrap().fds, reference);
    }

    #[test]
    fn disk_storage_agrees_with_memory() {
        let r = figure1();
        let mem = discover_fds(&r, &TaneConfig::default()).unwrap();
        let disk = discover_fds(&r, &TaneConfig::disk(1 << 12)).unwrap();
        assert_eq!(mem.fds, disk.fds);
        assert!(
            disk.stats.disk_writes > 0,
            "disk variant must spill partitions"
        );
        assert!(
            disk.stats.disk_bytes_written > 0,
            "spills must be accounted in bytes"
        );
        assert_eq!(mem.stats.disk_bytes_written, 0);
    }

    #[test]
    fn level_times_cover_every_level() {
        let r = figure1();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        let s = &result.stats;
        assert_eq!(s.level_times.len(), s.sets_per_level.len());
        let level_sum: std::time::Duration = s.level_times.iter().sum();
        assert!(level_sum <= s.elapsed);
        // The max_lhs early exit must not drop the last level's timing.
        let limited = discover_fds(&r, &TaneConfig::default().with_max_lhs(1)).unwrap();
        assert_eq!(
            limited.stats.level_times.len(),
            limited.stats.sets_per_level.len()
        );
    }

    #[test]
    fn approximate_at_zero_equals_exact() {
        let r = figure1();
        let exact = discover_fds(&r, &TaneConfig::default()).unwrap();
        let approx = discover_approx_fds(&r, &ApproxTaneConfig::new(0.0)).unwrap();
        assert_eq!(exact.fds, approx.fds);
    }

    #[test]
    fn approximate_matches_brute_force_across_thresholds() {
        let r = figure1();
        for &eps in &[0.0, 0.01, 0.125, 0.25, 0.375, 0.5, 1.0] {
            let got = discover_approx_fds(&r, &ApproxTaneConfig::new(eps)).unwrap();
            let want = brute_force_approx_fds(&r, 4, eps);
            assert_eq!(got.fds, want, "epsilon={eps}");
        }
    }

    #[test]
    fn g3_bounds_ablation_gives_identical_results() {
        let r = figure1();
        for &eps in &[0.05, 0.25, 0.5] {
            let mut with = ApproxTaneConfig::new(eps);
            with.use_g3_bounds = true;
            let mut without = ApproxTaneConfig::new(eps);
            without.use_g3_bounds = false;
            let a = discover_approx_fds(&r, &with).unwrap();
            let b = discover_approx_fds(&r, &without).unwrap();
            assert_eq!(a.fds, b.fds, "epsilon={eps}");
            assert!(
                a.stats.g3_decided_by_bounds > 0,
                "bounds should fire at eps={eps}"
            );
            assert_eq!(b.stats.g3_decided_by_bounds, 0);
        }
    }

    #[test]
    fn epsilon_one_accepts_everything_minimal() {
        let r = figure1();
        let result = discover_approx_fds(&r, &ApproxTaneConfig::new(1.0)).unwrap();
        // At ε = 1 every ∅ → A is valid, so the cover is exactly those.
        let expected: Vec<Fd> = (0..4).map(|a| Fd::new(AttrSet::empty(), a)).collect();
        assert_eq!(result.fds, expected);
    }

    #[test]
    fn max_lhs_limits_search() {
        let r = figure1();
        let full = discover_fds(&r, &TaneConfig::default()).unwrap();
        for m in 0..=4 {
            let limited = discover_fds(&r, &TaneConfig::default().with_max_lhs(m)).unwrap();
            assert!(limited.fds.iter().all(|fd| fd.lhs.len() <= m), "m={m}");
            assert_eq!(limited.fds, brute_force_fds(&r, m), "m={m}");
            assert!(limited.stats.levels <= m + 1);
        }
        let unlimited = discover_fds(&r, &TaneConfig::default().with_max_lhs(4)).unwrap();
        assert_eq!(unlimited.fds, full.fds);
    }

    #[test]
    fn empty_relation_yields_vacuous_cover() {
        let r = Relation::builder(Schema::new(["A", "B"]).unwrap()).build();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert_eq!(result.fds, brute_force_fds(&r, 2));
        assert_eq!(
            result.fds,
            vec![Fd::new(AttrSet::empty(), 0), Fd::new(AttrSet::empty(), 1)]
        );
    }

    #[test]
    fn zero_attribute_relation() {
        let r = Relation::builder(Schema::new(Vec::<String>::new()).unwrap()).build();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert!(result.fds.is_empty());
        assert_eq!(result.stats.levels, 0);
    }

    #[test]
    fn single_row_relation() {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![1], vec![2], vec![3]]).unwrap();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert_eq!(result.fds, brute_force_fds(&r, 3));
    }

    #[test]
    fn duplicate_rows_mean_no_keys() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![0, 0], vec![1, 1]]).unwrap();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert_eq!(result.fds, brute_force_fds(&r, 2));
        assert_eq!(result.stats.keys_found, 0);
    }

    #[test]
    fn key_pruning_emits_key_dependencies() {
        // A is a key: {A} → B and {A} → C must be emitted via key pruning.
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let r = Relation::from_codes(
            schema,
            vec![vec![0, 1, 2, 3], vec![0, 0, 1, 1], vec![5, 5, 5, 6]],
        )
        .unwrap();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert_eq!(result.fds, brute_force_fds(&r, 3));
        assert!(result.fds.contains(&Fd::new(AttrSet::singleton(0), 1)));
        assert!(result.fds.contains(&Fd::new(AttrSet::singleton(0), 2)));
        assert!(result.stats.keys_found >= 1);
    }

    #[test]
    fn candidate_keys_are_reported() {
        // A is a key; so is {B,C} (codes chosen so B,C pairs are unique).
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let r = Relation::from_codes(
            schema,
            vec![vec![0, 1, 2, 3], vec![0, 0, 1, 1], vec![0, 1, 0, 1]],
        )
        .unwrap();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        assert!(result.keys.contains(&AttrSet::singleton(0)));
        assert!(result.keys.contains(&AttrSet::from_indices([1, 2])));
        // Keys are minimal: no key contains another.
        for (i, &a) in result.keys.iter().enumerate() {
            for &b in &result.keys[i + 1..] {
                assert!(!a.is_subset_of(b) && !b.is_subset_of(a));
            }
        }
        // The figure-1 relation has {A,D}-style two-attribute keys.
        let fig = figure1();
        let result = discover_fds(&fig, &TaneConfig::default()).unwrap();
        assert!(result.keys.contains(&AttrSet::from_indices([0, 3])));
        assert!(!result.keys.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let r = figure1();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        let s = &result.stats;
        assert_eq!(s.sets_per_level.iter().sum::<usize>(), s.sets_total);
        assert_eq!(s.sets_per_level.len(), s.levels);
        assert_eq!(*s.sets_per_level.iter().max().unwrap(), s.sets_max_level);
        assert!(s.elapsed > std::time::Duration::ZERO);
        assert!(s.products > 0);
    }

    #[test]
    fn level_events_partition_the_cover_in_lattice_order() {
        let r = figure1();
        let mut events: Vec<LevelEvent> = Vec::new();
        let result = discover_fds_with(&r, &TaneConfig::default(), |ev| events.push(ev)).unwrap();
        // One event per level, in order 1, 2, 3, …
        assert_eq!(events.len(), result.stats.levels);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.level, i + 1);
            // Every FD first proven at level ℓ has a LHS of ℓ−1 attributes,
            // except key-pruning outputs, whose LHS (the key) has ℓ.
            assert!(ev
                .new_minimal_fds
                .iter()
                .all(|fd| { fd.lhs.len() == ev.level - 1 || fd.lhs.len() == ev.level }));
        }
        // The union of the events is exactly the buffered cover.
        let mut streamed: Vec<Fd> = events
            .iter()
            .flat_map(|ev| ev.new_minimal_fds.iter().copied())
            .collect();
        streamed = canonical_fds(streamed);
        assert_eq!(streamed, result.fds);
    }

    #[test]
    fn level_events_fire_for_approx_and_respect_max_lhs() {
        let r = figure1();
        let mut levels = Vec::new();
        let result = discover_approx_fds_with(&r, &ApproxTaneConfig::new(0.125), |ev| {
            levels.push(ev.level)
        })
        .unwrap();
        assert_eq!(levels, (1..=result.stats.levels).collect::<Vec<_>>());
        let streamed_union = |events: &[LevelEvent]| {
            canonical_fds(
                events
                    .iter()
                    .flat_map(|e| e.new_minimal_fds.iter().copied())
                    .collect(),
            )
        };
        let mut events = Vec::new();
        let limited = discover_fds_with(&r, &TaneConfig::default().with_max_lhs(1), |ev| {
            events.push(ev)
        })
        .unwrap();
        assert_eq!(
            events.len(),
            limited.stats.levels,
            "the early-exit level still fires"
        );
        assert_eq!(streamed_union(&events), limited.fds);
    }

    #[test]
    fn buffered_and_observed_runs_agree() {
        let r = figure1();
        let buffered = discover_fds(&r, &TaneConfig::default()).unwrap();
        let observed = discover_fds_with(&r, &TaneConfig::default(), |_| {}).unwrap();
        assert_eq!(buffered.fds, observed.fds);
        assert_eq!(buffered.keys, observed.keys);
    }

    #[test]
    fn concatenated_copies_preserve_the_cover() {
        // The paper's ×n construction: same dependencies, more rows.
        let r = figure1();
        let base = discover_fds(&r, &TaneConfig::default()).unwrap();
        let r8 = r.concat_disjoint_copies(8).unwrap();
        let big = discover_fds(&r8, &TaneConfig::default()).unwrap();
        assert_eq!(base.fds, big.fds);
    }
}
