#![forbid(unsafe_code)]
//! # TANE: levelwise discovery of functional and approximate dependencies
//!
//! This crate implements the algorithm of Huhtala, Kärkkäinen, Porkka and
//! Toivonen, *"Efficient Discovery of Functional and Approximate
//! Dependencies Using Partitions"* (ICDE 1998): a breadth-first search of
//! the attribute-set containment lattice that finds **all minimal
//! non-trivial functional dependencies** of a relation — and, with a
//! threshold `ε`, all minimal **approximate** dependencies with
//! `g3(X → A) ≤ ε`.
//!
//! ## Quick start
//!
//! ```
//! use tane_core::{discover_fds, TaneConfig};
//! use tane_relation::{Relation, Schema, Value};
//!
//! // The example relation from Figure 1 of the paper.
//! let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
//! let mut b = Relation::builder(schema);
//! for row in [
//!     ["1", "a", "$", "Flower"],   ["1", "A", "L", "Tulip"],
//!     ["2", "A", "$", "Daffodil"], ["2", "A", "$", "Flower"],
//!     ["2", "b", "L", "Lily"],     ["3", "b", "$", "Orchid"],
//!     ["3", "c", "L", "Flower"],   ["3", "c", "#", "Rose"],
//! ] {
//!     b.push_row(row.map(Value::from)).unwrap();
//! }
//! let relation = b.build();
//!
//! let result = discover_fds(&relation, &TaneConfig::default()).unwrap();
//! // {B,C} → A is one of the minimal dependencies (paper, Example 2).
//! assert!(result
//!     .fds
//!     .iter()
//!     .any(|fd| fd.rhs == 0 && fd.lhs == tane_util::AttrSet::from_indices([1, 2])));
//! ```
//!
//! ## Structure
//!
//! * [`config`] — [`TaneConfig`] / [`ApproxTaneConfig`]: storage backend
//!   (memory vs disk, the paper's TANE/MEM vs TANE variants), LHS size cap,
//!   and ablation switches for each pruning rule.
//! * [`lattice`] — lattice levels, `C⁺` candidate bookkeeping, and the
//!   apriori-style GENERATE-NEXT-LEVEL procedure (paper, Section 5).
//! * [`search`] — COMPUTE-DEPENDENCIES and PRUNE, driving the whole
//!   levelwise loop for both exact and approximate modes.
//! * [`result`] — [`TaneResult`] with the discovered cover and detailed
//!   search statistics ([`TaneStats`]).

pub mod assoc;
pub mod config;
pub mod cover;
pub mod lattice;
pub mod rank;
pub mod result;
pub mod search;
pub mod violations;

pub use assoc::{mine_assoc_rules, AssocConfig, AssocRule};
pub use config::{ApproxTaneConfig, Storage, TaneConfig, TopKConfig};
pub use cover::{attribute_closure, candidate_keys, implies, is_superkey, remove_redundant};
pub use lattice::NextLevelCandidate;
pub use rank::{RankedFd, TopKEvent};
pub use result::{LevelEvent, TaneError, TaneResult, TaneStats};
pub use search::{
    discover_approx_fds, discover_approx_fds_with, discover_fds, discover_fds_with,
    discover_topk_fds, discover_topk_fds_with, reverify_approx_fds_with, reverify_fds_with,
    ReverifyHooks,
};
pub use tane_util::Fd;
pub use violations::{fd_error, violating_rows};
