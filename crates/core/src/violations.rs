//! Identifying the rows that violate a (near-)dependency.
//!
//! The paper's abstract promises that with partitions "the erroneous or
//! exceptional rows can be identified easily": for an approximate
//! dependency `X → A`, each equivalence class `c ∈ π_X` splits into
//! subclasses under `π_{X∪{A}}`, and the rows outside the largest subclass
//! of each `c` are exactly a minimum set of rows whose removal makes the
//! dependency exact. This module computes that set — the raw material for
//! the data-cleaning use case motivated in Section 1.

use tane_partition::{g3_error, StrippedPartition};
use tane_relation::Relation;
use tane_util::Fd;

/// The `g3` error of `fd` in `relation`, recomputed from scratch.
pub fn fd_error(relation: &Relation, fd: Fd) -> f64 {
    let pi_x = StrippedPartition::from_attr_set(relation, fd.lhs);
    let pi_xa = StrippedPartition::from_attr_set(relation, fd.lhs.with(fd.rhs));
    g3_error(&pi_x, &pi_xa)
}

/// A minimum set of row indices whose removal makes `fd` hold exactly.
///
/// For each class of `π_X`, the largest subclass under `π_{X∪{A}}` is kept
/// and every other row of the class is reported. The result has exactly
/// `g3(fd) · |r|` rows, sorted ascending. Ties between equally large
/// subclasses are broken toward the subclass encountered first, so the
/// output is deterministic.
///
/// # Examples
///
/// ```
/// use tane_core::violations::violating_rows;
/// use tane_relation::{Relation, Schema};
/// use tane_util::{AttrSet, Fd};
///
/// // city -> dialing code, with one typo in row 3.
/// let schema = Schema::new(["city", "code"]).unwrap();
/// let r = Relation::from_codes(
///     schema,
///     vec![vec![0, 0, 1, 0], vec![7, 7, 8, 9]],
/// )
/// .unwrap();
/// let bad = violating_rows(&r, Fd::new(AttrSet::singleton(0), 1));
/// assert_eq!(bad, vec![3]);
/// ```
pub fn violating_rows(relation: &Relation, fd: Fd) -> Vec<u32> {
    let pi_x = StrippedPartition::from_attr_set(relation, fd.lhs);
    let rhs_codes = relation.column_codes(fd.rhs);
    let mut out = Vec::new();
    for class in pi_x.classes() {
        // Count A-values within this X-class; keep the plurality value.
        // Classes are small relative to |r|, so a local sort beats a global
        // probe table here.
        let mut pairs: Vec<(u32, u32)> =
            class.iter().map(|&t| (rhs_codes[t as usize], t)).collect();
        pairs.sort_unstable();
        // Find the largest run of equal A-codes (first such run on ties —
        // sort order makes this deterministic).
        let mut best_start = 0usize;
        let mut best_len = 0usize;
        let mut i = 0usize;
        while i < pairs.len() {
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == pairs[i].0 {
                j += 1;
            }
            if j - i > best_len {
                best_start = i;
                best_len = j - i;
            }
            i = j;
        }
        for (k, &(_, row)) in pairs.iter().enumerate() {
            if k < best_start || k >= best_start + best_len {
                out.push(row);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::Schema;
    use tane_util::AttrSet;

    fn two_col(lhs: Vec<u32>, rhs: Vec<u32>) -> Relation {
        let schema = Schema::new(["X", "A"]).unwrap();
        Relation::from_codes(schema, vec![lhs, rhs]).unwrap()
    }

    #[test]
    fn exact_fd_has_no_violations() {
        let r = two_col(vec![0, 0, 1, 1], vec![5, 5, 6, 6]);
        let fd = Fd::new(AttrSet::singleton(0), 1);
        assert!(violating_rows(&r, fd).is_empty());
        assert_eq!(fd_error(&r, fd), 0.0);
    }

    #[test]
    fn single_typo_is_pinpointed() {
        let r = two_col(vec![0, 0, 0, 1], vec![5, 5, 9, 6]);
        let fd = Fd::new(AttrSet::singleton(0), 1);
        assert_eq!(violating_rows(&r, fd), vec![2]);
        assert_eq!(fd_error(&r, fd), 0.25);
    }

    #[test]
    fn count_matches_g3() {
        let r = two_col(vec![0, 0, 0, 0, 1, 1, 1], vec![5, 5, 6, 6, 7, 8, 9]);
        let fd = Fd::new(AttrSet::singleton(0), 1);
        let bad = violating_rows(&r, fd);
        let n = r.num_rows() as f64;
        assert!((bad.len() as f64 / n - fd_error(&r, fd)).abs() < 1e-12);
        // Class {0..3}: tie between 5s and 6s → 2 removed; class {4,5,6}:
        // keep one of three → 2 removed.
        assert_eq!(bad.len(), 4);
    }

    #[test]
    fn removal_makes_the_fd_hold() {
        let r = two_col(vec![0, 0, 0, 1, 1, 2], vec![5, 9, 5, 6, 7, 8]);
        let fd = Fd::new(AttrSet::singleton(0), 1);
        let bad = violating_rows(&r, fd);
        // Rebuild without the violating rows and check the FD exactly.
        let keep: Vec<usize> = (0..r.num_rows())
            .filter(|t| !bad.contains(&(*t as u32)))
            .collect();
        let lhs: Vec<u32> = keep.iter().map(|&t| r.column_codes(0)[t]).collect();
        let rhs: Vec<u32> = keep.iter().map(|&t| r.column_codes(1)[t]).collect();
        let cleaned = two_col(lhs, rhs);
        assert!(tane_baselines::fd_holds(&cleaned, AttrSet::singleton(0), 1));
    }

    #[test]
    fn empty_lhs_keeps_plurality_value() {
        let r = two_col(vec![0, 1, 2], vec![5, 5, 6]);
        let fd = Fd::new(AttrSet::empty(), 1);
        assert_eq!(violating_rows(&r, fd), vec![2]);
    }

    #[test]
    fn deterministic_on_ties() {
        let r = two_col(vec![0, 0], vec![5, 6]);
        let fd = Fd::new(AttrSet::singleton(0), 1);
        assert_eq!(violating_rows(&r, fd), violating_rows(&r, fd));
        assert_eq!(violating_rows(&r, fd).len(), 1);
    }
}
