//! Results and statistics of a TANE run.

use std::fmt;
use std::time::Duration;
use tane_partition::StoreError;
use tane_relation::Schema;
use tane_util::Fd;

/// Errors a TANE run can produce. The search itself is total; failures come
/// from the partition store (disk variant) only.
#[derive(Debug)]
pub enum TaneError {
    /// Partition store failure (I/O, corruption).
    Store(StoreError),
}

impl fmt::Display for TaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaneError::Store(e) => write!(f, "partition store failure: {e}"),
        }
    }
}

impl std::error::Error for TaneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TaneError::Store(e) => Some(e),
        }
    }
}

impl From<StoreError> for TaneError {
    fn from(e: StoreError) -> Self {
        TaneError::Store(e)
    }
}

/// One completed lattice level, as observed by the streaming variants
/// [`discover_fds_with`](crate::search::discover_fds_with) /
/// [`discover_approx_fds_with`](crate::search::discover_approx_fds_with).
///
/// The levelwise order makes every dependency in `new_minimal_fds` final
/// the moment the event fires: no deeper level can add, remove, or shadow
/// it. Consumers (the service's NDJSON stream, `tane discover --stream`)
/// may therefore deliver each event immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelEvent {
    /// The lattice level `ℓ` that just finished (1-based; dependencies in
    /// this event have LHS size `ℓ − 1`).
    pub level: usize,
    /// The minimal dependencies first proven at this level, canonical
    /// order within the level.
    pub new_minimal_fds: Vec<Fd>,
    /// Time spent on this level's validity tests and pruning (the event
    /// fires *without waiting for* the next level's partitions — on the
    /// parallel runtime it overlaps their computation — so this is not
    /// the same quantity as [`TaneStats::level_times`], which also
    /// charges each level for producing its successor).
    pub level_time: Duration,
    /// Partition bytes resident in the store when the level finished.
    pub partitions_bytes: usize,
}

/// Search statistics, matching the quantities of the paper's analysis
/// (Section 6): `s` = total sets processed, `s_max` = largest level, `k` =
/// keys found, `v` = validity tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaneStats {
    /// Number of lattice levels processed (deepest `ℓ` with `L_ℓ ≠ ∅`).
    pub levels: usize,
    /// Sets processed per level (`|L_ℓ|` before pruning), index 0 = level 1.
    pub sets_per_level: Vec<usize>,
    /// Total sets processed, the paper's `s`.
    pub sets_total: usize,
    /// Largest level size, the paper's `s_max`.
    pub sets_max_level: usize,
    /// Validity tests performed, the paper's `v`.
    pub validity_tests: usize,
    /// Exact `g3` computations (approximate mode only).
    pub g3_exact_computations: usize,
    /// Validity tests decided by the quick `g3` bounds alone
    /// (approximate mode with `use_g3_bounds`).
    pub g3_decided_by_bounds: usize,
    /// Keys found and pruned, the paper's `k`.
    pub keys_found: usize,
    /// Partition products computed (one per generated lattice node above
    /// level 1).
    pub products: usize,
    /// Lattice-node partitions handed in by an external supplier instead of
    /// being producted (the incremental re-verify path, `reverify_*_with`).
    /// Always 0 for plain discovery; `products + partitions_supplied` equals
    /// the plain run's `products` on the same relation.
    pub partitions_supplied: usize,
    /// Disk reads of partitions (disk storage only).
    pub disk_reads: u64,
    /// Disk writes of partitions (disk storage only).
    pub disk_writes: u64,
    /// Bytes read back from spilled partitions (disk storage only).
    pub disk_bytes_read: u64,
    /// Bytes spilled to disk (disk storage only).
    pub disk_bytes_written: u64,
    /// Peak bytes of partitions resident in memory (approximate).
    pub peak_resident_bytes: usize,
    /// Partitions evicted from the disk store's resident cache
    /// (disk storage only).
    pub store_evictions: u64,
    /// Partitions pinned resident by a read phase — each pin is one cold
    /// fetch that the snapshot machinery kept stable for the rest of its
    /// level (disk storage only; see DESIGN §13).
    pub store_pins: u64,
    /// Eviction sweeps that ended with the resident set still over the
    /// cache budget because everything left was pinned or active — e.g. a
    /// single partition larger than the whole budget (disk storage only).
    pub oversized_resident: u64,
    /// Workers in the search's persistent pool (the configured `threads`;
    /// `1` means the serial, paper-faithful runtime).
    pub parallel_workers: usize,
    /// Work grains executed by the pool across the run — products,
    /// singleton constructions, and batched `g3` tests all count. `0` when
    /// every batch stayed under the parallel work threshold.
    pub parallel_grains: u64,
    /// Successful steals: work batches a worker took from another worker's
    /// deque after draining its own. Scheduling instrumentation only —
    /// steal order can never change a result (see DESIGN §9).
    pub worker_steals: u64,
    /// Times pool workers parked on the dispatch condvar instead of
    /// spinning while no work was available.
    pub worker_parks: u64,
    /// Time workers spent probing other deques for work (bounded: after
    /// one full failed scan a worker parks). High spin relative to busy
    /// means grains are too small for the level shape.
    pub worker_spin: Duration,
    /// Total time pool workers spent executing dispatched work, summed
    /// across workers (can exceed `elapsed` when several run at once). The
    /// serial (`threads == 1`) and under-the-gate inline paths record
    /// their compute sections here too, so utilization is comparable
    /// against any worker count.
    pub worker_busy: Duration,
    /// Time the product stage spent waiting on partition fetches: with the
    /// pipelined disk backend, the blocked-on-channel time of *every*
    /// worker (attributed per worker in the pool's counters); on the
    /// serial path, the whole up-front fetch phase. Pipelining engages
    /// when this drops below the serial baseline for the same search.
    pub fetch_stall: Duration,
    /// Ranked mode only: candidates skipped *before* their exact `g3` was
    /// computed, because the cheap lower bound `e(X\{A}) − e(X)` could not
    /// beat the current k-th best (DESIGN §12). Always 0 outside top-k.
    pub topk_bound_pruned: u64,
    /// Ranked mode only: candidates discarded as redundant — a recorded
    /// generalization `V ⊂ X` scores at least as well for the same rhs.
    pub topk_dominated: u64,
    /// Ranked mode only: heap insertions (the stream's improvement count).
    pub topk_improvements: u64,
    /// Ranked mode only: the lattice level after which the bound argument
    /// proved no remaining level could enter the heap, when the walk
    /// stopped early for that reason.
    pub topk_early_exit_level: Option<usize>,
    /// Wall-clock time spent per lattice level (validity tests, pruning,
    /// and the products generating the next level), index 0 = level 1.
    /// Always the same length as `sets_per_level`.
    pub level_times: Vec<Duration>,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
}

/// The outcome of a discovery run: the minimal cover plus statistics.
#[derive(Debug, Clone)]
pub struct TaneResult {
    /// All minimal non-trivial (approximate) dependencies, canonical order.
    pub fds: Vec<Fd>,
    /// The candidate keys (minimal superkeys) encountered by key pruning,
    /// ascending. Populated only when `key_pruning` is enabled (the
    /// default); with it disabled keys are simply never detected. In
    /// ranked mode an early exit truncates the walk, so this holds the
    /// keys found *up to* the exit level.
    pub keys: Vec<tane_util::AttrSet>,
    /// Ranked mode only: the final top-k heap, best first (ascending
    /// `(g3, |lhs|, rhs, lhs)`). `None` outside top-k; in ranked mode
    /// [`fds`](Self::fds) holds the same dependencies in canonical order.
    pub ranked: Option<Vec<crate::rank::RankedFd>>,
    /// Search statistics.
    pub stats: TaneStats,
}

impl TaneResult {
    /// Number of dependencies found (the paper's `N`).
    pub fn count(&self) -> usize {
        self.fds.len()
    }

    /// Renders the dependencies with attribute names, one per line, in
    /// canonical order — the shape of the paper's published outputs.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = String::new();
        for fd in &self.fds {
            out.push_str(&fd.display_with(schema.names()));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_util::AttrSet;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = TaneError::from(StoreError::Missing {
            key: AttrSet::singleton(1),
        });
        assert!(e.to_string().contains("partition store"));
        assert!(e.source().is_some());
    }

    #[test]
    fn result_render() {
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let result = TaneResult {
            fds: vec![
                Fd::new(AttrSet::from_indices([1, 2]), 0),
                Fd::new(AttrSet::singleton(0), 2),
            ],
            keys: vec![AttrSet::singleton(0)],
            ranked: None,
            stats: TaneStats::default(),
        };
        assert_eq!(result.count(), 2);
        let text = result.render(&schema);
        assert_eq!(text, "{B,C} -> A\n{A} -> C\n");
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = TaneStats::default();
        assert_eq!(s.sets_total, 0);
        assert_eq!(s.validity_tests, 0);
        assert_eq!(s.elapsed, Duration::ZERO);
    }
}
