//! Lattice levels and GENERATE-NEXT-LEVEL.
//!
//! A level `L_ℓ` (paper, Section 5) is the collection of attribute sets of
//! size ℓ still in play. Each entry carries the search state TANE needs
//! *about* the set without touching its partition: the rhs⁺ candidate set
//! `C⁺(X)`, the partition summary (`e(X)·|r|` and the superkey flag), and a
//! deletion mark set by PRUNE. Partitions themselves live in a
//! [`PartitionStore`](tane_partition::PartitionStore), keyed by the set.
//!
//! `GENERATE-NEXT-LEVEL` is the apriori-style prefix join: two sets of size
//! ℓ that differ only in their largest attribute combine into a size-(ℓ+1)
//! candidate, which is kept only if *all* its ℓ-subsets survive in `L_ℓ`.
//! The two join parents double as the operands of the partition product
//! (any two distinct (ℓ)-subsets would do, per Section 3).

use tane_util::{AttrSet, FxHashMap};

/// Per-set search state within a level.
#[derive(Debug, Clone)]
pub struct LevelEntry {
    /// The attribute set `X`.
    pub set: AttrSet,
    /// `C⁺(X)`, the rhs⁺ candidates (paper, Section 4).
    pub cplus: AttrSet,
    /// `e(X) · |r|` — rows to remove to make `X` a superkey; the Lemma 2
    /// validity test compares these between `X\{A}` and `X`.
    pub error_rows: usize,
    /// `true` iff no two rows agree on `X`.
    pub is_superkey: bool,
    /// Set by PRUNE; deleted entries stay resident (their `C⁺` is still
    /// read by same-level key-pruning checks) but do not join into the next
    /// level.
    pub deleted: bool,
}

/// One lattice level with O(1) lookup by attribute set.
#[derive(Debug, Default)]
pub struct Level {
    entries: Vec<LevelEntry>,
    index: FxHashMap<AttrSet, usize>,
}

impl Level {
    /// Creates an empty level.
    pub fn new() -> Level {
        Level::default()
    }

    /// Adds an entry.
    ///
    /// # Panics
    ///
    /// Panics if the set is already present.
    pub fn push(&mut self, entry: LevelEntry) {
        let prev = self.index.insert(entry.set, self.entries.len());
        assert!(prev.is_none(), "duplicate lattice node {:?}", entry.set);
        self.entries.push(entry);
    }

    /// Entry for `set`, if present (deleted entries included).
    pub fn get(&self, set: AttrSet) -> Option<&LevelEntry> {
        self.index.get(&set).map(|&i| &self.entries[i])
    }

    /// Mutable entry for `set`.
    pub fn get_mut(&mut self, set: AttrSet) -> Option<&mut LevelEntry> {
        self.index
            .get(&set)
            .copied()
            .map(move |i| &mut self.entries[i])
    }

    /// All entries, including deleted ones.
    pub fn entries(&self) -> &[LevelEntry] {
        &self.entries
    }

    /// Mutable access to all entries.
    pub fn entries_mut(&mut self) -> &mut [LevelEntry] {
        &mut self.entries
    }

    /// Number of entries (the paper's `|L_ℓ|`), not counting deletions.
    pub fn live_len(&self) -> usize {
        self.entries.iter().filter(|e| !e.deleted).count()
    }

    /// Total entries including deleted ones.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff there are no live entries.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }
}

/// A candidate for the next level: the new set and the two level-ℓ parents
/// whose partitions multiply to its partition (Lemma 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLevelCandidate {
    /// The size-(ℓ+1) attribute set.
    pub set: AttrSet,
    /// First join parent (`set` minus its largest attribute... specifically
    /// one of the two prefix-join parents).
    pub parent_a: AttrSet,
    /// Second join parent.
    pub parent_b: AttrSet,
}

/// GENERATE-NEXT-LEVEL (paper, Section 5): prefix join over live entries,
/// keeping candidates whose every ℓ-subset is live in `level`.
pub fn generate_next_level(level: &Level) -> Vec<NextLevelCandidate> {
    // Group live sets by prefix (set minus largest attribute).
    let mut blocks: FxHashMap<AttrSet, Vec<AttrSet>> = FxHashMap::default();
    for e in level.entries().iter().filter(|e| !e.deleted) {
        if let Some(max) = e.set.max_attr() {
            blocks.entry(e.set.without(max)).or_default().push(e.set);
        }
    }
    let mut out = Vec::new();
    let mut block_list: Vec<(AttrSet, Vec<AttrSet>)> = blocks.into_iter().collect();
    block_list.sort_unstable_by_key(|(p, _)| *p);
    for (_, mut members) in block_list {
        members.sort_unstable();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                let candidate = members[i].union(members[j]);
                let all_subsets_live = candidate
                    .proper_subsets_one_smaller()
                    .all(|(_, sub)| level.get(sub).is_some_and(|e| !e.deleted));
                if all_subsets_live {
                    out.push(NextLevelCandidate {
                        set: candidate,
                        parent_a: members[i],
                        parent_b: members[j],
                    });
                }
            }
        }
    }
    out
}

/// Builds `L_1` candidates: every singleton, with the empty set as both
/// parents (level 1 partitions are computed from columns, not products, so
/// the parents are never multiplied).
pub fn first_level_sets(n_attrs: usize) -> Vec<AttrSet> {
    (0..n_attrs).map(AttrSet::singleton).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(set: AttrSet) -> LevelEntry {
        LevelEntry {
            set,
            cplus: AttrSet::empty(),
            error_rows: 0,
            is_superkey: false,
            deleted: false,
        }
    }

    fn level_of(sets: &[AttrSet]) -> Level {
        let mut l = Level::new();
        for &s in sets {
            l.push(entry(s));
        }
        l
    }

    #[test]
    fn level_push_and_lookup() {
        let mut l = Level::new();
        l.push(entry(AttrSet::singleton(0)));
        l.push(entry(AttrSet::singleton(1)));
        assert_eq!(l.len(), 2);
        assert_eq!(l.live_len(), 2);
        assert!(l.get(AttrSet::singleton(0)).is_some());
        assert!(l.get(AttrSet::singleton(9)).is_none());
        l.get_mut(AttrSet::singleton(0)).unwrap().deleted = true;
        assert_eq!(l.live_len(), 1);
        assert!(!l.is_empty());
        assert!(
            l.get(AttrSet::singleton(0)).is_some(),
            "deleted entries stay resident"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate lattice node")]
    fn duplicate_push_panics() {
        let mut l = Level::new();
        l.push(entry(AttrSet::singleton(0)));
        l.push(entry(AttrSet::singleton(0)));
    }

    #[test]
    fn generate_level2_from_singletons() {
        let l = level_of(&[
            AttrSet::singleton(0),
            AttrSet::singleton(1),
            AttrSet::singleton(2),
        ]);
        let next = generate_next_level(&l);
        let sets: Vec<AttrSet> = next.iter().map(|c| c.set).collect();
        assert_eq!(
            sets,
            vec![
                AttrSet::from_indices([0, 1]),
                AttrSet::from_indices([0, 2]),
                AttrSet::from_indices([1, 2]),
            ]
        );
        // Parents are the two singletons.
        assert_eq!(next[0].parent_a, AttrSet::singleton(0));
        assert_eq!(next[0].parent_b, AttrSet::singleton(1));
    }

    #[test]
    fn apriori_subset_check_blocks_candidates() {
        // {0,1},{0,2} join to {0,1,2}, but {1,2} is absent → rejected.
        let l = level_of(&[AttrSet::from_indices([0, 1]), AttrSet::from_indices([0, 2])]);
        assert!(generate_next_level(&l).is_empty());
        // With {1,2} present the candidate goes through.
        let l = level_of(&[
            AttrSet::from_indices([0, 1]),
            AttrSet::from_indices([0, 2]),
            AttrSet::from_indices([1, 2]),
        ]);
        let next = generate_next_level(&l);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].set, AttrSet::from_indices([0, 1, 2]));
    }

    #[test]
    fn deleted_entries_do_not_join() {
        let mut l = level_of(&[
            AttrSet::from_indices([0, 1]),
            AttrSet::from_indices([0, 2]),
            AttrSet::from_indices([1, 2]),
        ]);
        l.get_mut(AttrSet::from_indices([1, 2])).unwrap().deleted = true;
        assert!(
            generate_next_level(&l).is_empty(),
            "deleted subset must block the candidate"
        );
    }

    #[test]
    fn prefix_join_only_pairs_same_prefix() {
        // {0,1} and {2,3} share no prefix; no candidate of size 3 possible
        // from them anyway (their union has size 4).
        let l = level_of(&[AttrSet::from_indices([0, 1]), AttrSet::from_indices([2, 3])]);
        assert!(generate_next_level(&l).is_empty());
    }

    #[test]
    fn first_level() {
        assert_eq!(
            first_level_sets(3),
            vec![
                AttrSet::singleton(0),
                AttrSet::singleton(1),
                AttrSet::singleton(2),
            ]
        );
        assert!(first_level_sets(0).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let sets: Vec<AttrSet> = (0..5)
            .flat_map(|a| (a + 1..5).map(move |b| AttrSet::from_indices([a, b])))
            .collect();
        let l1 = level_of(&sets);
        let mut rev = sets.clone();
        rev.reverse();
        let l2 = level_of(&rev);
        assert_eq!(generate_next_level(&l1), generate_next_level(&l2));
    }

    #[test]
    fn full_lattice_growth_from_singletons() {
        // With all C+ alive, levels grow as binomial coefficients.
        let mut l = level_of(&first_level_sets(5));
        let mut sizes = vec![l.live_len()];
        loop {
            let next = generate_next_level(&l);
            if next.is_empty() {
                break;
            }
            l = level_of(&next.iter().map(|c| c.set).collect::<Vec<_>>());
            sizes.push(l.live_len());
        }
        assert_eq!(sizes, vec![5, 10, 10, 5, 1]);
    }
}
