//! Reasoning over a discovered dependency set: Armstrong closure,
//! implication, superkey tests, and cover reduction.
//!
//! FD discovery (Section 1 of the paper) feeds applications — database
//! design, reverse engineering, query optimization — that all need to *use*
//! the discovered cover: compute which attributes a set determines, test
//! whether a dependency is implied, find keys. These are the classical
//! Armstrong-axiom algorithms, implemented on [`Fd`] lists so they compose
//! directly with [`discover_fds`](crate::discover_fds) output.

use tane_util::{canonical_fds, AttrSet, Fd};

/// The attribute closure `X⁺` of `x` under `fds`: the largest set such that
/// `x → X⁺` is implied by Armstrong's axioms. Runs the standard fixpoint,
/// O(|fds| · |R|) with bitset operations.
///
/// # Examples
///
/// ```
/// use tane_core::cover::attribute_closure;
/// use tane_util::{AttrSet, Fd};
///
/// // A → B, B → C.
/// let fds = [Fd::new(AttrSet::singleton(0), 1), Fd::new(AttrSet::singleton(1), 2)];
/// assert_eq!(attribute_closure(&fds, AttrSet::singleton(0)), AttrSet::from_indices([0, 1, 2]));
/// ```
pub fn attribute_closure(fds: &[Fd], x: AttrSet) -> AttrSet {
    let mut closure = x;
    loop {
        let before = closure;
        for fd in fds {
            if fd.lhs.is_subset_of(closure) {
                closure.insert(fd.rhs);
            }
        }
        if closure == before {
            return closure;
        }
    }
}

/// `true` iff `fd` is implied by `fds` (Armstrong derivability):
/// `rhs ∈ lhs⁺`.
pub fn implies(fds: &[Fd], fd: Fd) -> bool {
    attribute_closure(fds, fd.lhs).contains(fd.rhs)
}

/// `true` iff `x` is a superkey of a relation with `n_attrs` attributes,
/// **according to** `fds` (i.e. `x⁺ = R`). For the relation-instance notion
/// use [`StrippedPartition::is_superkey`](tane_partition::StrippedPartition::is_superkey);
/// on the full discovered cover the two agree.
pub fn is_superkey(fds: &[Fd], x: AttrSet, n_attrs: usize) -> bool {
    attribute_closure(fds, x) == AttrSet::full(n_attrs)
}

/// All candidate keys derivable from `fds`: minimal attribute sets whose
/// closure is `R`. Searches the subset lattice levelwise, pruning supersets
/// of found keys; exponential in the worst case (as key enumeration must
/// be), fine for the attribute counts this workspace handles.
pub fn candidate_keys(fds: &[Fd], n_attrs: usize) -> Vec<AttrSet> {
    let r_all = AttrSet::full(n_attrs);
    if n_attrs == 0 {
        return vec![AttrSet::empty()];
    }
    let mut keys: Vec<AttrSet> = Vec::new();
    // Attributes that appear in no RHS must be in every key.
    let mut core = r_all;
    for fd in fds {
        core.remove(fd.rhs);
    }
    if attribute_closure(fds, core) == r_all {
        return vec![core];
    }
    // Expand the frontier of non-key sets one attribute at a time; a set
    // whose closure reaches R at the earliest possible level is a key, and
    // supersets of found keys are pruned from the frontier. The frontier
    // empties by size n_attrs at the latest (R itself is always a
    // superkey), so this terminates.
    let mut level: Vec<AttrSet> = vec![core];
    while !level.is_empty() {
        let mut next = Vec::new();
        for &x in &level {
            for a in r_all.difference(x).iter() {
                let candidate = x.with(a);
                if keys.iter().any(|k| k.is_subset_of(candidate)) {
                    continue;
                }
                if attribute_closure(fds, candidate) == r_all {
                    if !keys.contains(&candidate) {
                        keys.push(candidate);
                    }
                } else if !next.contains(&candidate) {
                    next.push(candidate);
                }
            }
        }
        level = next;
    }
    keys.sort_unstable();
    keys.dedup();
    // Final minimality sweep (cheap; the level order makes this a no-op in
    // practice but guards the invariant).
    let snapshot = keys.clone();
    keys.retain(|&k| {
        !snapshot
            .iter()
            .any(|&other| other != k && other.is_subset_of(k))
    });
    keys
}

/// Removes from `fds` every dependency implied by the others, yielding a
/// non-redundant cover. The result is order-canonical; which of several
/// equivalent dependencies survives depends on the canonical order (stable
/// across runs).
pub fn remove_redundant(fds: &[Fd]) -> Vec<Fd> {
    let mut kept: Vec<Fd> = canonical_fds(fds.to_vec());
    let mut i = 0;
    while i < kept.len() {
        let candidate = kept[i];
        let mut rest = kept.clone();
        rest.remove(i);
        if implies(&rest, candidate) {
            kept = rest;
        } else {
            i += 1;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaneConfig;
    use crate::search::discover_fds;
    use tane_relation::{Relation, Schema};

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(AttrSet::from_indices(lhs.iter().copied()), rhs)
    }

    #[test]
    fn closure_fixpoint_chains() {
        // A→B, B→C, {C,D}→E.
        let fds = [fd(&[0], 1), fd(&[1], 2), fd(&[2, 3], 4)];
        assert_eq!(
            attribute_closure(&fds, AttrSet::singleton(0)),
            AttrSet::from_indices([0, 1, 2])
        );
        assert_eq!(
            attribute_closure(&fds, AttrSet::from_indices([0, 3])),
            AttrSet::from_indices([0, 1, 2, 3, 4])
        );
        assert_eq!(
            attribute_closure(&fds, AttrSet::singleton(3)),
            AttrSet::singleton(3)
        );
        assert_eq!(
            attribute_closure(&[], AttrSet::singleton(1)),
            AttrSet::singleton(1)
        );
    }

    #[test]
    fn implication_includes_armstrong_consequences() {
        let fds = [fd(&[0], 1), fd(&[1], 2)];
        assert!(implies(&fds, fd(&[0], 2))); // transitivity
        assert!(implies(&fds, fd(&[0, 3], 1))); // augmentation
        assert!(implies(&fds, fd(&[0], 0))); // reflexivity
        assert!(!implies(&fds, fd(&[1], 0)));
        assert!(!implies(&fds, fd(&[2], 1)));
    }

    #[test]
    fn superkey_by_fds() {
        let fds = [fd(&[0], 1), fd(&[0], 2)];
        assert!(is_superkey(&fds, AttrSet::singleton(0), 3));
        assert!(!is_superkey(&fds, AttrSet::singleton(1), 3));
        assert!(is_superkey(&fds, AttrSet::full(3), 3));
    }

    #[test]
    fn candidate_keys_simple_cases() {
        // A→B, A→C: A is the unique key.
        let fds = [fd(&[0], 1), fd(&[0], 2)];
        assert_eq!(candidate_keys(&fds, 3), vec![AttrSet::singleton(0)]);

        // A→B, B→A, with C determined by neither: keys {A,C} and {B,C}.
        let fds = [fd(&[0], 1), fd(&[1], 0)];
        let keys = candidate_keys(&fds, 3);
        assert_eq!(
            keys,
            vec![AttrSet::from_indices([0, 2]), AttrSet::from_indices([1, 2])]
        );

        // No FDs: the only key is R itself.
        assert_eq!(candidate_keys(&[], 3), vec![AttrSet::full(3)]);
        assert_eq!(candidate_keys(&[], 0), vec![AttrSet::empty()]);
    }

    #[test]
    fn keys_from_discovered_cover_match_keys_from_search() {
        // The keys TANE's key pruning reports must equal the keys derivable
        // from the discovered cover.
        let schema = Schema::anonymous(4).unwrap();
        let r = Relation::from_codes(
            schema,
            vec![
                vec![0, 1, 2, 3, 0, 1],
                vec![0, 0, 1, 1, 2, 2],
                vec![5, 5, 5, 6, 6, 6],
                vec![1, 2, 1, 2, 1, 2],
            ],
        )
        .unwrap();
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        let derived = candidate_keys(&result.fds, r.num_attrs());
        assert_eq!(result.keys, derived);
    }

    #[test]
    fn redundancy_removal() {
        // A→B, B→C, A→C: the last is implied.
        let fds = [fd(&[0], 1), fd(&[1], 2), fd(&[0], 2)];
        let reduced = remove_redundant(&fds);
        assert_eq!(reduced.len(), 2);
        // Every original dependency is still implied by the reduced cover.
        for &f in &fds {
            assert!(implies(&reduced, f));
        }
        // Nothing in the reduced cover is redundant.
        for (i, &f) in reduced.iter().enumerate() {
            let mut rest = reduced.clone();
            rest.remove(i);
            assert!(!implies(&rest, f));
        }
    }

    #[test]
    fn discovered_minimal_cover_is_already_nonredundant_often() {
        // TANE's output consists of minimal FDs; reducing can still drop
        // some (transitivity), but the result must imply the original.
        let r = tane_datasets::wisconsin_breast_cancer().head(150);
        let result = discover_fds(&r, &TaneConfig::default()).unwrap();
        let reduced = remove_redundant(&result.fds);
        assert!(reduced.len() <= result.fds.len());
        for &f in &result.fds {
            assert!(implies(&reduced, f), "{f} must remain implied");
        }
    }
}
