//! Ranked (top-k) dependency search state: the size-k heap, the dominance
//! pool, and the bound-based pruning decisions (DESIGN §12).
//!
//! ## The ranked pool
//!
//! Ranked mode scores every non-trivial dependency `X → A` by its `g3`
//! error and keeps the `k` best **non-redundant** ones: `X → A` is a *pool
//! entrant* iff it strictly improves on every generalization,
//! `g3(X → A) < g3(V → A)` for all `V ⊊ X`. Because `g3` is monotone
//! non-increasing in the LHS, this is exactly the union over all thresholds
//! `ε` of the sound full approximate run's minimal covers: a dependency is
//! an entrant iff there is some `ε` (namely its own `g3`) at which
//! [`discover_approx_fds`](crate::discover_approx_fds) reports it. Exact
//! minimal FDs are the entrants with score 0.
//!
//! ## Ordering and determinism
//!
//! The heap orders entries by [`rank_key`]: `(g3_rows, |lhs|, rhs, lhs)` —
//! score first, then the canonical `(rhs, lhs)` order of
//! [`canonical_fds`](tane_util::canonical_fds) refined by LHS cardinality.
//! Putting `|lhs|` immediately after the score is load-bearing for pruning
//! soundness: a candidate at a deeper lattice level always *loses* a score
//! tie against a shallower one, so (DESIGN §12) a candidate pruned by the
//! heap bound can never dominate a later heap entrant, and the early exit
//! below is legal. Every mutation of this state happens on the serial
//! driver thread, in candidate order, so heap contents are byte-identical
//! at any worker count.

use tane_util::{AttrSet, Fd};

/// One ranked dependency: a dependency plus its exact `g3` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedFd {
    /// The dependency `X → A`.
    pub fd: Fd,
    /// Exact `g3(X → A) · |r|` (rows to remove for the dependency to hold).
    pub g3_rows: usize,
    /// `|r|`, for rendering the error as a fraction.
    pub n_rows: usize,
}

impl RankedFd {
    /// `g3(X → A)` as a fraction of `|r|` (0 for an empty relation).
    pub fn g3(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.g3_rows as f64 / self.n_rows as f64
        }
    }
}

/// A top-k heap snapshot, observed once per lattice level on which the heap
/// changed (entered, improved, or reordered by evictions). The snapshot is
/// the *current* best-k in rank order — entries are provisional until the
/// search ends (a deeper level can still evict them), which is what makes
/// the stream an anytime result.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKEvent {
    /// The lattice level that just finished when this snapshot was taken.
    pub level: usize,
    /// The current heap, ascending by `(g3, |lhs|, rhs, lhs)` — best first.
    pub heap: Vec<RankedFd>,
}

/// The total order of the ranked search: score, then canonical order
/// refined by LHS cardinality (see the module docs for why `|lhs|` must
/// come before the canonical `(rhs, lhs)` pair).
pub(crate) fn rank_key(fd: &Fd, g3_rows: usize) -> (usize, usize, usize, AttrSet) {
    (g3_rows, fd.lhs.len(), fd.rhs, fd.lhs)
}

/// Serial ranked-search state: the size-k heap plus the dominance pool.
pub(crate) struct RankState {
    k: usize,
    n_rows: usize,
    /// The current best k, ascending by [`rank_key`]. `k` is user-supplied
    /// and small; keeping a sorted vec makes every decision a total-order
    /// comparison (trivially deterministic) at O(k) per insertion.
    entries: Vec<RankedFd>,
    /// Per-rhs pool entrants `(lhs, g3_rows)` recorded so far — the
    /// dominance structure. An entrant `(V, t)` dominates a later candidate
    /// `(W, s)` iff `V ⊆ W` and `t ≤ s`; the levelwise order guarantees
    /// every dominating entrant is recorded before its victims are tested.
    entrants: Vec<Vec<(AttrSet, usize)>>,
    /// The heap changed since the last [`take_snapshot`](Self::take_snapshot).
    changed: bool,
    /// Heap insertions (the stream's "improvement" count).
    pub improvements: u64,
    /// Candidates skipped before their exact `g3` was paid for, because the
    /// cheap lower bound could not beat the current k-th best.
    pub bound_pruned: u64,
    /// Candidates discarded as dominated (a subset LHS is at least as good).
    pub dominated: u64,
}

impl RankState {
    pub(crate) fn new(k: usize, n_attrs: usize, n_rows: usize) -> RankState {
        RankState {
            k,
            n_rows,
            entries: Vec::with_capacity(k.min(1024)),
            entrants: vec![Vec::new(); n_attrs],
            changed: false,
            improvements: 0,
            bound_pruned: 0,
            dominated: 0,
        }
    }

    fn full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// The current pruning threshold: the k-th best key, once the heap is
    /// full. Candidates whose best case cannot beat it are skipped.
    fn threshold(&self) -> Option<(usize, usize, usize, AttrSet)> {
        if !self.full() {
            return None;
        }
        if self.k == 0 {
            // k = 0: nothing can ever enter; the infimum key prunes all.
            return Some((0, 0, 0, AttrSet::empty()));
        }
        let last = &self.entries[self.entries.len() - 1];
        Some(rank_key(&last.fd, last.g3_rows))
    }

    /// True iff the candidate cannot enter the heap even if its true score
    /// equals `g3_rows_lower` (sound: the true score is ≥ the lower bound,
    /// and `rank_key` is monotone in the score). Callers skip the exact
    /// `g3` computation on `true`.
    pub(crate) fn cannot_enter(&self, fd: &Fd, g3_rows_lower: usize) -> bool {
        match self.threshold() {
            Some(theta) => rank_key(fd, g3_rows_lower) >= theta,
            None => false,
        }
    }

    /// Counts a heap-bound skip (kept separate from [`cannot_enter`] so the
    /// final-score recheck in [`offer`](Self::offer) is not double-counted).
    pub(crate) fn note_bound_pruned(&mut self) {
        self.bound_pruned += 1;
    }

    /// True iff some recorded entrant `(V, t)` has `V ⊆ lhs` and
    /// `t ≤ g3_rows`: the candidate is redundant — a generalization is at
    /// least as good — and is not a pool entrant.
    pub(crate) fn is_dominated(&self, lhs: AttrSet, rhs: usize, g3_rows: usize) -> bool {
        self.entrants[rhs]
            .iter()
            .any(|&(v, t)| t <= g3_rows && v.is_subset_of(lhs))
    }

    /// Records a pool entrant (its exact score is known and no recorded
    /// generalization dominates it) and inserts it into the heap when it
    /// beats the current k-th best. Runs on the driver thread only.
    pub(crate) fn offer(&mut self, fd: Fd, g3_rows: usize) {
        self.entrants[fd.rhs].push((fd.lhs, g3_rows));
        if self.k == 0 {
            return;
        }
        let key = rank_key(&fd, g3_rows);
        if self.full() && key >= self.threshold().expect("full heap has a threshold") {
            return;
        }
        let at = self
            .entries
            .partition_point(|e| rank_key(&e.fd, e.g3_rows) < key);
        self.entries.insert(
            at,
            RankedFd {
                fd,
                g3_rows,
                n_rows: self.n_rows,
            },
        );
        if self.entries.len() > self.k {
            self.entries.pop();
        }
        self.changed = true;
        self.improvements += 1;
    }

    /// Early-exit test, evaluated after level `ell` (tests and recoveries
    /// included) completes: every candidate at level `ℓ > ell` has an LHS
    /// of at least `ell` attributes, so its key is at least
    /// `(0, ell, 0, ∅)`; once the heap is full and the k-th best key is
    /// strictly below that infimum, no remaining level can produce an
    /// entrant and the walk may stop (DESIGN §12).
    pub(crate) fn early_exit(&self, ell: usize) -> bool {
        if self.k == 0 {
            return true;
        }
        match self.threshold() {
            Some(theta) => theta < (0, ell, 0, AttrSet::empty()),
            None => false,
        }
    }

    /// The heap snapshot for a [`TopKEvent`], or `None` when nothing
    /// changed since the previous snapshot.
    pub(crate) fn take_snapshot(&mut self) -> Option<Vec<RankedFd>> {
        if !self.changed {
            return None;
        }
        self.changed = false;
        Some(self.entries.clone())
    }

    /// The final heap, ascending by rank.
    pub(crate) fn into_ranked(self) -> Vec<RankedFd> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(lhs: &[usize], rhs: usize) -> Fd {
        Fd::new(AttrSet::from_indices(lhs.iter().copied()), rhs)
    }

    #[test]
    fn heap_keeps_k_best_in_rank_order() {
        let mut s = RankState::new(2, 4, 100);
        s.offer(fd(&[0], 1), 30);
        s.offer(fd(&[2], 1), 10);
        s.offer(fd(&[3], 1), 20);
        let ranked = s.into_ranked();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].g3_rows, 10);
        assert_eq!(ranked[1].g3_rows, 20);
    }

    #[test]
    fn ties_break_on_lhs_len_then_canonical_order() {
        let mut s = RankState::new(2, 4, 100);
        s.offer(fd(&[0, 1], 3), 10);
        s.offer(fd(&[2], 3), 10); // shorter LHS wins the tie
        s.offer(fd(&[1], 2), 10); // same len: smaller rhs wins
        let ranked = s.into_ranked();
        assert_eq!(ranked[0].fd, fd(&[1], 2));
        assert_eq!(ranked[1].fd, fd(&[2], 3));
    }

    #[test]
    fn cannot_enter_respects_lower_bound_and_ties() {
        let mut s = RankState::new(1, 4, 100);
        assert!(!s.cannot_enter(&fd(&[0], 1), 50), "empty heap admits all");
        s.offer(fd(&[2], 1), 10);
        assert!(s.cannot_enter(&fd(&[0], 1), 11));
        assert!(!s.cannot_enter(&fd(&[0], 1), 9));
        // Equal score: the longer LHS loses the tie and is prunable.
        assert!(s.cannot_enter(&fd(&[0, 1], 1), 10));
        // Equal score and length: canonical order decides.
        assert!(!s.cannot_enter(&fd(&[0], 1), 10), "smaller lhs wins tie");
        assert!(s.cannot_enter(&fd(&[3], 1), 10), "larger lhs loses tie");
    }

    #[test]
    fn dominance_uses_subset_and_score() {
        let mut s = RankState::new(4, 4, 100);
        s.offer(fd(&[0], 2), 10);
        assert!(s.is_dominated(AttrSet::from_indices([0, 1]), 2, 10));
        assert!(s.is_dominated(AttrSet::from_indices([0, 1]), 2, 15));
        assert!(!s.is_dominated(AttrSet::from_indices([0, 1]), 2, 9));
        assert!(!s.is_dominated(AttrSet::from_indices([1, 3]), 2, 15));
        assert!(!s.is_dominated(AttrSet::from_indices([0, 1]), 3, 15));
    }

    #[test]
    fn early_exit_requires_full_zero_score_shallow_heap() {
        let mut s = RankState::new(1, 4, 100);
        assert!(!s.early_exit(3), "heap not full");
        s.offer(fd(&[0], 1), 0);
        assert!(!s.early_exit(1), "level-2 candidates (|lhs|=1) could tie");
        assert!(s.early_exit(2), "future |lhs| ≥ 2 > 1 loses every tie");
        let mut s = RankState::new(1, 4, 100);
        s.offer(fd(&[0], 1), 1);
        assert!(!s.early_exit(5), "nonzero k-th best never exits");
    }

    #[test]
    fn k_zero_admits_nothing_and_exits_immediately() {
        let mut s = RankState::new(0, 4, 100);
        assert!(s.cannot_enter(&fd(&[0], 1), 0));
        s.offer(fd(&[0], 1), 0);
        assert!(s.early_exit(1));
        assert!(s.into_ranked().is_empty());
    }

    #[test]
    fn snapshot_fires_only_on_change() {
        let mut s = RankState::new(1, 4, 100);
        assert_eq!(s.take_snapshot(), None);
        s.offer(fd(&[0], 1), 10);
        let snap = s.take_snapshot().expect("changed");
        assert_eq!(snap.len(), 1);
        assert_eq!(s.take_snapshot(), None, "unchanged since last snapshot");
        s.offer(fd(&[2], 1), 50); // worse than the k-th best: no change
        assert_eq!(s.take_snapshot(), None);
        s.offer(fd(&[3], 1), 5);
        assert!(s.take_snapshot().is_some());
    }

    #[test]
    fn ranked_fd_fraction() {
        let r = RankedFd {
            fd: fd(&[0], 1),
            g3_rows: 3,
            n_rows: 8,
        };
        assert!((r.g3() - 0.375).abs() < 1e-12);
        let empty = RankedFd {
            fd: fd(&[0], 1),
            g3_rows: 0,
            n_rows: 0,
        };
        assert_eq!(empty.g3(), 0.0);
    }
}
