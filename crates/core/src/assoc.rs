//! Association rules via equivalence classes — the extension sketched in
//! the paper's concluding remarks.
//!
//! > *"Association rules between attribute–value pairs can be computed with
//! > a small modification of the present algorithm. An equivalence class
//! > corresponds then to a particular value combination of the attribute
//! > set. By comparing equivalence classes instead of full partitions, we
//! > can find association rules."* — Section 8
//!
//! Where a functional dependency `X → A` demands that **every** class of
//! `π_X` maps to a single `A`-value, an association rule
//! `X = x̄ ⇒ A = a` makes the claim for **one** class (one value
//! combination `x̄`), with *support* (how many rows have `X = x̄ ∧ A = a`)
//! and *confidence* (the fraction of the class agreeing on `a`).
//!
//! The search is the same levelwise walk: frequent attribute-set classes at
//! level ℓ are the equivalence classes of `π_X` with at least `min_support`
//! rows, and partitions for level ℓ+1 come from partition products — with
//! infrequent classes *stripped away*, which is exactly the apriori
//! anti-monotonicity argument in partition form.

use crate::result::TaneError;
use tane_partition::{product_with_scratch, ProductScratch, StrippedPartition};
use tane_relation::Relation;
use tane_util::AttrSet;

/// Configuration for association-rule mining.
#[derive(Debug, Clone, PartialEq)]
pub struct AssocConfig {
    /// Minimum support as a fraction of `|r|` (rows matching LHS *and*
    /// RHS). Must be positive — a zero threshold would enumerate every
    /// value combination of every attribute set.
    pub min_support: f64,
    /// Minimum confidence in `[0, 1]`.
    pub min_confidence: f64,
    /// Maximum number of attributes on the left-hand side.
    pub max_lhs: usize,
}

impl AssocConfig {
    /// Standard thresholds: support ≥ `min_support`, confidence ≥
    /// `min_confidence`, LHS of at most `max_lhs` attributes.
    ///
    /// # Panics
    ///
    /// Panics if `min_support ∉ (0, 1]` or `min_confidence ∉ [0, 1]`.
    pub fn new(min_support: f64, min_confidence: f64, max_lhs: usize) -> AssocConfig {
        assert!(
            min_support > 0.0 && min_support <= 1.0,
            "min_support must be in (0, 1], got {min_support}"
        );
        assert!(
            (0.0..=1.0).contains(&min_confidence),
            "min_confidence must be in [0, 1], got {min_confidence}"
        );
        AssocConfig {
            min_support,
            min_confidence,
            max_lhs,
        }
    }
}

/// An association rule `X = x̄ ⇒ A = a` between attribute–value pairs.
///
/// Values are dictionary codes (resolve them through
/// [`Relation::value`] when the relation was built from typed values).
#[derive(Debug, Clone, PartialEq)]
pub struct AssocRule {
    /// LHS attributes `X`.
    pub lhs_attrs: AttrSet,
    /// The LHS value combination `x̄`, one code per attribute of
    /// `lhs_attrs`, in ascending attribute order.
    pub lhs_codes: Vec<u32>,
    /// RHS attribute `A`.
    pub rhs_attr: usize,
    /// RHS value code `a`.
    pub rhs_code: u32,
    /// Rows matching LHS and RHS.
    pub support_rows: usize,
    /// Rows matching the LHS.
    pub lhs_rows: usize,
    /// `|r|`.
    pub n_rows: usize,
}

impl AssocRule {
    /// Support as a fraction of `|r|`.
    pub fn support(&self) -> f64 {
        self.support_rows as f64 / self.n_rows as f64
    }

    /// Confidence `support(X ∧ A) / support(X)`.
    pub fn confidence(&self) -> f64 {
        self.support_rows as f64 / self.lhs_rows as f64
    }

    /// Renders the rule with attribute names and dictionary codes, e.g.
    /// `[B=1, C=0] => D=2 (sup 0.25, conf 0.80)`.
    pub fn display_with(&self, names: &[String]) -> String {
        let lhs: Vec<String> = self
            .lhs_attrs
            .iter()
            .zip(&self.lhs_codes)
            .map(|(a, c)| format!("{}={c}", names.get(a).map(String::as_str).unwrap_or("?")))
            .collect();
        format!(
            "[{}] => {}={} (sup {:.3}, conf {:.3})",
            lhs.join(", "),
            names.get(self.rhs_attr).map(String::as_str).unwrap_or("?"),
            self.rhs_code,
            self.support(),
            self.confidence()
        )
    }
}

/// Mines all association rules meeting `config` by the levelwise
/// equivalence-class search described in the module docs. Rules are
/// returned grouped by LHS attribute set, ascending, then by LHS codes.
pub fn mine_assoc_rules(
    relation: &Relation,
    config: &AssocConfig,
) -> Result<Vec<AssocRule>, TaneError> {
    let n_rows = relation.num_rows();
    let n_attrs = relation.num_attrs();
    let mut rules = Vec::new();
    if n_rows == 0 || n_attrs == 0 {
        return Ok(rules);
    }
    let min_rows = (config.min_support * n_rows as f64).ceil().max(1.0) as usize;
    let mut scratch = ProductScratch::new(n_rows);

    // Level 1: frequent classes of each singleton partition. (Level 0 — the
    // empty LHS — would be the rule "⇒ A = a", i.e. plain value frequency;
    // emitted when max_lhs permits the degenerate case.)
    if config.max_lhs == 0 {
        emit_rules(
            relation,
            AttrSet::empty(),
            &StrippedPartition::unit(n_rows),
            min_rows,
            config,
            &mut rules,
        );
        return Ok(rules);
    }
    emit_rules(
        relation,
        AttrSet::empty(),
        &StrippedPartition::unit(n_rows),
        min_rows,
        config,
        &mut rules,
    );

    let mut level: Vec<(AttrSet, StrippedPartition)> = (0..n_attrs)
        .map(|a| {
            let pi = StrippedPartition::from_column(relation.column_codes(a));
            (AttrSet::singleton(a), keep_frequent(&pi, min_rows))
        })
        .filter(|(_, pi)| pi.num_classes() > 0)
        .collect();

    let mut depth = 1usize;
    while !level.is_empty() && depth <= config.max_lhs {
        for (set, pi) in &level {
            emit_rules(relation, *set, pi, min_rows, config, &mut rules);
        }
        if depth == config.max_lhs {
            break;
        }
        // Prefix join; the partition of the union is the product of the
        // parents' *frequency-filtered* partitions — classes below the
        // support threshold can never have frequent subclasses (apriori).
        let mut next = Vec::new();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (xa, pa) = &level[i];
                let (xb, pb) = &level[j];
                let (ma, mb) = (xa.max_attr().unwrap(), xb.max_attr().unwrap());
                if xa.without(ma) != xb.without(mb) || ma == mb {
                    continue;
                }
                let pi = keep_frequent(&product_with_scratch(pa, pb, &mut scratch), min_rows);
                if pi.num_classes() > 0 {
                    next.push((xa.union(*xb), pi));
                }
            }
        }
        level = next;
        depth += 1;
    }
    Ok(rules)
}

/// Drops classes below the support threshold (and, as always, singletons —
/// with `min_rows ≥ 1` a singleton class can only matter when
/// `min_rows == 1`, where a one-row "rule" carries no evidence; we follow
/// the stripped-partition convention and require classes of ≥ 2 rows).
fn keep_frequent(pi: &StrippedPartition, min_rows: usize) -> StrippedPartition {
    let mut elements = Vec::new();
    let mut begins = vec![0u32];
    for class in pi.classes() {
        if class.len() >= min_rows.max(2) {
            elements.extend_from_slice(class);
            begins.push(elements.len() as u32);
        }
    }
    StrippedPartition::from_parts(pi.n_rows(), elements, begins)
}

/// Emits the rules of one LHS attribute set: for each frequent class, split
/// by each non-LHS attribute and keep the (class value, A value) pairs
/// passing both thresholds.
fn emit_rules(
    relation: &Relation,
    set: AttrSet,
    pi: &StrippedPartition,
    min_rows: usize,
    config: &AssocConfig,
    rules: &mut Vec<AssocRule>,
) {
    let n_attrs = relation.num_attrs();
    for class in pi.classes() {
        if class.len() < min_rows {
            continue;
        }
        let rep = class[0] as usize;
        let lhs_codes: Vec<u32> = set.iter().map(|a| relation.column_codes(a)[rep]).collect();
        for a in 0..n_attrs {
            if set.contains(a) {
                continue;
            }
            // Count A-codes within the class.
            let codes = relation.column_codes(a);
            let mut counts: Vec<(u32, usize)> = Vec::new();
            for &t in class {
                let c = codes[t as usize];
                match counts.iter_mut().find(|(code, _)| *code == c) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((c, 1)),
                }
            }
            counts.sort_unstable();
            for (code, support_rows) in counts {
                if support_rows >= min_rows
                    && support_rows as f64 / class.len() as f64 >= config.min_confidence
                {
                    rules.push(AssocRule {
                        lhs_attrs: set,
                        lhs_codes: lhs_codes.clone(),
                        rhs_attr: a,
                        rhs_code: code,
                        support_rows,
                        lhs_rows: class.len(),
                        n_rows: relation.num_rows(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::Schema;

    fn rel(cols: Vec<Vec<u32>>) -> Relation {
        Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
    }

    /// Brute-force miner for cross-checking: enumerate LHS sets and value
    /// combinations directly.
    fn brute_force_rules(relation: &Relation, config: &AssocConfig) -> Vec<AssocRule> {
        let n = relation.num_rows();
        let n_attrs = relation.num_attrs();
        let min_rows = (config.min_support * n as f64).ceil().max(1.0) as usize;
        let mut out = Vec::new();
        for bits in 0u64..(1 << n_attrs) {
            let set = AttrSet::from_bits(bits);
            if set.len() > config.max_lhs {
                continue;
            }
            // Group rows by LHS value combination.
            let mut groups: Vec<(Vec<u32>, Vec<usize>)> = Vec::new();
            for t in 0..n {
                let key: Vec<u32> = set.iter().map(|a| relation.column_codes(a)[t]).collect();
                match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, rows)) => rows.push(t),
                    None => groups.push((key, vec![t])),
                }
            }
            for (key, rows) in groups {
                if rows.len() < min_rows.max(2) {
                    continue;
                }
                for a in 0..n_attrs {
                    if set.contains(a) {
                        continue;
                    }
                    let mut counts: Vec<(u32, usize)> = Vec::new();
                    for &t in &rows {
                        let c = relation.column_codes(a)[t];
                        match counts.iter_mut().find(|(code, _)| *code == c) {
                            Some((_, n)) => *n += 1,
                            None => counts.push((c, 1)),
                        }
                    }
                    counts.sort_unstable();
                    for (code, support_rows) in counts {
                        if support_rows >= min_rows
                            && support_rows as f64 / rows.len() as f64 >= config.min_confidence
                        {
                            out.push(AssocRule {
                                lhs_attrs: set,
                                lhs_codes: key.clone(),
                                rhs_attr: a,
                                rhs_code: code,
                                support_rows,
                                lhs_rows: rows.len(),
                                n_rows: n,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    fn canon(mut rules: Vec<AssocRule>) -> Vec<AssocRule> {
        rules.sort_by(|x, y| {
            (x.lhs_attrs, &x.lhs_codes, x.rhs_attr, x.rhs_code).cmp(&(
                y.lhs_attrs,
                &y.lhs_codes,
                y.rhs_attr,
                y.rhs_code,
            ))
        });
        rules
    }

    #[test]
    fn hand_checked_rule() {
        // Column 0 = weather (0: sunny ×4, 1: rainy ×2); column 1 = play
        // (sunny → mostly yes).
        let r = rel(vec![vec![0, 0, 0, 0, 1, 1], vec![1, 1, 1, 0, 0, 0]]);
        let config = AssocConfig::new(0.3, 0.7, 1);
        let rules = mine_assoc_rules(&r, &config).unwrap();
        // weather=0 ⇒ play=1 with support 3/6, confidence 3/4.
        let rule = rules
            .iter()
            .find(|r| {
                r.lhs_attrs == AttrSet::singleton(0)
                    && r.lhs_codes == [0]
                    && r.rhs_attr == 1
                    && r.rhs_code == 1
            })
            .expect("rule must be found");
        assert_eq!(rule.support_rows, 3);
        assert_eq!(rule.lhs_rows, 4);
        assert!((rule.confidence() - 0.75).abs() < 1e-12);
        // weather=1 ⇒ play=0 with confidence 1.0.
        assert!(rules
            .iter()
            .any(|r| r.lhs_codes == [1] && r.rhs_code == 0 && r.confidence() == 1.0));
    }

    #[test]
    fn matches_brute_force_on_small_relations() {
        let mut s = 0xdeadbeefu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 3) as u32
        };
        for trial in 0..10 {
            let cols: Vec<Vec<u32>> = (0..4).map(|_| (0..20).map(|_| next()).collect()).collect();
            let r = rel(cols);
            for (sup, conf, max_lhs) in [(0.1, 0.5, 2), (0.2, 0.8, 3), (0.05, 0.0, 2)] {
                let config = AssocConfig::new(sup, conf, max_lhs);
                let got = canon(mine_assoc_rules(&r, &config).unwrap());
                let want = canon(brute_force_rules(&r, &config));
                assert_eq!(
                    got, want,
                    "trial {trial} sup={sup} conf={conf} max_lhs={max_lhs}"
                );
            }
        }
    }

    #[test]
    fn empty_lhs_rules_are_value_frequencies() {
        let r = rel(vec![vec![0, 0, 0, 1]]);
        let config = AssocConfig::new(0.5, 0.5, 0);
        let rules = mine_assoc_rules(&r, &config).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].rhs_code, 0);
        assert_eq!(rules[0].support_rows, 3);
        assert!(rules[0].lhs_attrs.is_empty());
    }

    #[test]
    fn thresholds_filter() {
        let r = rel(vec![vec![0, 0, 1, 1], vec![0, 1, 0, 1]]);
        // Perfectly uncorrelated: no rule can reach 0.9 confidence with a
        // non-empty LHS; the empty-LHS marginals are 50% as well.
        let rules = mine_assoc_rules(&r, &AssocConfig::new(0.25, 0.9, 2)).unwrap();
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn functional_dependency_appears_as_full_confidence_rules() {
        // Planted FD col0 → col1: every frequent class yields a
        // confidence-1.0 rule — the paper's "unified view".
        let r = rel(vec![vec![0, 0, 0, 1, 1, 1], vec![7, 7, 7, 8, 8, 8]]);
        let rules = mine_assoc_rules(&r, &AssocConfig::new(0.3, 1.0, 1)).unwrap();
        let fd_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.lhs_attrs == AttrSet::singleton(0) && r.rhs_attr == 1)
            .collect();
        assert_eq!(fd_rules.len(), 2); // one per value of col0
        assert!(fd_rules.iter().all(|r| r.confidence() == 1.0));
    }

    #[test]
    fn empty_relation_and_degenerate_configs() {
        let r = rel(vec![vec![]]);
        assert!(mine_assoc_rules(&r, &AssocConfig::new(0.5, 0.5, 1))
            .unwrap()
            .is_empty());
        assert!(std::panic::catch_unwind(|| AssocConfig::new(0.0, 0.5, 1)).is_err());
        assert!(std::panic::catch_unwind(|| AssocConfig::new(0.5, 1.5, 1)).is_err());
    }

    #[test]
    fn display_renders_names_and_codes() {
        let rule = AssocRule {
            lhs_attrs: AttrSet::from_indices([0, 2]),
            lhs_codes: vec![1, 3],
            rhs_attr: 1,
            rhs_code: 2,
            support_rows: 5,
            lhs_rows: 10,
            n_rows: 20,
        };
        let names: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let text = rule.display_with(&names);
        assert!(text.contains("x=1"));
        assert!(text.contains("z=3"));
        assert!(text.contains("y=2"));
        assert!(text.contains("conf 0.500"));
    }
}
