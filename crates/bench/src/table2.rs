//! Table 2: "Performance of TANE/MEM on approximate dependency discovery" —
//! N and wall-clock across ε ∈ {0, 0.01, 0.05, 0.25, 0.5}.

use crate::report::Table2Row;
use crate::runners::{format_row, run_approx_paper as run_approx};
use crate::Scale;
use tane_datasets as ds;
use tane_relation::Relation;

/// The ε grid of the paper's Table 2.
pub const EPSILONS: [f64; 5] = [0.0, 0.01, 0.05, 0.25, 0.5];

fn dataset_grid(scale: Scale) -> Vec<(String, Relation)> {
    let mut grid: Vec<(String, Relation)> = vec![
        ("Lymphography".into(), ds::lymphography()),
        ("Hepatitis".into(), ds::hepatitis()),
        ("W. breast cancer".into(), ds::wisconsin_breast_cancer()),
    ];
    match scale {
        Scale::Fast => grid.push(("W. breast cancer x8".into(), ds::scaled_wbc(8))),
        Scale::Full => {
            grid.push(("W. breast cancer x64".into(), ds::scaled_wbc(64)));
            grid.push(("Chess".into(), ds::chess_krk()));
        }
    }
    grid
}

/// Runs and prints Table 2; returns the structured rows.
pub fn run(scale: Scale) -> Vec<Table2Row> {
    println!("Table 2: TANE/MEM on approximate dependency discovery");
    println!("(paper-faithful rhs+ heuristic — see ApproxTaneConfig::aggressive_rhs_plus)");
    let mut header = vec!["Database".to_string()];
    for eps in EPSILONS {
        header.push(format!("N(e={eps})"));
        header.push("Time".to_string());
    }
    let widths = [22usize, 9, 8, 9, 8, 9, 8, 9, 8, 9, 8];
    println!("{}", format_row(&widths, &header));
    let mut rows = Vec::new();
    for (name, relation) in dataset_grid(scale) {
        let mut cells = Vec::new();
        let mut printed = vec![name.clone()];
        for eps in EPSILONS {
            let cell = run_approx(&relation, eps);
            printed.push(cell.n.to_string());
            printed.push(tane_util::timing::format_secs(cell.secs));
            cells.push((eps, cell));
        }
        println!("{}", format_row(&widths, &printed));
        rows.push(Table2Row {
            dataset: name,
            cells,
        });
    }
    println!();
    rows
}
