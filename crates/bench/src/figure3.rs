//! Figure 3: relative dependency counts and discovery times of approximate
//! TANE/MEM across ε, for Hepatitis (top), Wisconsin breast cancer (middle)
//! and Chess (bottom). The paper plots `N_ε/N_0` and `Time_ε/Time_0`; we
//! print the same two series per dataset.

use crate::report::Figure3Point;
use crate::runners::{format_row, run_approx_paper as run_approx};
use crate::Scale;
use tane_datasets as ds;
use tane_relation::Relation;

/// ε grid of the figure (denser than Table 2 to show the curve shape).
pub const EPSILONS: [f64; 9] = [0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4, 0.5];

fn dataset_grid(scale: Scale) -> Vec<(String, Relation)> {
    let mut grid: Vec<(String, Relation)> = vec![
        ("Hepatitis".into(), ds::hepatitis()),
        ("W. breast cancer".into(), ds::wisconsin_breast_cancer()),
    ];
    if scale == Scale::Full {
        grid.push(("Chess".into(), ds::chess_krk()));
    }
    grid
}

/// Runs and prints Figure 3's series; returns them structured.
pub fn run(scale: Scale) -> Vec<(String, Vec<Figure3Point>)> {
    println!("Figure 3: approximate discovery relative to exact (TANE/MEM)");
    println!("(paper-faithful rhs+ heuristic — see ApproxTaneConfig::aggressive_rhs_plus)");
    let widths = [8usize, 9, 10, 10, 12];
    let mut out = Vec::new();
    for (name, relation) in dataset_grid(scale) {
        println!("-- {name}");
        println!(
            "{}",
            format_row(
                &widths,
                &["eps", "N", "N/N0", "Time(s)", "Time/Time0"].map(String::from)
            )
        );
        let base = run_approx(&relation, 0.0);
        let mut series = Vec::new();
        for eps in EPSILONS {
            let cell = if eps == 0.0 {
                base
            } else {
                run_approx(&relation, eps)
            };
            let n_ratio = if base.n == 0 {
                0.0
            } else {
                cell.n as f64 / base.n as f64
            };
            let time_ratio = if base.secs == 0.0 {
                0.0
            } else {
                cell.secs / base.secs
            };
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        format!("{eps}"),
                        cell.n.to_string(),
                        format!("{n_ratio:.3}"),
                        format!("{:.3}", cell.secs),
                        format!("{time_ratio:.3}"),
                    ]
                )
            );
            series.push(Figure3Point {
                epsilon: eps,
                n: cell.n,
                n_ratio,
                secs: cell.secs,
                time_ratio,
            });
        }
        out.push((name, series));
    }
    println!();
    out
}
