//! Top-k ranked search experiment (beyond the paper): wall-clock and
//! pruning effect of the heap bound at small `k` against the same ranked
//! walk with an unbounded heap. The unbounded run is the honest baseline —
//! it scores the identical candidate pool under the identical rank key,
//! but its heap never fills, so the bound never prunes and the walk never
//! exits early (the oracle test in `tane-core` proves the bounded run's
//! heap is exactly a prefix of it). The claim under test: at small `k` the
//! bound skips real work — fewer validity tests, fewer exact `g3`
//! computations, and less wall-clock — while returning the same top of
//! the ranking.

use crate::report::TopKRow;
use crate::runners::format_row;
use crate::Scale;
use tane_core::{discover_topk_fds, TaneConfig, TaneResult, TopKConfig};
use tane_datasets as ds;
use tane_relation::Relation;
use tane_util::Stopwatch;

/// Heap sizes of the bounded runs.
const K_GRID: [usize; 3] = [1, 5, 25];

/// Stand-in for "no bound": far larger than any candidate pool the grid's
/// relations can produce, so the heap never fills.
const UNBOUNDED: usize = 1 << 30;

fn dataset_grid(scale: Scale) -> Vec<(String, Relation)> {
    let mut grid = vec![(
        "Wisconsin breast cancer".to_string(),
        ds::wisconsin_breast_cancer(),
    )];
    if let Scale::Full = scale {
        grid.push(("Wisconsin breast cancer x8".into(), ds::scaled_wbc(8)));
    }
    grid
}

fn run_ranked(relation: &Relation, k: usize) -> (TaneResult, f64) {
    let config = TopKConfig {
        base: TaneConfig::default(),
        ..TopKConfig::new(k)
    };
    let sw = Stopwatch::start();
    let result = discover_topk_fds(relation, &config).expect("ranked run failed");
    (result, sw.elapsed_secs())
}

fn to_row(
    dataset: &str,
    relation: &Relation,
    k: Option<usize>,
    result: &TaneResult,
    secs: f64,
) -> TopKRow {
    TopKRow {
        dataset: dataset.to_string(),
        rows: relation.num_rows(),
        attrs: relation.num_attrs(),
        k,
        heap_len: result.ranked.as_deref().map_or(0, <[_]>::len),
        secs,
        validity_tests: result.stats.validity_tests,
        g3_exact: result.stats.g3_exact_computations,
        bound_pruned: result.stats.topk_bound_pruned,
        dominated: result.stats.topk_dominated,
        early_exit_level: result.stats.topk_early_exit_level,
    }
}

/// Runs and prints the top-k grid; returns the structured rows.
pub fn run(scale: Scale) -> Vec<TopKRow> {
    println!("Top-k ranked search: bounded heap vs the unbounded ranked walk (times in seconds)");
    let widths = [28usize, 6, 6, 9, 9, 9, 9, 9, 6];
    println!(
        "{}",
        format_row(
            &widths,
            &["Name", "k", "Heap", "Time(s)", "Tests", "ExactG3", "Pruned", "Domin.", "Exit"]
                .map(String::from)
        )
    );

    let mut rows = Vec::new();
    for (name, relation) in dataset_grid(scale) {
        let (full, full_secs) = run_ranked(&relation, UNBOUNDED);
        assert_eq!(
            full.stats.topk_bound_pruned, 0,
            "unbounded heap never prunes"
        );
        assert_eq!(full.stats.topk_early_exit_level, None);
        let mut grid_rows = vec![to_row(&name, &relation, None, &full, full_secs)];
        for k in K_GRID {
            let (bounded, secs) = run_ranked(&relation, k);
            // Soundness spot-check alongside the timing: the bounded heap
            // is the top of the unbounded ranking, and the bound did not
            // decide more than the full run did.
            let want =
                &full.ranked.as_deref().unwrap()[..k.min(full.ranked.as_deref().unwrap().len())];
            assert_eq!(bounded.ranked.as_deref().unwrap(), want, "{name} k={k}");
            assert!(
                bounded.stats.validity_tests <= full.stats.validity_tests,
                "{name} k={k}: the bound must not add work"
            );
            grid_rows.push(to_row(&name, &relation, Some(k), &bounded, secs));
        }
        for row in &grid_rows {
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        row.dataset.clone(),
                        row.k.map_or("full".into(), |k| k.to_string()),
                        row.heap_len.to_string(),
                        format!("{:.3}", row.secs),
                        row.validity_tests.to_string(),
                        row.g3_exact.to_string(),
                        row.bound_pruned.to_string(),
                        row.dominated.to_string(),
                        row.early_exit_level.map_or("-".into(), |l| l.to_string()),
                    ]
                )
            );
        }
        rows.extend(grid_rows);
    }
    println!();
    rows
}
