//! Figure 4: "Performance of the algorithms when the number of rows
//! increases" — wbc×n for doubling n, TANE (disk) vs TANE/MEM vs FDEP.
//! The paper shows this data at three scales to exhibit FDEP's quadratic
//! growth against TANE's near-linear growth; we print the raw series (one
//! point per n) from which all three plots derive.

use crate::report::Figure4Point;
use crate::runners::{
    format_row, run_fdep, run_tane_disk, run_tane_mem, FDEP_PAIR_CAP_FAST, FDEP_PAIR_CAP_FULL,
};
use crate::Scale;
use tane_datasets as ds;

/// Runs and prints the Figure 4 series; returns the structured points.
pub fn run(scale: Scale) -> Vec<Figure4Point> {
    let (copies, pair_cap): (&[usize], usize) = match scale {
        Scale::Fast => (&[1, 2, 4, 8], FDEP_PAIR_CAP_FAST),
        Scale::Full => (&[1, 2, 4, 8, 16, 32, 64, 128, 256, 512], FDEP_PAIR_CAP_FULL),
    };
    println!("Figure 4: scale-up in the number of rows (wbc x n), times in seconds");
    let widths = [6usize, 9, 10, 10, 10];
    println!(
        "{}",
        format_row(
            &widths,
            &["n", "rows", "TANE", "TANE/MEM", "Fdep"].map(String::from)
        )
    );
    let mut out = Vec::new();
    for &n in copies {
        let relation = ds::scaled_wbc(n);
        let tane = run_tane_disk(&relation);
        let tane_mem = run_tane_mem(&relation);
        let fdep = run_fdep(&relation, pair_cap);
        assert_eq!(tane.n, tane_mem.n);
        println!(
            "{}",
            format_row(
                &widths,
                &[
                    n.to_string(),
                    relation.num_rows().to_string(),
                    format!("{:.3}", tane.secs),
                    format!("{:.3}", tane_mem.secs),
                    fdep.map(|c| format!("{:.3}", c.secs))
                        .unwrap_or_else(|| "*".to_string()),
                ]
            )
        );
        out.push(Figure4Point {
            copies: n,
            rows: relation.num_rows(),
            tane: Some(tane.secs),
            tane_mem: Some(tane_mem.secs),
            fdep: fdep.map(|c| c.secs),
        });
    }
    println!("(* = FDEP pair scan beyond the feasibility cap, as in the paper)");
    println!();
    out
}
