//! Thread-scaling experiment (beyond the paper): the same search at 1, 2,
//! 4, and 8 pool workers, on both storage backends. Two claims are under
//! test: the dependency count and product count must be identical down
//! every column (the runtime is deterministic by construction — see
//! DESIGN.md §9), and the instrumentation (worker busy time, steals,
//! parks, spin, fetch stall) must explain where the wall-clock goes. On a
//! single-core machine the rows legitimately show no speedup; the `cores`
//! field records the machine so the numbers read as measured, and
//! [`assert_scaling`] gates CI only where 4 workers can actually run.

use crate::report::ScalingRow;
use crate::runners::format_row;
use crate::Scale;
use tane_core::{discover_fds, Storage, TaneConfig};
use tane_datasets::{generate, ColumnSpec, DatasetSpec};
use tane_relation::Relation;
use tane_util::Stopwatch;

/// Worker counts of the grid.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Disk cache for the scaling runs: small enough that the generated
/// dataset's lattice spills and the pipelined fetch path carries real
/// traffic.
pub(crate) const SCALING_CACHE_BYTES: usize = 8 << 20;

/// The generated workload: wide and row-heavy so level-1 construction,
/// products, and (on disk) fetches all cross the parallel work gate.
/// `Fast` trims the rows, not the shape. Shared with the disk-scaling
/// experiment so funnel-vs-direct numbers are comparable to these rows.
pub(crate) fn workload(scale: Scale) -> Relation {
    let rows: usize = match scale {
        Scale::Fast => 5_000,
        Scale::Full => 100_000,
    };
    let columns = vec![
        ColumnSpec::Categorical { distinct: 20 },
        ColumnSpec::Categorical { distinct: 35 },
        ColumnSpec::Categorical { distinct: 8 },
        ColumnSpec::Skewed {
            distinct: 60,
            exponent: 1.3,
        },
        ColumnSpec::Skewed {
            distinct: 25,
            exponent: 1.1,
        },
        ColumnSpec::NearUnique {
            distinct: (rows / 2) as u32,
        },
        ColumnSpec::Derived {
            of: vec![0, 1],
            distinct: 18,
        },
        ColumnSpec::Derived {
            of: vec![2, 3],
            distinct: 14,
        },
        ColumnSpec::NoisyDerived {
            of: vec![1, 4],
            distinct: 12,
            noise: 0.03,
        },
        ColumnSpec::Categorical { distinct: 50 },
        ColumnSpec::Categorical { distinct: 5 },
        ColumnSpec::Derived {
            of: vec![9, 10],
            distinct: 22,
        },
        ColumnSpec::NoisyDerived {
            of: vec![0, 9],
            distinct: 16,
            noise: 0.05,
        },
        ColumnSpec::Skewed {
            distinct: 40,
            exponent: 1.5,
        },
        ColumnSpec::Categorical { distinct: 12 },
    ];
    generate(&DatasetSpec {
        name: "scaling".into(),
        rows,
        columns,
        seed: 0x5ca1e,
    })
    .expect("scaling workload spec is valid")
}

/// Runs and prints the thread-scaling grid; returns the structured rows.
pub fn run(scale: Scale) -> Vec<ScalingRow> {
    let relation = workload(scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Thread scaling: {} rows x {} attributes, max LHS 3, workers {:?}, {} core(s)",
        relation.num_rows(),
        relation.num_attrs(),
        THREADS,
        cores
    );
    let widths = [8usize, 7, 6, 9, 9, 7, 6, 8, 9, 12, 12];
    println!(
        "{}",
        format_row(
            &widths,
            &[
                "Storage", "Threads", "N", "Time(s)", "Busy(s)", "Steals", "Parks", "Spin(s)",
                "Stall(s)", "Read(B)", "Write(B)"
            ]
            .map(String::from)
        )
    );

    let storages: [(&str, Storage); 2] = [
        ("memory", Storage::Memory),
        (
            "disk",
            Storage::Disk {
                cache_bytes: SCALING_CACHE_BYTES,
            },
        ),
    ];

    let mut rows = Vec::new();
    for (label, storage) in &storages {
        let mut reference: Option<(usize, usize)> = None;
        for &threads in &THREADS {
            // max_lhs bounds the 15-attribute lattice so a cell is seconds,
            // not hours; the bound is identical in every cell, so the
            // thread-invariance check still bites.
            let config = TaneConfig {
                storage: storage.clone(),
                threads,
                ..TaneConfig::default()
            }
            .with_max_lhs(3);
            let sw = Stopwatch::start();
            let result = discover_fds(&relation, &config).expect("scaling run failed");
            let secs = sw.elapsed_secs();
            let row = ScalingRow {
                storage: label.to_string(),
                threads,
                cores,
                n: result.fds.len(),
                secs,
                products: result.stats.products,
                worker_busy_secs: result.stats.worker_busy.as_secs_f64(),
                worker_steals: result.stats.worker_steals,
                park_count: result.stats.worker_parks,
                spin_secs: result.stats.worker_spin.as_secs_f64(),
                serial: threads == 1,
                fetch_stall_secs: result.stats.fetch_stall.as_secs_f64(),
                disk_bytes_read: result.stats.disk_bytes_read,
                disk_bytes_written: result.stats.disk_bytes_written,
            };
            match reference {
                None => reference = Some((row.n, row.products)),
                Some(r) => assert_eq!(
                    r,
                    (row.n, row.products),
                    "{label}/threads={threads} changed the output"
                ),
            }
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        row.storage.clone(),
                        row.threads.to_string(),
                        row.n.to_string(),
                        format!("{:.3}", row.secs),
                        format!("{:.3}", row.worker_busy_secs),
                        row.worker_steals.to_string(),
                        row.park_count.to_string(),
                        format!("{:.3}", row.spin_secs),
                        format!("{:.3}", row.fetch_stall_secs),
                        row.disk_bytes_read.to_string(),
                        row.disk_bytes_written.to_string(),
                    ]
                )
            );
            rows.push(row);
        }
    }
    println!();
    rows
}

/// `--assert-scaling`: the regression gate for the work-stealing runtime.
/// Fails (returns an error message) if the 4-thread wall time is not
/// strictly below the 2-thread wall time on the memory backend. The check
/// only means something when the machine can actually run 4 workers at
/// once, so on smaller machines it skips — loudly, so CI logs show the
/// gate did not bite.
pub fn assert_scaling(rows: &[ScalingRow]) -> Result<(), String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!(
            "assert-scaling: SKIPPED — only {cores} core(s) available; \
             the 4-vs-2-thread wall-time comparison needs at least 4"
        );
        return Ok(());
    }
    let wall = |threads: usize| {
        rows.iter()
            .find(|r| r.storage == "memory" && r.threads == threads)
            .map(|r| r.secs)
            .ok_or_else(|| format!("assert-scaling: no memory row at {threads} threads"))
    };
    let (t2, t4) = (wall(2)?, wall(4)?);
    if t4 >= t2 {
        return Err(format!(
            "assert-scaling: FAILED — memory backend wall time at 4 threads \
             ({t4:.3}s) is not below 2 threads ({t2:.3}s); the pool is not scaling"
        ));
    }
    eprintln!("assert-scaling: ok — memory 4-thread {t4:.3}s < 2-thread {t2:.3}s");
    Ok(())
}
