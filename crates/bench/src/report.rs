//! Structured experiment results, serializable with `--json`.

use crate::runners::Cell;
use serde::Serialize;

/// One Table 1 row.
#[derive(Debug, Serialize)]
pub struct Table1Row {
    /// Dataset label, e.g. `wbc x64`.
    pub dataset: String,
    /// Row count `|r|`.
    pub rows: usize,
    /// Attribute count `|R|`.
    pub attrs: usize,
    /// Minimal dependencies found.
    pub n: usize,
    /// Scalable TANE (disk) measurement.
    pub tane: Option<Cell>,
    /// TANE/MEM measurement.
    pub tane_mem: Option<Cell>,
    /// FDEP measurement (`None` = infeasible, the paper's `*`).
    pub fdep: Option<Cell>,
}

/// One Table 2 row: a dataset across the ε grid.
#[derive(Debug, Serialize)]
pub struct Table2Row {
    /// Dataset label.
    pub dataset: String,
    /// `(epsilon, cell)` per grid point.
    pub cells: Vec<(f64, Cell)>,
}

/// One Table 3 row: ours measured, cited numbers echoed.
#[derive(Debug, Serialize)]
pub struct Table3Row {
    /// Dataset label as printed in the paper.
    pub dataset: String,
    /// `|r|`, `|R|`, LHS limit `|X|`.
    pub rows: usize,
    /// Attribute count.
    pub attrs: usize,
    /// LHS size limit used.
    pub max_lhs: usize,
    /// Literature numbers `(column, seconds)` cited from the paper
    /// (never re-measured — marked † in the printout).
    pub cited: Vec<(String, f64)>,
    /// Our FDEP measurement.
    pub fdep: Option<Cell>,
    /// Our TANE measurement.
    pub tane: Option<Cell>,
}

/// One Figure 3 series point.
#[derive(Debug, Serialize)]
pub struct Figure3Point {
    /// Threshold ε.
    pub epsilon: f64,
    /// Dependencies found at ε.
    pub n: usize,
    /// `N_ε / N_0`.
    pub n_ratio: f64,
    /// Seconds at ε.
    pub secs: f64,
    /// `Time_ε / Time_0`.
    pub time_ratio: f64,
}

/// One Figure 4 point: the three algorithms at one row count.
#[derive(Debug, Serialize)]
pub struct Figure4Point {
    /// Copy multiplier `n` of wbc×n.
    pub copies: usize,
    /// Total rows.
    pub rows: usize,
    /// Scalable TANE seconds.
    pub tane: Option<f64>,
    /// TANE/MEM seconds.
    pub tane_mem: Option<f64>,
    /// FDEP seconds (`None` beyond the feasibility cap).
    pub fdep: Option<f64>,
}

/// One ablation measurement.
#[derive(Debug, Serialize)]
pub struct AblationRow {
    /// Dataset label.
    pub dataset: String,
    /// Variant label, e.g. `no key pruning`.
    pub variant: String,
    /// Dependencies found (must be invariant across variants).
    pub n: usize,
    /// Seconds.
    pub secs: f64,
    /// Lattice sets processed (the paper's `s`).
    pub sets_total: usize,
    /// Validity tests.
    pub validity_tests: usize,
}

/// Everything the harness produced in one invocation.
#[derive(Debug, Default, Serialize)]
pub struct Report {
    /// Table 1 rows, if run.
    pub table1: Vec<Table1Row>,
    /// Table 2 rows, if run.
    pub table2: Vec<Table2Row>,
    /// Table 3 rows, if run.
    pub table3: Vec<Table3Row>,
    /// Figure 3 series per dataset, if run.
    pub figure3: Vec<(String, Vec<Figure3Point>)>,
    /// Figure 4 points, if run.
    pub figure4: Vec<Figure4Point>,
    /// Ablation rows, if run.
    pub ablations: Vec<AblationRow>,
}
