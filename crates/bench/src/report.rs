//! Structured experiment results, serializable with `--json`.
//!
//! Serialization is hand-rolled onto [`tane_util::Json`] (`serde` is not
//! available in the offline build); each row type has a `to_json` mirror
//! of its fields, so the emitted document is field-for-field what the
//! `serde` derive used to produce.

use crate::runners::{cell_json, Cell};
use tane_util::Json;

/// One Table 1 row.
#[derive(Debug)]
pub struct Table1Row {
    /// Dataset label, e.g. `wbc x64`.
    pub dataset: String,
    /// Row count `|r|`.
    pub rows: usize,
    /// Attribute count `|R|`.
    pub attrs: usize,
    /// Minimal dependencies found.
    pub n: usize,
    /// Scalable TANE (disk) measurement.
    pub tane: Option<Cell>,
    /// TANE/MEM measurement.
    pub tane_mem: Option<Cell>,
    /// FDEP measurement (`None` = infeasible, the paper's `*`).
    pub fdep: Option<Cell>,
}

impl Table1Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::Str(self.dataset.clone())),
            ("rows", Json::Num(self.rows as f64)),
            ("attrs", Json::Num(self.attrs as f64)),
            ("n", Json::Num(self.n as f64)),
            ("tane", cell_json(self.tane)),
            ("tane_mem", cell_json(self.tane_mem)),
            ("fdep", cell_json(self.fdep)),
        ])
    }
}

/// One Table 2 row: a dataset across the ε grid.
#[derive(Debug)]
pub struct Table2Row {
    /// Dataset label.
    pub dataset: String,
    /// `(epsilon, cell)` per grid point.
    pub cells: Vec<(f64, Cell)>,
}

impl Table2Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::Str(self.dataset.clone())),
            (
                "cells",
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|(eps, cell)| Json::Arr(vec![Json::Num(*eps), cell.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One Table 3 row: ours measured, cited numbers echoed.
#[derive(Debug)]
pub struct Table3Row {
    /// Dataset label as printed in the paper.
    pub dataset: String,
    /// `|r|`, `|R|`, LHS limit `|X|`.
    pub rows: usize,
    /// Attribute count.
    pub attrs: usize,
    /// LHS size limit used.
    pub max_lhs: usize,
    /// Literature numbers `(column, seconds)` cited from the paper
    /// (never re-measured — marked † in the printout).
    pub cited: Vec<(String, f64)>,
    /// Our FDEP measurement.
    pub fdep: Option<Cell>,
    /// Our TANE measurement.
    pub tane: Option<Cell>,
}

impl Table3Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::Str(self.dataset.clone())),
            ("rows", Json::Num(self.rows as f64)),
            ("attrs", Json::Num(self.attrs as f64)),
            ("max_lhs", Json::Num(self.max_lhs as f64)),
            (
                "cited",
                Json::Arr(
                    self.cited
                        .iter()
                        .map(|(name, secs)| {
                            Json::Arr(vec![Json::Str(name.clone()), Json::Num(*secs)])
                        })
                        .collect(),
                ),
            ),
            ("fdep", cell_json(self.fdep)),
            ("tane", cell_json(self.tane)),
        ])
    }
}

/// One Figure 3 series point.
#[derive(Debug)]
pub struct Figure3Point {
    /// Threshold ε.
    pub epsilon: f64,
    /// Dependencies found at ε.
    pub n: usize,
    /// `N_ε / N_0`.
    pub n_ratio: f64,
    /// Seconds at ε.
    pub secs: f64,
    /// `Time_ε / Time_0`.
    pub time_ratio: f64,
}

impl Figure3Point {
    fn to_json(&self) -> Json {
        Json::obj([
            ("epsilon", Json::Num(self.epsilon)),
            ("n", Json::Num(self.n as f64)),
            ("n_ratio", Json::Num(self.n_ratio)),
            ("secs", Json::Num(self.secs)),
            ("time_ratio", Json::Num(self.time_ratio)),
        ])
    }
}

/// One Figure 4 point: the three algorithms at one row count.
#[derive(Debug)]
pub struct Figure4Point {
    /// Copy multiplier `n` of wbc×n.
    pub copies: usize,
    /// Total rows.
    pub rows: usize,
    /// Scalable TANE seconds.
    pub tane: Option<f64>,
    /// TANE/MEM seconds.
    pub tane_mem: Option<f64>,
    /// FDEP seconds (`None` beyond the feasibility cap).
    pub fdep: Option<f64>,
}

impl Figure4Point {
    fn to_json(&self) -> Json {
        let secs = |s: Option<f64>| s.map_or(Json::Null, Json::Num);
        Json::obj([
            ("copies", Json::Num(self.copies as f64)),
            ("rows", Json::Num(self.rows as f64)),
            ("tane", secs(self.tane)),
            ("tane_mem", secs(self.tane_mem)),
            ("fdep", secs(self.fdep)),
        ])
    }
}

/// One ablation measurement.
#[derive(Debug)]
pub struct AblationRow {
    /// Dataset label.
    pub dataset: String,
    /// Variant label, e.g. `no key pruning`.
    pub variant: String,
    /// Dependencies found (must be invariant across variants).
    pub n: usize,
    /// Seconds.
    pub secs: f64,
    /// Lattice sets processed (the paper's `s`).
    pub sets_total: usize,
    /// Validity tests.
    pub validity_tests: usize,
}

impl AblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::Str(self.dataset.clone())),
            ("variant", Json::Str(self.variant.clone())),
            ("n", Json::Num(self.n as f64)),
            ("secs", Json::Num(self.secs)),
            ("sets_total", Json::Num(self.sets_total as f64)),
            ("validity_tests", Json::Num(self.validity_tests as f64)),
        ])
    }
}

/// One thread-scaling measurement: the same search at one worker count on
/// one storage backend. The dependency count `n` must be identical down
/// every column — the parallel runtime is deterministic by construction.
#[derive(Debug)]
pub struct ScalingRow {
    /// Storage backend label, `memory` or `disk`.
    pub storage: String,
    /// Worker threads configured for the search.
    pub threads: usize,
    /// CPU cores available on the machine that ran the row — the honest
    /// context for the wall-clock column (threads beyond `cores` cannot
    /// speed anything up).
    pub cores: usize,
    /// Dependencies found (thread-invariant).
    pub n: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Partition products computed (thread-invariant).
    pub products: usize,
    /// Summed worker busy time across the pool. The serial runtime records
    /// its compute sections here too (`serial: true` marks those rows), so
    /// utilization is comparable against the 1-thread baseline.
    pub worker_busy_secs: f64,
    /// Successful work steals across the pool (scheduling instrumentation;
    /// 0 on serial rows).
    pub worker_steals: u64,
    /// Times workers parked on the dispatch condvar instead of spinning.
    pub park_count: u64,
    /// Time workers spent probing other deques for work before parking.
    pub spin_secs: f64,
    /// `true` when `threads == 1`: the paper-faithful serial runtime, no
    /// pool dispatch (busy time is the inline compute sections).
    pub serial: bool,
    /// Time the product stage spent waiting on partition fetches.
    pub fetch_stall_secs: f64,
    /// Bytes read back from spilled partitions.
    pub disk_bytes_read: u64,
    /// Bytes spilled to disk.
    pub disk_bytes_written: u64,
}

impl ScalingRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("storage", Json::Str(self.storage.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("cores", Json::Num(self.cores as f64)),
            ("n", Json::Num(self.n as f64)),
            ("secs", Json::Num(self.secs)),
            ("products", Json::Num(self.products as f64)),
            ("worker_busy_secs", Json::Num(self.worker_busy_secs)),
            ("worker_steals", Json::Num(self.worker_steals as f64)),
            ("park_count", Json::Num(self.park_count as f64)),
            ("spin_secs", Json::Num(self.spin_secs)),
            ("serial", Json::Bool(self.serial)),
            ("fetch_stall_secs", Json::Num(self.fetch_stall_secs)),
            ("disk_bytes_read", Json::Num(self.disk_bytes_read as f64)),
            (
                "disk_bytes_written",
                Json::Num(self.disk_bytes_written as f64),
            ),
        ])
    }
}

/// One disk-mode fetch-path measurement: the same disk-backed search at
/// one worker count, with parent fetches either funneled through worker 0
/// (`mode: "funnel"`, the legacy baseline) or issued concurrently by every
/// worker against the shared segment store (`mode: "direct"`). `n`,
/// `products`, and all four disk I/O columns must be identical down every
/// column — the fetch path may only move wall time.
#[derive(Debug)]
pub struct DiskScalingRow {
    /// Fetch path label, `funnel` or `direct`.
    pub mode: String,
    /// Worker threads configured for the search.
    pub threads: usize,
    /// CPU cores available on the machine that ran the row.
    pub cores: usize,
    /// Dependencies found (invariant).
    pub n: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Time the product stage spent waiting on partition fetches — the
    /// funnel's serialization shows up here.
    pub fetch_stall_secs: f64,
    /// Partition products computed (invariant).
    pub products: usize,
    /// Cold partition fetches served from segment files (invariant: phase
    /// pinning makes the per-level cold set independent of thread count
    /// and fetch path).
    pub disk_reads: u64,
    /// Partitions written to segment files (invariant).
    pub disk_writes: u64,
    /// Bytes read back from spilled partitions (invariant).
    pub disk_bytes_read: u64,
    /// Bytes spilled to disk (invariant).
    pub disk_bytes_written: u64,
    /// Partitions evicted from the resident cache.
    pub store_evictions: u64,
    /// Fetches pinned resident by a level's read phase.
    pub store_pins: u64,
}

impl DiskScalingRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::Str(self.mode.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("cores", Json::Num(self.cores as f64)),
            ("n", Json::Num(self.n as f64)),
            ("secs", Json::Num(self.secs)),
            ("fetch_stall_secs", Json::Num(self.fetch_stall_secs)),
            ("products", Json::Num(self.products as f64)),
            ("disk_reads", Json::Num(self.disk_reads as f64)),
            ("disk_writes", Json::Num(self.disk_writes as f64)),
            ("disk_bytes_read", Json::Num(self.disk_bytes_read as f64)),
            (
                "disk_bytes_written",
                Json::Num(self.disk_bytes_written as f64),
            ),
            ("store_evictions", Json::Num(self.store_evictions as f64)),
            ("store_pins", Json::Num(self.store_pins as f64)),
        ])
    }
}

/// One top-k ranked-search measurement: the ranked walk on one dataset at
/// one heap bound. `k = None` is the unbounded baseline — the same walk
/// with a heap that never fills, so the bound and the early exit cannot
/// fire and the pruning columns read zero.
#[derive(Debug)]
pub struct TopKRow {
    /// Dataset label.
    pub dataset: String,
    /// Row count.
    pub rows: usize,
    /// Attribute count.
    pub attrs: usize,
    /// Heap bound, `None` for the unbounded baseline.
    pub k: Option<usize>,
    /// Entries actually held at the end (≤ k, ≤ the pool size).
    pub heap_len: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Validity tests decided.
    pub validity_tests: usize,
    /// Exact `g3` computations paid for (tests the bound could not skip).
    pub g3_exact: usize,
    /// Candidates skipped because their `g3` lower bound could not beat
    /// the k-th best.
    pub bound_pruned: u64,
    /// Candidates skipped because a recorded generalization already scored
    /// no worse.
    pub dominated: u64,
    /// Level after which the walk stopped early, if it did.
    pub early_exit_level: Option<usize>,
}

impl TopKRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dataset", Json::Str(self.dataset.clone())),
            ("rows", Json::Num(self.rows as f64)),
            ("attrs", Json::Num(self.attrs as f64)),
            ("k", self.k.map_or(Json::Null, |k| Json::Num(k as f64))),
            ("heap_len", Json::Num(self.heap_len as f64)),
            ("secs", Json::Num(self.secs)),
            ("validity_tests", Json::Num(self.validity_tests as f64)),
            ("g3_exact", Json::Num(self.g3_exact as f64)),
            ("bound_pruned", Json::Num(self.bound_pruned as f64)),
            ("dominated", Json::Num(self.dominated as f64)),
            (
                "early_exit_level",
                self.early_exit_level
                    .map_or(Json::Null, |l| Json::Num(l as f64)),
            ),
        ])
    }
}

/// Everything the harness produced in one invocation.
#[derive(Debug, Default)]
pub struct Report {
    /// Table 1 rows, if run.
    pub table1: Vec<Table1Row>,
    /// Table 2 rows, if run.
    pub table2: Vec<Table2Row>,
    /// Table 3 rows, if run.
    pub table3: Vec<Table3Row>,
    /// Figure 3 series per dataset, if run.
    pub figure3: Vec<(String, Vec<Figure3Point>)>,
    /// Figure 4 points, if run.
    pub figure4: Vec<Figure4Point>,
    /// Ablation rows, if run.
    pub ablations: Vec<AblationRow>,
    /// Thread-scaling rows, if run.
    pub scaling: Vec<ScalingRow>,
    /// Disk-mode funnel-vs-direct rows, if run.
    pub disk_scaling: Vec<DiskScalingRow>,
    /// Top-k ranked-search rows, if run.
    pub topk: Vec<TopKRow>,
}

impl Report {
    /// The whole report as a JSON document (the `--json` output).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "table1",
                Json::Arr(self.table1.iter().map(Table1Row::to_json).collect()),
            ),
            (
                "table2",
                Json::Arr(self.table2.iter().map(Table2Row::to_json).collect()),
            ),
            (
                "table3",
                Json::Arr(self.table3.iter().map(Table3Row::to_json).collect()),
            ),
            (
                "figure3",
                Json::Arr(
                    self.figure3
                        .iter()
                        .map(|(name, points)| {
                            Json::Arr(vec![
                                Json::Str(name.clone()),
                                Json::Arr(points.iter().map(Figure3Point::to_json).collect()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "figure4",
                Json::Arr(self.figure4.iter().map(Figure4Point::to_json).collect()),
            ),
            (
                "ablations",
                Json::Arr(self.ablations.iter().map(AblationRow::to_json).collect()),
            ),
            (
                "scaling",
                Json::Arr(self.scaling.iter().map(ScalingRow::to_json).collect()),
            ),
            (
                "disk_scaling",
                Json::Arr(
                    self.disk_scaling
                        .iter()
                        .map(DiskScalingRow::to_json)
                        .collect(),
                ),
            ),
            (
                "topk",
                Json::Arr(self.topk.iter().map(TopKRow::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_parseable_json() {
        let report = Report {
            table1: vec![Table1Row {
                dataset: "wbc".into(),
                rows: 699,
                attrs: 11,
                n: 48,
                tane: Some(Cell::new(48, 0.5)),
                tane_mem: Some(Cell::new(48, 0.25)),
                fdep: None,
            }],
            table2: vec![Table2Row {
                dataset: "wbc".into(),
                cells: vec![(0.01, Cell::new(60, 0.1))],
            }],
            scaling: vec![ScalingRow {
                storage: "disk".into(),
                threads: 2,
                cores: 8,
                n: 48,
                secs: 0.75,
                products: 1925,
                worker_busy_secs: 1.2,
                worker_steals: 7,
                park_count: 3,
                spin_secs: 0.01,
                serial: false,
                fetch_stall_secs: 0.1,
                disk_bytes_read: 4096,
                disk_bytes_written: 8192,
            }],
            figure4: vec![Figure4Point {
                copies: 2,
                rows: 1398,
                tane: Some(1.0),
                tane_mem: Some(0.5),
                fdep: None,
            }],
            disk_scaling: vec![DiskScalingRow {
                mode: "direct".into(),
                threads: 8,
                cores: 8,
                n: 48,
                secs: 0.4,
                fetch_stall_secs: 0.05,
                products: 1925,
                disk_reads: 300,
                disk_writes: 410,
                disk_bytes_read: 4096,
                disk_bytes_written: 8192,
                store_evictions: 120,
                store_pins: 300,
            }],
            topk: vec![TopKRow {
                dataset: "wbc".into(),
                rows: 699,
                attrs: 11,
                k: Some(5),
                heap_len: 5,
                secs: 0.2,
                validity_tests: 1200,
                g3_exact: 40,
                bound_pruned: 900,
                dominated: 30,
                early_exit_level: Some(7),
            }],
            ..Report::default()
        };
        let text = report.to_json().render_pretty();
        let parsed = Json::parse(&text).expect("report emits valid JSON");
        let t1 = parsed.get("table1").unwrap().as_array().unwrap();
        assert_eq!(t1[0].get("dataset").unwrap().as_str(), Some("wbc"));
        assert_eq!(t1[0].get("n").unwrap().as_usize(), Some(48));
        assert!(t1[0].get("fdep").unwrap().is_null());
        assert_eq!(
            t1[0].get("tane").unwrap().get("secs").unwrap().as_f64(),
            Some(0.5)
        );
        assert!(parsed
            .get("ablations")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        let scaling = parsed.get("scaling").unwrap().as_array().unwrap();
        assert_eq!(scaling[0].get("storage").unwrap().as_str(), Some("disk"));
        assert_eq!(scaling[0].get("threads").unwrap().as_usize(), Some(2));
        assert_eq!(scaling[0].get("worker_steals").unwrap().as_usize(), Some(7));
        assert_eq!(scaling[0].get("park_count").unwrap().as_usize(), Some(3));
        assert_eq!(scaling[0].get("serial").unwrap().as_bool(), Some(false));
        assert_eq!(
            scaling[0].get("disk_bytes_written").unwrap().as_usize(),
            Some(8192)
        );
        let disk = parsed.get("disk_scaling").unwrap().as_array().unwrap();
        assert_eq!(disk[0].get("mode").unwrap().as_str(), Some("direct"));
        assert_eq!(disk[0].get("disk_reads").unwrap().as_usize(), Some(300));
        assert_eq!(disk[0].get("store_pins").unwrap().as_usize(), Some(300));
        let topk = parsed.get("topk").unwrap().as_array().unwrap();
        assert_eq!(topk[0].get("k").unwrap().as_usize(), Some(5));
        assert_eq!(topk[0].get("bound_pruned").unwrap().as_usize(), Some(900));
        assert_eq!(topk[0].get("early_exit_level").unwrap().as_usize(), Some(7));
    }
}
