//! Table 1: "Performance of the algorithms on real life databases" —
//! TANE (disk), TANE/MEM and FDEP wall-clock on the eight datasets.

use crate::report::Table1Row;
use crate::runners::{
    fmt_time, format_row, run_fdep, run_tane_disk, run_tane_mem, FDEP_PAIR_CAP_FAST,
    FDEP_PAIR_CAP_FULL,
};
use crate::Scale;
use tane_datasets as ds;
use tane_relation::Relation;

fn dataset_grid(scale: Scale) -> Vec<(String, Relation)> {
    let mut grid: Vec<(String, Relation)> = vec![
        ("Lymphography".into(), ds::lymphography()),
        ("Hepatitis".into(), ds::hepatitis()),
        (
            "Wisconsin breast cancer".into(),
            ds::wisconsin_breast_cancer(),
        ),
    ];
    match scale {
        Scale::Fast => {
            grid.push(("Wisconsin breast cancer x8".into(), ds::scaled_wbc(8)));
            grid.push(("Chess".into(), ds::chess_krk()));
        }
        Scale::Full => {
            for n in [64usize, 128, 512] {
                grid.push((format!("Wisconsin breast cancer x{n}"), ds::scaled_wbc(n)));
            }
            grid.push(("Adult".into(), ds::adult()));
            grid.push(("Chess".into(), ds::chess_krk()));
        }
    }
    grid
}

/// Runs and prints Table 1; returns the structured rows.
pub fn run(scale: Scale) -> Vec<Table1Row> {
    let pair_cap = match scale {
        Scale::Fast => FDEP_PAIR_CAP_FAST,
        Scale::Full => FDEP_PAIR_CAP_FULL,
    };
    let widths = [34usize, 8, 4, 6, 9, 9, 9];
    println!("Table 1: performance on the (synthetic stand-in) datasets, times in seconds");
    println!(
        "{}",
        format_row(
            &widths,
            &["Name", "|r|", "|R|", "N", "TANE", "TANE/MEM", "Fdep"].map(String::from)
        )
    );
    let mut rows = Vec::new();
    for (name, relation) in dataset_grid(scale) {
        let tane = run_tane_disk(&relation);
        let tane_mem = run_tane_mem(&relation);
        let fdep = run_fdep(&relation, pair_cap);
        println!(
            "{}",
            format_row(
                &widths,
                &[
                    name.clone(),
                    relation.num_rows().to_string(),
                    relation.num_attrs().to_string(),
                    tane.n.to_string(),
                    fmt_time(Some(tane)),
                    fmt_time(Some(tane_mem)),
                    fmt_time(fdep),
                ]
            )
        );
        assert_eq!(tane.n, tane_mem.n, "storage backends disagree on {name}");
        if let Some(f) = fdep {
            assert_eq!(f.n, tane.n, "FDEP disagrees with TANE on {name}");
        }
        rows.push(Table1Row {
            dataset: name,
            rows: relation.num_rows(),
            attrs: relation.num_attrs(),
            n: tane.n,
            tane: Some(tane),
            tane_mem: Some(tane_mem),
            fdep,
        });
    }
    println!("(* = infeasible at this scale, as in the paper)");
    println!();
    rows
}
