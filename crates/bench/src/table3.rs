//! Table 3: "Previously reported performance results and new results" —
//! our TANE and FDEP columns measured, the literature numbers (Bell &
//! Brockhausen, Bitton et al., Schlimmer) echoed verbatim from the paper
//! with a dagger, exactly as the paper itself did (those cells were cited
//! there, not re-run).

use crate::report::Table3Row;
use crate::runners::{
    fmt_time, format_row, run_fdep, run_tane_mem_limited, FDEP_PAIR_CAP_FAST, FDEP_PAIR_CAP_FULL,
};
use crate::Scale;
use tane_datasets as ds;

/// Runs and prints Table 3; returns the structured rows.
pub fn run(scale: Scale) -> Vec<Table3Row> {
    let pair_cap = match scale {
        Scale::Fast => FDEP_PAIR_CAP_FAST,
        Scale::Full => FDEP_PAIR_CAP_FULL,
    };
    println!("Table 3: previously reported results (†, cited from the paper) and our new results");
    let widths = [26usize, 8, 4, 4, 6, 10, 10, 9, 11, 9];
    println!(
        "{}",
        format_row(
            &widths,
            &[
                "Name",
                "|r|",
                "|R|",
                "|X|",
                "N",
                "Bell[1]",
                "Bitton[2]",
                "Fdep",
                "Schlimmer",
                "TANE"
            ]
            .map(String::from)
        )
    );

    let mut rows = Vec::new();
    let dash = "-".to_string();

    // Literature-only rows: datasets the paper cites but which were never
    // publicly available ("many of the databases used in previous articles
    // are not publicly available").
    for (name, r, attrs, x, n, cited) in [
        (
            "Lymphography*",
            150usize,
            19usize,
            7usize,
            641usize,
            vec![
                ("Bell[1]".to_string(), 118800.0),
                ("Fdep".to_string(), 540.0),
            ],
        ),
        ("Rel1", 7, 7, 7, 8, vec![("Bitton[2]".to_string(), 0.02)]),
        (
            "Rel6",
            236,
            60,
            60,
            56,
            vec![("Bitton[2]".to_string(), 994.0)],
        ),
        (
            "Books",
            9931,
            9,
            9,
            25,
            vec![("Bell[1]".to_string(), 17040.0)],
        ),
    ] {
        let lookup = |col: &str| -> String {
            cited
                .iter()
                .find(|(c, _)| c == col)
                .map(|(_, s)| format!("{s}†"))
                .unwrap_or_else(|| dash.clone())
        };
        println!(
            "{}",
            format_row(
                &widths,
                &[
                    name.to_string(),
                    r.to_string(),
                    attrs.to_string(),
                    x.to_string(),
                    n.to_string(),
                    lookup("Bell[1]"),
                    lookup("Bitton[2]"),
                    lookup("Fdep"),
                    lookup("Schlimmer"),
                    dash.clone(),
                ]
            )
        );
        rows.push(Table3Row {
            dataset: name.to_string(),
            rows: r,
            attrs,
            max_lhs: x,
            cited,
            fdep: None,
            tane: None,
        });
    }

    // Measured rows: our datasets, our TANE + FDEP, paper's cited numbers
    // for the other algorithms where the paper reports them.
    type MeasuredRow = (String, tane_relation::Relation, usize, Vec<(String, f64)>);
    let lym = ds::lymphography();
    let wbc = ds::wisconsin_breast_cancer();
    let mut measured: Vec<MeasuredRow> = vec![
        ("Lymphography".into(), lym.clone(), lym.num_attrs(), vec![]),
        (
            "W. breast cancer".into(),
            wbc.clone(),
            4,
            vec![
                ("Bell[1]".to_string(), 259.0),
                ("Schlimmer".to_string(), 4440.0),
            ],
        ),
        (
            "W. breast cancer".into(),
            wbc.clone(),
            wbc.num_attrs(),
            vec![("Bell[1]".to_string(), 533.0)],
        ),
    ];
    if scale == Scale::Full {
        let big = ds::scaled_wbc(128);
        let attrs = big.num_attrs();
        measured.push(("W. breast cancer x128".into(), big, attrs, vec![]));
    }
    for (name, relation, max_lhs, cited) in measured {
        let tane = run_tane_mem_limited(&relation, max_lhs);
        let fdep = run_fdep(&relation, pair_cap);
        let lookup = |col: &str| -> String {
            cited
                .iter()
                .find(|(c, _)| c == col)
                .map(|(_, s)| format!("{s}†"))
                .unwrap_or_else(|| dash.clone())
        };
        println!(
            "{}",
            format_row(
                &widths,
                &[
                    name.clone(),
                    relation.num_rows().to_string(),
                    relation.num_attrs().to_string(),
                    max_lhs.to_string(),
                    tane.n.to_string(),
                    lookup("Bell[1]"),
                    lookup("Bitton[2]"),
                    fmt_time(fdep),
                    lookup("Schlimmer"),
                    fmt_time(Some(tane)),
                ]
            )
        );
        rows.push(Table3Row {
            dataset: name,
            rows: relation.num_rows(),
            attrs: relation.num_attrs(),
            max_lhs,
            cited,
            fdep,
            tane: Some(tane),
        });
    }
    println!("(† = numbers published in earlier articles, copied verbatim from the paper; - = not available)");
    println!();
    rows
}
