//! Ablation experiments (beyond the paper's tables): how much does each of
//! TANE's ingredients buy? The paper's Sections 4–6 credit its speed to
//! (a) the rhs⁺ candidate pruning, (b) key pruning, (c) computing partitions
//! by products rather than re-grouping, and (d) the quick g3 bounds for the
//! approximate variant. Each row removes one ingredient; the dependency set
//! must be unchanged — only the work changes.

use crate::report::AblationRow;
use crate::runners::format_row;
use crate::Scale;
use tane_core::{discover_approx_fds, discover_fds, ApproxTaneConfig, TaneConfig};
use tane_datasets as ds;
use tane_relation::Relation;
use tane_util::Stopwatch;

fn measure(name: &str, dataset: &str, relation: &Relation, config: &TaneConfig) -> AblationRow {
    let sw = Stopwatch::start();
    let result = discover_fds(relation, config).expect("memory store cannot fail");
    AblationRow {
        dataset: dataset.to_string(),
        variant: name.to_string(),
        n: result.fds.len(),
        secs: sw.elapsed_secs(),
        sets_total: result.stats.sets_total,
        validity_tests: result.stats.validity_tests,
    }
}

/// Runs and prints the ablation grid; returns the structured rows.
pub fn run(scale: Scale) -> Vec<AblationRow> {
    println!("Ablations: each row disables one TANE ingredient (output must be identical)");
    let widths = [22usize, 24, 7, 9, 10, 12];
    println!(
        "{}",
        format_row(
            &widths,
            &[
                "Dataset",
                "Variant",
                "N",
                "Time(s)",
                "Sets (s)",
                "Tests (v)"
            ]
            .map(String::from)
        )
    );

    let mut datasets: Vec<(&str, Relation)> = vec![("wbc", ds::wisconsin_breast_cancer())];
    if scale == Scale::Full {
        datasets.push(("hepatitis", ds::hepatitis()));
        datasets.push(("chess", ds::chess_krk()));
    }

    let mut rows = Vec::new();
    for (name, relation) in &datasets {
        let full = TaneConfig::default();
        let variants: Vec<(&str, TaneConfig)> = vec![
            ("full TANE", full.clone()),
            (
                "no rhs+ pruning",
                TaneConfig {
                    rhs_plus_pruning: false,
                    ..full.clone()
                },
            ),
            (
                "no key pruning",
                TaneConfig {
                    key_pruning: false,
                    ..full.clone()
                },
            ),
            (
                "no pruning at all",
                TaneConfig {
                    rhs_plus_pruning: false,
                    key_pruning: false,
                    ..full.clone()
                },
            ),
        ];
        let mut reference_n = None;
        for (variant, config) in variants {
            let row = measure(variant, name, relation, &config);
            match reference_n {
                None => reference_n = Some(row.n),
                Some(n) => assert_eq!(n, row.n, "{name}/{variant} changed the output"),
            }
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        row.dataset.clone(),
                        row.variant.clone(),
                        row.n.to_string(),
                        format!("{:.3}", row.secs),
                        row.sets_total.to_string(),
                        row.validity_tests.to_string(),
                    ]
                )
            );
            rows.push(row);
        }

        // Naive levelwise baseline (no partitions at all): grouping-based
        // validity like Bell & Brockhausen / Schlimmer.
        let sw = Stopwatch::start();
        let (fds, stats) = tane_baselines::naive_levelwise_fds(relation, relation.num_attrs());
        let row = AblationRow {
            dataset: name.to_string(),
            variant: "naive levelwise (no partitions)".to_string(),
            n: fds.len(),
            secs: sw.elapsed_secs(),
            sets_total: stats.sets_visited,
            validity_tests: stats.validity_tests,
        };
        assert_eq!(Some(row.n), reference_n, "{name}/naive changed the output");
        println!(
            "{}",
            format_row(
                &widths,
                &[
                    row.dataset.clone(),
                    row.variant.clone(),
                    row.n.to_string(),
                    format!("{:.3}", row.secs),
                    row.sets_total.to_string(),
                    row.validity_tests.to_string(),
                ]
            )
        );
        rows.push(row);
    }

    // Approximate-mode ablation: the quick g3 bounds.
    println!();
    println!("Approximate-mode ablation (eps = 0.05): quick g3 bounds on/off");
    for (name, relation) in &datasets {
        for (variant, use_bounds) in [("with g3 bounds", true), ("without g3 bounds", false)] {
            let config = ApproxTaneConfig {
                use_g3_bounds: use_bounds,
                ..ApproxTaneConfig::new(0.05)
            };
            let sw = Stopwatch::start();
            let result = discover_approx_fds(relation, &config).expect("memory store cannot fail");
            let row = AblationRow {
                dataset: name.to_string(),
                variant: variant.to_string(),
                n: result.fds.len(),
                secs: sw.elapsed_secs(),
                sets_total: result.stats.sets_total,
                validity_tests: result.stats.validity_tests,
            };
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        row.dataset.clone(),
                        format!(
                            "{variant} (exact g3: {})",
                            result.stats.g3_exact_computations
                        ),
                        row.n.to_string(),
                        format!("{:.3}", row.secs),
                        row.sets_total.to_string(),
                        row.validity_tests.to_string(),
                    ]
                )
            );
            rows.push(row);
        }
    }

    // Sound vs paper-faithful approximate algorithm: the aggressive rhs⁺
    // heuristic reproduces the paper's collapse at large ε, at the cost of
    // completeness (see ApproxTaneConfig::aggressive_rhs_plus).
    println!();
    println!("Approximate-mode ablation: sound algorithm vs paper-faithful rhs+ heuristic");
    for (name, relation) in &datasets {
        for eps in [0.05f64, 0.25] {
            for (variant, config) in [
                (format!("sound (eps={eps})"), ApproxTaneConfig::new(eps)),
                (
                    format!("paper-faithful (eps={eps})"),
                    ApproxTaneConfig::paper_faithful(eps),
                ),
            ] {
                let sw = Stopwatch::start();
                let result =
                    discover_approx_fds(relation, &config).expect("memory store cannot fail");
                let row = AblationRow {
                    dataset: name.to_string(),
                    variant: variant.clone(),
                    n: result.fds.len(),
                    secs: sw.elapsed_secs(),
                    sets_total: result.stats.sets_total,
                    validity_tests: result.stats.validity_tests,
                };
                println!(
                    "{}",
                    format_row(
                        &widths,
                        &[
                            row.dataset.clone(),
                            row.variant.clone(),
                            row.n.to_string(),
                            format!("{:.3}", row.secs),
                            row.sets_total.to_string(),
                            row.validity_tests.to_string(),
                        ]
                    )
                );
                rows.push(row);
            }
        }
    }
    println!();
    rows
}
