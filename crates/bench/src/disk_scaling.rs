//! Disk-mode fetch-path experiment (beyond the paper): the same
//! disk-backed search at 1, 2, 4, and 8 workers, with parent fetches
//! routed two ways — through the legacy worker-0 **funnel** (one worker
//! streams every parent pair through a bounded channel) and **direct**
//! (every worker reads the shared segment store concurrently, the
//! DESIGN §13 engine). Two claims are under test:
//!
//! 1. The answer and the I/O are identical down every column — `n`,
//!    `products`, disk reads/writes and bytes are a pure function of the
//!    search, not of the fetch path or the worker count (checked
//!    unconditionally, on any machine).
//! 2. Once real parallelism is available, direct fetches beat the funnel
//!    on wall time, because the funnel serializes all segment reads
//!    behind one thread ([`assert_direct_beats_funnel`], gated like the
//!    memory scaling assertion on machines with at least 4 cores).

use crate::report::DiskScalingRow;
use crate::runners::format_row;
use crate::scaling::{workload, SCALING_CACHE_BYTES};
use crate::Scale;
use tane_core::{discover_fds, Storage, TaneConfig};
use tane_util::Stopwatch;

/// Worker counts of the grid (same as the memory scaling experiment).
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs and prints the funnel-vs-direct grid; returns the structured rows.
pub fn run(scale: Scale) -> Vec<DiskScalingRow> {
    let relation = workload(scale);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Disk fetch paths: {} rows x {} attributes, max LHS 3, {} MiB cache, workers {:?}, {} core(s)",
        relation.num_rows(),
        relation.num_attrs(),
        SCALING_CACHE_BYTES >> 20,
        THREADS,
        cores
    );
    let widths = [7usize, 7, 6, 9, 9, 8, 8, 12, 12, 9, 6];
    println!(
        "{}",
        format_row(
            &widths,
            &[
                "Mode", "Threads", "N", "Time(s)", "Stall(s)", "Reads", "Writes", "Read(B)",
                "Write(B)", "Evicts", "Pins"
            ]
            .map(String::from)
        )
    );

    let mut rows = Vec::new();
    let mut reference: Option<(usize, usize, u64, u64, u64, u64)> = None;
    for mode in ["funnel", "direct"] {
        for &threads in &THREADS {
            let mut config = TaneConfig {
                storage: Storage::Disk {
                    cache_bytes: SCALING_CACHE_BYTES,
                },
                threads,
                ..TaneConfig::default()
            }
            .with_max_lhs(3);
            if mode == "funnel" {
                config = config.with_fetch_funnel();
            }
            let sw = Stopwatch::start();
            let result = discover_fds(&relation, &config).expect("disk-scaling run failed");
            let secs = sw.elapsed_secs();
            let s = &result.stats;
            let row = DiskScalingRow {
                mode: mode.to_string(),
                threads,
                cores,
                n: result.fds.len(),
                secs,
                fetch_stall_secs: s.fetch_stall.as_secs_f64(),
                products: s.products,
                disk_reads: s.disk_reads,
                disk_writes: s.disk_writes,
                disk_bytes_read: s.disk_bytes_read,
                disk_bytes_written: s.disk_bytes_written,
                store_evictions: s.store_evictions,
                store_pins: s.store_pins,
            };
            // The determinism contract, checked on every machine: neither
            // the fetch path nor the worker count may change the answer or
            // the I/O the search performs.
            let cols = (
                row.n,
                row.products,
                row.disk_reads,
                row.disk_writes,
                row.disk_bytes_read,
                row.disk_bytes_written,
            );
            match reference {
                None => reference = Some(cols),
                Some(r) => assert_eq!(
                    r, cols,
                    "{mode}/threads={threads} changed the output or the I/O"
                ),
            }
            println!(
                "{}",
                format_row(
                    &widths,
                    &[
                        row.mode.clone(),
                        row.threads.to_string(),
                        row.n.to_string(),
                        format!("{:.3}", row.secs),
                        format!("{:.3}", row.fetch_stall_secs),
                        row.disk_reads.to_string(),
                        row.disk_writes.to_string(),
                        row.disk_bytes_read.to_string(),
                        row.disk_bytes_written.to_string(),
                        row.store_evictions.to_string(),
                        row.store_pins.to_string(),
                    ]
                )
            );
            rows.push(row);
        }
    }
    println!();
    rows
}

/// `--assert-scaling` for the disk grid: at 8 workers, direct concurrent
/// fetches must finish before the worker-0 funnel. Like the memory gate,
/// the comparison only means something with real parallelism, so it skips
/// loudly below 4 cores.
pub fn assert_direct_beats_funnel(rows: &[DiskScalingRow]) -> Result<(), String> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!(
            "assert-disk-scaling: SKIPPED — only {cores} core(s) available; \
             the funnel-vs-direct wall-time comparison needs at least 4"
        );
        return Ok(());
    }
    let wall = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode && r.threads == 8)
            .map(|r| r.secs)
            .ok_or_else(|| format!("assert-disk-scaling: no {mode} row at 8 threads"))
    };
    let (funnel, direct) = (wall("funnel")?, wall("direct")?);
    if direct >= funnel {
        return Err(format!(
            "assert-disk-scaling: FAILED — direct fetches at 8 threads \
             ({direct:.3}s) are not below the funnel ({funnel:.3}s); \
             concurrent segment reads are not paying off"
        ));
    }
    eprintln!("assert-disk-scaling: ok — direct 8-thread {direct:.3}s < funnel {funnel:.3}s");
    Ok(())
}
