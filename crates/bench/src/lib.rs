#![forbid(unsafe_code)]
//! Benchmark harness regenerating the paper's tables and figures.
//!
//! Every experiment of Section 7 has a runner here; the `repro` binary
//! dispatches to them:
//!
//! | paper artifact | function | regenerates |
//! |---|---|---|
//! | Table 1  | [`table1::run`]  | TANE vs TANE/MEM vs FDEP wall-clock on the eight datasets |
//! | Table 2  | [`table2::run`]  | approximate discovery: N and time across ε |
//! | Table 3  | [`table3::run`]  | cross-paper comparison incl. LHS-size limits (cited numbers echoed verbatim with †) |
//! | Figure 3 | [`figure3::run`] | N_ε/N_0 and Time_ε/Time_0 series per dataset |
//! | Figure 4 | [`figure4::run`] | time vs rows on wbc×n for all three algorithms |
//! | —        | [`ablations::run`] | (beyond paper) pruning/optimization ablations |
//! | —        | [`scaling::run`] | (beyond paper) thread scaling of the parallel runtime |
//! | —        | [`disk_scaling::run`] | (beyond paper) disk-mode funnel vs direct concurrent fetches |
//! | —        | [`topk::run`] | (beyond paper) bounded-heap ranked search vs the unbounded walk |
//!
//! Runners print aligned text tables to stdout and return structured
//! [`report`] values that `--json` serializes for EXPERIMENTS.md updates.

pub mod ablations;
pub mod disk_scaling;
pub mod figure3;
pub mod figure4;
pub mod report;
pub mod runners;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod topk;

/// Scale knob: `Fast` trims the most expensive cells (wbc×512, adult,
/// quadratic FDEP runs) so the whole suite finishes in well under a minute;
/// `Full` reproduces everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Trimmed sizes for CI and quick iteration.
    Fast,
    /// The paper's full experiment grid.
    Full,
}
