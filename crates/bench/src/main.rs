#![forbid(unsafe_code)]
//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                # every experiment at full scale
//! repro table1 --fast      # one experiment, trimmed sizes
//! repro figure4 --json out.json
//! ```

use std::process::ExitCode;
use tane_bench::{
    ablations, disk_scaling, figure3, figure4, report::Report, scaling, table1, table2, table3,
    topk, Scale,
};

const USAGE: &str = "\
repro — regenerate the TANE paper's tables and figures on synthetic stand-ins

USAGE:
    repro <EXPERIMENT> [--fast] [--json FILE] [--assert-scaling]

EXPERIMENTS:
    table1      TANE vs TANE/MEM vs FDEP on the eight datasets
    table2      approximate discovery across epsilon
    table3      cross-paper comparison with LHS-size limits
    figure3     N and time relative to exact, as epsilon grows
    figure4     scale-up in the number of rows (wbc x n)
    ablations   effect of each pruning rule / optimization (beyond paper)
    scaling     thread scaling of the parallel search runtime (beyond paper)
    disk-scaling disk-mode parent fetches: worker-0 funnel vs direct
                concurrent segment reads (beyond paper)
    topk        bounded-heap ranked search vs the unbounded walk (beyond paper)
    all         everything above except scaling, disk-scaling, and topk

OPTIONS:
    --fast            trimmed dataset sizes (seconds instead of minutes)
    --json F          also write the structured results to F
    --assert-scaling  (scaling) fail unless 4-thread wall time beats
                      2-thread on the memory backend; (disk-scaling) fail
                      unless direct 8-thread wall time beats the funnel;
                      both skipped loudly on machines with fewer than
                      4 cores
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--fast") {
        Scale::Fast
    } else {
        Scale::Full
    };
    let json_index = args.iter().position(|a| a == "--json");
    let json_path = json_index.and_then(|i| args.get(i + 1)).cloned();
    let experiment = match args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && json_index.is_none_or(|j| *i != j + 1))
        .map(|(_, a)| a.clone())
    {
        Some(e) => e,
        None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
    };

    let mut report = Report::default();
    match experiment.as_str() {
        "table1" => report.table1 = table1::run(scale),
        "table2" => report.table2 = table2::run(scale),
        "table3" => report.table3 = table3::run(scale),
        "figure3" => report.figure3 = figure3::run(scale),
        "figure4" => report.figure4 = figure4::run(scale),
        "ablations" => report.ablations = ablations::run(scale),
        "topk" => report.topk = topk::run(scale),
        "scaling" => {
            report.scaling = scaling::run(scale);
            if args.iter().any(|a| a == "--assert-scaling") {
                if let Err(msg) = scaling::assert_scaling(&report.scaling) {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "disk-scaling" => {
            report.disk_scaling = disk_scaling::run(scale);
            if args.iter().any(|a| a == "--assert-scaling") {
                if let Err(msg) = disk_scaling::assert_direct_beats_funnel(&report.disk_scaling) {
                    eprintln!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "all" => {
            report.table1 = table1::run(scale);
            report.table2 = table2::run(scale);
            report.table3 = table3::run(scale);
            report.figure3 = figure3::run(scale);
            report.figure4 = figure4::run(scale);
            report.ablations = ablations::run(scale);
        }
        other => {
            eprintln!("unknown experiment `{other}`\n");
            print!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = json_path {
        let json = report.to_json().render_pretty();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("structured results written to {path}");
    }
    ExitCode::SUCCESS
}
