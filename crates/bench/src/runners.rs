//! Shared algorithm runners with the measurement conventions of the paper:
//! wall-clock seconds ("real times elapsed … as reported by Unix time",
//! Section 7), one run per cell.

use tane_core::{
    discover_approx_fds, discover_fds, ApproxTaneConfig, Storage, TaneConfig, TaneResult,
};
use tane_relation::Relation;
use tane_util::{Json, Stopwatch};

/// Disk-variant cache budget: 64 MiB — the paper's machine had 64 MB of
/// RAM against ~235 MB of partition data on the largest run, so this keeps
/// the same proportions: the small clinical datasets still spill (their
/// lattices hold hundreds of MB of partitions), and wbc×512's ~1.4 GB of
/// level partitions exceed the cache by ~20×, exactly the regime the
/// paper's scalable variant was built for.
pub const DISK_CACHE_BYTES: usize = 64 << 20;

/// FDEP pair-comparison cap for `Scale::Full`: ~2·10⁹ pairs ≈ a few minutes.
/// Beyond that a cell is reported as infeasible — the paper likewise marks
/// FDEP cells `*` when they exceeded 5 hours on its hardware.
pub const FDEP_PAIR_CAP_FULL: usize = 2_000_000_000;

/// FDEP cap for `Scale::Fast`.
pub const FDEP_PAIR_CAP_FAST: usize = 100_000_000;

/// One measured cell: dependency count and wall-clock seconds, or `None`
/// when the cell was skipped as infeasible (the paper's `*`).
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Number of dependencies the run produced.
    pub n: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Bytes read back from spilled partitions (0 for memory runs and
    /// algorithms without a partition store).
    pub disk_bytes_read: u64,
    /// Bytes spilled to disk (0 likewise).
    pub disk_bytes_written: u64,
}

impl Cell {
    /// A cell for an algorithm with no partition store (FDEP, memory runs
    /// that never spill).
    pub fn new(n: usize, secs: f64) -> Cell {
        Cell {
            n,
            secs,
            disk_bytes_read: 0,
            disk_bytes_written: 0,
        }
    }

    /// A cell carrying a TANE run's disk traffic alongside the timing.
    pub fn from_result(result: &TaneResult, secs: f64) -> Cell {
        Cell {
            n: result.fds.len(),
            secs,
            disk_bytes_read: result.stats.disk_bytes_read,
            disk_bytes_written: result.stats.disk_bytes_written,
        }
    }

    /// Structured form for the `--json` report.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("n", Json::Num(self.n as f64)),
            ("secs", Json::Num(self.secs)),
            ("disk_bytes_read", Json::Num(self.disk_bytes_read as f64)),
            (
                "disk_bytes_written",
                Json::Num(self.disk_bytes_written as f64),
            ),
        ])
    }
}

/// `cell.to_json()` or JSON `null` for an infeasible cell.
pub fn cell_json(cell: Option<Cell>) -> Json {
    cell.map_or(Json::Null, Cell::to_json)
}

/// Runs TANE with disk-resident partitions (the paper's scalable TANE).
pub fn run_tane_disk(relation: &Relation) -> Cell {
    let config = TaneConfig {
        storage: Storage::Disk {
            cache_bytes: DISK_CACHE_BYTES,
        },
        ..TaneConfig::default()
    };
    let sw = Stopwatch::start();
    let result = discover_fds(relation, &config).expect("disk store failure");
    Cell::from_result(&result, sw.elapsed_secs())
}

/// Runs TANE/MEM (everything in main memory).
pub fn run_tane_mem(relation: &Relation) -> Cell {
    let sw = Stopwatch::start();
    let result = discover_fds(relation, &TaneConfig::default()).expect("memory store cannot fail");
    Cell::from_result(&result, sw.elapsed_secs())
}

/// Runs TANE/MEM with an LHS size limit (Table 3's `|X|` column).
pub fn run_tane_mem_limited(relation: &Relation, max_lhs: usize) -> Cell {
    let config = TaneConfig::default().with_max_lhs(max_lhs);
    let sw = Stopwatch::start();
    let result = discover_fds(relation, &config).expect("memory store cannot fail");
    Cell::from_result(&result, sw.elapsed_secs())
}

/// Runs FDEP unless its quadratic pair scan would exceed `pair_cap`
/// (returns `None` for the paper's `*`).
pub fn run_fdep(relation: &Relation, pair_cap: usize) -> Option<Cell> {
    let n = relation.num_rows();
    let pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    if pairs > pair_cap {
        return None;
    }
    let sw = Stopwatch::start();
    let (fds, _) = tane_fdep::fdep_fds(relation);
    Some(Cell::new(fds.len(), sw.elapsed_secs()))
}

/// Runs approximate TANE/MEM at threshold `epsilon` (sound algorithm).
pub fn run_approx(relation: &Relation, epsilon: f64) -> Cell {
    let config = ApproxTaneConfig::new(epsilon);
    let sw = Stopwatch::start();
    let result = discover_approx_fds(relation, &config).expect("memory store cannot fail");
    Cell::from_result(&result, sw.elapsed_secs())
}

/// Runs approximate TANE/MEM with the paper-faithful aggressive rhs⁺
/// heuristic — the variant whose performance profile matches the paper's
/// Table 2 / Figure 3 (see `ApproxTaneConfig::aggressive_rhs_plus`).
pub fn run_approx_paper(relation: &Relation, epsilon: f64) -> Cell {
    let config = ApproxTaneConfig::paper_faithful(epsilon);
    let sw = Stopwatch::start();
    let result = discover_approx_fds(relation, &config).expect("memory store cannot fail");
    Cell::from_result(&result, sw.elapsed_secs())
}

/// Formats an optional cell's time the way the paper's tables do (`*` for
/// infeasible).
pub fn fmt_time(cell: Option<Cell>) -> String {
    match cell {
        Some(c) => tane_util::timing::format_secs(c.secs),
        None => "*".to_string(),
    }
}

/// Pads/aligns a row of columns for terminal output.
pub fn format_row(widths: &[usize], cells: &[String]) -> String {
    let mut out = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        if i == 0 {
            out.push_str(&format!("{cell:<w$}"));
        } else {
            out.push_str(&format!("  {cell:>w$}"));
        }
    }
    out
}
