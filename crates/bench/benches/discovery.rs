//! Criterion end-to-end discovery benchmarks: TANE vs FDEP vs the naive
//! levelwise baseline, plus the approximate variant — small fixed datasets
//! so `cargo bench` stays fast while still showing the paper's orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tane_core::{discover_approx_fds, discover_fds, ApproxTaneConfig, TaneConfig};
use tane_datasets::{scaled_wbc, wisconsin_breast_cancer};

fn bench_exact_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_wbc");
    group.sample_size(10);
    let r = wisconsin_breast_cancer();
    group.bench_function("tane_mem", |b| {
        b.iter(|| discover_fds(&r, &TaneConfig::default()).unwrap());
    });
    group.bench_function("tane_disk", |b| {
        b.iter(|| discover_fds(&r, &TaneConfig::disk(4 << 20)).unwrap());
    });
    group.bench_function("tane_no_pruning", |b| {
        b.iter(|| discover_fds(&r, &TaneConfig::default().without_pruning()).unwrap());
    });
    group.bench_function("fdep", |b| {
        b.iter(|| tane_fdep::fdep_fds(&r));
    });
    group.bench_function("naive_levelwise", |b| {
        b.iter(|| tane_baselines::naive_levelwise_fds(&r, r.num_attrs()));
    });
    group.finish();
}

fn bench_row_scaling(c: &mut Criterion) {
    // The Figure 4 microcosm: TANE grows linearly with rows, FDEP
    // quadratically.
    let mut group = c.benchmark_group("row_scaling");
    group.sample_size(10);
    for copies in [1usize, 2, 4] {
        let r = scaled_wbc(copies);
        group.throughput(Throughput::Elements(r.num_rows() as u64));
        group.bench_with_input(BenchmarkId::new("tane_mem", r.num_rows()), &r, |b, r| {
            b.iter(|| discover_fds(r, &TaneConfig::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("fdep", r.num_rows()), &r, |b, r| {
            b.iter(|| tane_fdep::fdep_fds(r));
        });
    }
    group.finish();
}

fn bench_approximate(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_wbc");
    group.sample_size(10);
    let r = wisconsin_breast_cancer();
    for eps in [0.01f64, 0.05, 0.25] {
        group.bench_with_input(BenchmarkId::new("with_bounds", eps), &eps, |b, &eps| {
            b.iter(|| discover_approx_fds(&r, &ApproxTaneConfig::new(eps)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("without_bounds", eps), &eps, |b, &eps| {
            let mut config = ApproxTaneConfig::new(eps);
            config.use_g3_bounds = false;
            b.iter(|| discover_approx_fds(&r, &config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_algorithms, bench_row_scaling, bench_approximate);
criterion_main!(benches);
