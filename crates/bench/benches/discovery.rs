//! End-to-end discovery benchmarks: TANE vs FDEP vs the naive levelwise
//! baseline, plus the approximate variant — small fixed datasets so
//! `cargo bench` stays fast while still showing the paper's orderings.
//!
//! Hand-rolled timing harness (criterion is unavailable offline): each
//! benchmark reports the best-of-N wall-clock time per run. Run with
//! `cargo bench --bench discovery`.

use std::hint::black_box;
use std::time::Instant;
use tane_core::{discover_approx_fds, discover_fds, ApproxTaneConfig, TaneConfig};
use tane_datasets::{scaled_wbc, wisconsin_breast_cancer};

/// Best-of-`samples` seconds per call of `f`, after one warmup call.
fn best_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn report(group: &str, name: &str, secs: f64) {
    println!("{group}/{name:<28} {:>12.3} ms", secs * 1e3);
}

fn bench_exact_algorithms() {
    let r = wisconsin_breast_cancer();
    report(
        "exact_wbc",
        "tane_mem",
        best_secs(10, || discover_fds(&r, &TaneConfig::default()).unwrap()),
    );
    report(
        "exact_wbc",
        "tane_disk",
        best_secs(10, || discover_fds(&r, &TaneConfig::disk(4 << 20)).unwrap()),
    );
    report(
        "exact_wbc",
        "tane_no_pruning",
        best_secs(10, || {
            discover_fds(&r, &TaneConfig::default().without_pruning()).unwrap()
        }),
    );
    report(
        "exact_wbc",
        "fdep",
        best_secs(10, || tane_fdep::fdep_fds(&r)),
    );
    report(
        "exact_wbc",
        "naive_levelwise",
        best_secs(10, || {
            tane_baselines::naive_levelwise_fds(&r, r.num_attrs())
        }),
    );
}

fn bench_row_scaling() {
    // The Figure 4 microcosm: TANE grows linearly with rows, FDEP
    // quadratically.
    for copies in [1usize, 2, 4] {
        let r = scaled_wbc(copies);
        let rows = r.num_rows();
        report(
            "row_scaling",
            &format!("tane_mem/{rows}"),
            best_secs(10, || discover_fds(&r, &TaneConfig::default()).unwrap()),
        );
        report(
            "row_scaling",
            &format!("fdep/{rows}"),
            best_secs(10, || tane_fdep::fdep_fds(&r)),
        );
    }
}

fn bench_approximate() {
    let r = wisconsin_breast_cancer();
    for eps in [0.01f64, 0.05, 0.25] {
        report(
            "approx_wbc",
            &format!("with_bounds/{eps}"),
            best_secs(10, || {
                discover_approx_fds(&r, &ApproxTaneConfig::new(eps)).unwrap()
            }),
        );
        let mut config = ApproxTaneConfig::new(eps);
        config.use_g3_bounds = false;
        report(
            "approx_wbc",
            &format!("without_bounds/{eps}"),
            best_secs(10, || discover_approx_fds(&r, &config).unwrap()),
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        println!("discovery bench: skipped under --test");
        return;
    }
    bench_exact_algorithms();
    bench_row_scaling();
    bench_approximate();
}
