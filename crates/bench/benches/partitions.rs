//! Criterion micro-benchmarks of the partition engine — the inner loops the
//! paper's cost model counts: singleton partition construction (O(|r|)),
//! the partition product (O(‖π̂‖)), the exact g3 computation (O(‖π̂‖)), and
//! the O(1) bound check that replaces it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tane_datasets::{scaled_wbc, wisconsin_breast_cancer};
use tane_partition::{
    g3_removed_rows_with_scratch, product_with_scratch, G3Bounds, G3Scratch, ProductScratch,
    StrippedPartition,
};
use tane_util::AttrSet;

fn bench_from_column(c: &mut Criterion) {
    let mut group = c.benchmark_group("from_column");
    for copies in [1usize, 8, 64] {
        let r = scaled_wbc(copies);
        let codes = r.column_codes(1).to_vec();
        group.throughput(Throughput::Elements(codes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(codes.len()), &codes, |b, codes| {
            b.iter(|| StrippedPartition::from_column(codes));
        });
    }
    group.finish();
}

fn bench_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("product");
    for copies in [1usize, 8, 64] {
        let r = scaled_wbc(copies);
        let pa = StrippedPartition::from_column(r.column_codes(1));
        let pb = StrippedPartition::from_column(r.column_codes(2));
        let mut scratch = ProductScratch::new(r.num_rows());
        group.throughput(Throughput::Elements(r.num_rows() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(r.num_rows()), &(), |b, ()| {
            b.iter(|| product_with_scratch(&pa, &pb, &mut scratch));
        });
    }
    group.finish();
}

fn bench_g3(c: &mut Criterion) {
    let mut group = c.benchmark_group("g3");
    let r = wisconsin_breast_cancer();
    let pi_x = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([1, 2]));
    let pi_xa = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([1, 2, 10]));
    let mut scratch = G3Scratch::new(r.num_rows());
    group.bench_function("exact", |b| {
        b.iter(|| g3_removed_rows_with_scratch(&pi_x, &pi_xa, &mut scratch));
    });
    group.bench_function("bounds_only", |b| {
        b.iter(|| G3Bounds::new(&pi_x, &pi_xa).decide(0.05));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_from_column, bench_product, bench_g3
}
criterion_main!(benches);
