//! Micro-benchmarks of the partition engine — the inner loops the paper's
//! cost model counts: singleton partition construction (O(|r|)), the
//! partition product (O(‖π̂‖)), the exact g3 computation (O(‖π̂‖)), and the
//! O(1) bound check that replaces it.
//!
//! Hand-rolled timing harness (criterion is unavailable offline): each
//! benchmark warms up, then reports the best-of-N wall-clock time per
//! iteration. Run with `cargo bench --bench partitions`.

use std::hint::black_box;
use std::time::Instant;
use tane_datasets::{scaled_wbc, wisconsin_breast_cancer};
use tane_partition::{
    g3_removed_rows_with_scratch, product_with_scratch, G3Bounds, G3Scratch, ProductScratch,
    StrippedPartition,
};
use tane_util::AttrSet;

/// Best-of-`samples` seconds per call of `f`, after one warmup call.
/// Each sample runs `f` enough times to cross ~2 ms so short loops are
/// measured above timer resolution.
fn best_secs<R>(samples: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let mut iters = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        if t.elapsed().as_secs_f64() >= 0.002 || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn report(group: &str, name: &str, secs: f64, elements: Option<usize>) {
    let per = match elements {
        Some(n) if n > 0 => format!("  ({:.1} ns/elem)", secs * 1e9 / n as f64),
        _ => String::new(),
    };
    println!("{group}/{name:<24} {:>12.3} µs{per}", secs * 1e6);
}

fn bench_from_column() {
    for copies in [1usize, 8, 64] {
        let r = scaled_wbc(copies);
        let codes = r.column_codes(1).to_vec();
        let secs = best_secs(20, || StrippedPartition::from_column(&codes));
        report(
            "from_column",
            &codes.len().to_string(),
            secs,
            Some(codes.len()),
        );
    }
}

fn bench_product() {
    for copies in [1usize, 8, 64] {
        let r = scaled_wbc(copies);
        let pa = StrippedPartition::from_column(r.column_codes(1));
        let pb = StrippedPartition::from_column(r.column_codes(2));
        let mut scratch = ProductScratch::new(r.num_rows());
        let secs = best_secs(20, || product_with_scratch(&pa, &pb, &mut scratch));
        report(
            "product",
            &r.num_rows().to_string(),
            secs,
            Some(r.num_rows()),
        );
    }
}

fn bench_g3() {
    let r = wisconsin_breast_cancer();
    let pi_x = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([1, 2]));
    let pi_xa = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([1, 2, 10]));
    let mut scratch = G3Scratch::new(r.num_rows());
    let secs = best_secs(20, || {
        g3_removed_rows_with_scratch(&pi_x, &pi_xa, &mut scratch)
    });
    report("g3", "exact", secs, None);
    let secs = best_secs(20, || G3Bounds::new(&pi_x, &pi_xa).decide(0.05));
    report("g3", "bounds_only", secs, None);
}

fn main() {
    // `cargo test` runs benches with `--test`; benching is opt-in there.
    if std::env::args().any(|a| a == "--test") {
        println!("partitions bench: skipped under --test");
        return;
    }
    bench_from_column();
    bench_product();
    bench_g3();
}
