//! Fixture-driven tests: each rule fires on its trigger fixture, the
//! suppression fixture passes, and — the gate that matters — the real
//! workspace lints clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use tane_lint::{
    lint_source, run_workspace, RULE_DETERMINISM, RULE_HYGIENE, RULE_LOCK, RULE_UNSAFE,
};

/// Reads a fixture by its repo-style relative path. The same string is
/// fed to `lint_source` as the file's path, which is what scopes rules.
fn fixture(rel: &str) -> (String, String) {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display()));
    (rel.to_string(), src)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn unsafe_forbidden_outside_allowlist() {
    let (path, src) = fixture("crates/core/src/unsafe_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_UNSAFE);
    assert!(
        diags[0].message.contains("forbidden"),
        "{}",
        diags[0].message
    );
}

#[test]
fn unsafe_in_allowlist_requires_safety_comment() {
    let (path, src) = fixture("crates/util/src/pool.rs");
    let diags = lint_source(&path, &src);
    // `unaudited` fires; `audited` (with `// SAFETY:`) does not.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_UNSAFE);
    assert!(diags[0].message.contains("SAFETY"), "{}", diags[0].message);
}

#[test]
fn determinism_flags_hash_iteration_and_clock_reads() {
    let (path, src) = fixture("crates/core/src/determinism_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == RULE_DETERMINISM));
    assert!(
        diags.iter().any(|d| d.message.contains("iteration")),
        "hash iteration in `export` should fire: {diags:?}"
    );
    assert!(
        diags.iter().any(|d| d.message.contains("::now")),
        "Instant::now should fire: {diags:?}"
    );
    // `sorted_export` canonicalizes and must NOT fire: exactly one
    // iteration diagnostic total.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("iteration"))
            .count(),
        1,
        "{diags:?}"
    );
}

#[test]
fn determinism_scope_covers_the_ranking_module() {
    // The top-k heap is a result surface — its order is the answer a
    // ranked query returns (DESIGN §12) — so `crates/core/src/rank.rs`
    // must sit inside the R2 scope and unsorted hash iteration there
    // must fire like anywhere else in the search core.
    let (path, src) = fixture("crates/core/src/rank_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_DETERMINISM);
    assert!(diags[0].message.contains("iteration"), "{diags:?}");
}

#[test]
fn lock_discipline_flags_nesting_and_poison() {
    let (path, src) = fixture("crates/server/src/lock_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_LOCK), "{diags:?}");
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("while holding"))
            .count(),
        1,
        "one undeclared nesting: {diags:?}"
    );
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("poison"))
            .count(),
        2,
        "two bare `.lock().unwrap()`s: {diags:?}"
    );
}

#[test]
fn lock_discipline_covers_the_segment_store() {
    // The partition crate's concurrent segment store is the second
    // multi-lock surface (DESIGN §13). Its two declared nestings
    // (`clock` → `shard`, `shard` → `done`) must pass; an inverted
    // acquisition and a bare `.lock().unwrap()` must fire.
    let (path, src) = fixture("crates/partition/src/store_lock_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_LOCK), "{diags:?}");
    let nesting: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("while holding"))
        .collect();
    assert_eq!(
        nesting.len(),
        1,
        "only the inverted `shard` → `clock` nesting fires: {diags:?}"
    );
    assert!(
        nesting[0].message.contains("`clock` while holding `shard`"),
        "{}",
        nesting[0].message
    );
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("poison"))
            .count(),
        1,
        "one bare `.lock().unwrap()` on `done`: {diags:?}"
    );
}

#[test]
fn error_hygiene_flags_panics_in_handlers_but_not_init() {
    let (path, src) = fixture("crates/server/src/hygiene_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_HYGIENE), "{diags:?}");
    // panic!, unreachable!, and .unwrap() in `handle`; nothing from `new`.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(
        diags.iter().all(|d| d.line < 14),
        "init fn must be exempt: {diags:?}"
    );
}

#[test]
fn lint_allow_suppresses_with_reason() {
    let (path, src) = fixture("crates/server/src/suppressed.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unknown_rule_in_allow_is_itself_a_violation() {
    let src = "// lint:allow(bogus-rule): oops\nfn f() {}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lint-allow");
    assert!(diags[0].message.contains("bogus-rule"));
}

#[test]
fn doc_mentions_of_the_syntax_are_not_directives() {
    let src = "//! Suppress with `lint:allow(<rule>)` comments.\nfn f() {}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

/// The gate: the actual workspace must be violation-free.
#[test]
fn workspace_lints_clean() {
    let report = run_workspace(&repo_root()).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_tane-lint");
    let root = repo_root();

    let clean = Command::new(bin)
        .current_dir(&root)
        .output()
        .expect("run tane-lint");
    assert!(clean.status.success(), "workspace run must exit 0");

    let trigger = Command::new(bin)
        .current_dir(&root)
        .arg("crates/lint/tests/fixtures/crates/server/src/lock_trigger.rs")
        .output()
        .expect("run tane-lint on fixture");
    assert_eq!(trigger.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&trigger.stdout);
    assert!(text.contains("lock-discipline"), "{text}");

    let json = Command::new(bin)
        .current_dir(&root)
        .args([
            "--json",
            "crates/lint/tests/fixtures/crates/core/src/unsafe_trigger.rs",
        ])
        .output()
        .expect("run tane-lint --json");
    assert_eq!(json.status.code(), Some(1));
    let parsed =
        tane_util::Json::parse(&String::from_utf8_lossy(&json.stdout)).expect("JSON output parses");
    assert_eq!(parsed.get("count").and_then(|c| c.as_f64()), Some(1.0));

    let bad_flag = Command::new(bin)
        .current_dir(&root)
        .arg("--nope")
        .output()
        .expect("run tane-lint with bad flag");
    assert_eq!(bad_flag.status.code(), Some(2), "usage errors exit 2");
}
