//! Fixture-driven tests: each rule fires on its trigger fixture, the
//! suppression fixture passes, and — the gate that matters — the real
//! workspace lints clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use tane_lint::{
    analyze_sources, lint_source, run_workspace, RULE_ATOMICS, RULE_DETERMINISM, RULE_HYGIENE,
    RULE_LOCK, RULE_LOCK_GRAPH, RULE_UNSAFE,
};

/// Reads a fixture by its repo-style relative path. The same string is
/// fed to `lint_source` as the file's path, which is what scopes rules.
fn fixture(rel: &str) -> (String, String) {
    let disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    let src = std::fs::read_to_string(&disk)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", disk.display()));
    (rel.to_string(), src)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn unsafe_forbidden_outside_allowlist() {
    let (path, src) = fixture("crates/core/src/unsafe_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_UNSAFE);
    assert!(
        diags[0].message.contains("forbidden"),
        "{}",
        diags[0].message
    );
}

#[test]
fn unsafe_in_allowlist_requires_safety_comment() {
    let (path, src) = fixture("crates/util/src/pool.rs");
    let diags = lint_source(&path, &src);
    // `unaudited` fires; `audited` (with `// SAFETY:`) does not.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_UNSAFE);
    assert!(diags[0].message.contains("SAFETY"), "{}", diags[0].message);
}

#[test]
fn determinism_flags_hash_iteration_and_clock_reads() {
    let (path, src) = fixture("crates/core/src/determinism_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == RULE_DETERMINISM));
    let iteration: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("iteration"))
        .collect();
    // `export` fires (its return value reaches `emit`'s TaneStats);
    // `sorted_export` canonicalizes and must NOT fire.
    assert_eq!(iteration.len(), 1, "{diags:?}");
    assert!(
        iteration[0].message.contains("call path"),
        "the taint chain must name how the order escapes: {}",
        iteration[0].message
    );
    assert!(
        diags.iter().any(|d| d.message.contains("::now")),
        "Instant::now should fire: {diags:?}"
    );
}

#[test]
fn determinism_scope_covers_the_ranking_module() {
    // The top-k heap is a result surface — its order is the answer a
    // ranked query returns (DESIGN §12) — so `crates/core/src/rank.rs`
    // must sit inside the R2 scope and unsorted hash iteration there
    // must fire like anywhere else in the search core.
    let (path, src) = fixture("crates/core/src/rank_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_DETERMINISM);
    assert!(diags[0].message.contains("iteration"), "{diags:?}");
}

#[test]
fn lock_discipline_flags_nesting_and_poison() {
    let (path, src) = fixture("crates/server/src/lock_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_LOCK), "{diags:?}");
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("while holding"))
            .count(),
        1,
        "one undeclared nesting: {diags:?}"
    );
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("poison"))
            .count(),
        2,
        "two bare `.lock().unwrap()`s: {diags:?}"
    );
}

#[test]
fn lock_discipline_covers_the_segment_store() {
    // The partition crate's concurrent segment store is the second
    // multi-lock surface (DESIGN §13). Its two declared nestings
    // (`clock` → `shard`, `shard` → `done`) must pass; an inverted
    // acquisition fires as an undeclared edge AND a derived cycle, and a
    // bare `.lock().unwrap()` fires as poison.
    let (path, src) = fixture("crates/partition/src/store_lock_trigger.rs");
    let diags = lint_source(&path, &src);
    let nesting: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("while holding"))
        .collect();
    assert_eq!(
        nesting.len(),
        1,
        "only the inverted `shard` → `clock` nesting fires: {diags:?}"
    );
    assert!(
        nesting[0].message.contains("`clock` while holding `shard`"),
        "{}",
        nesting[0].message
    );
    // Both directions of the cycle report: the inverted edge AND the
    // (declared, legitimate) edge it closes the loop with.
    let cycles: Vec<_> = diags.iter().filter(|d| d.rule == RULE_LOCK_GRAPH).collect();
    assert_eq!(cycles.len(), 2, "{diags:?}");
    assert!(
        cycles
            .iter()
            .all(|d| d.message.contains("potential deadlock")),
        "{diags:?}"
    );
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("poison"))
            .count(),
        1,
        "one bare `.lock().unwrap()` on `done`: {diags:?}"
    );
    assert_eq!(diags.len(), 4, "{diags:?}");
}

#[test]
fn derived_edges_cross_file_boundaries_via_the_call_graph() {
    // `Writer::flush` (file 1) holds `journal` and calls
    // `Sidecar::record_sidecar` (file 2), which locks `index`: the edge
    // exists only interprocedurally, and its witness names the callee.
    let (p1, s1) = fixture("crates/server/src/xfile_caller.rs");
    let (p2, s2) = fixture("crates/server/src/xfile_callee.rs");
    let diags = analyze_sources(vec![(p1, s1), (p2, s2)]).report.diagnostics;
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_LOCK);
    assert!(
        diags[0].message.contains("`index` while holding `journal`"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("via `Sidecar::record_sidecar`"),
        "the witness must name the call that crosses the file: {}",
        diags[0].message
    );
}

#[test]
fn declared_edges_do_not_absolve_cycles() {
    let (path, src) = fixture("crates/server/src/cycle_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(
        diags
            .iter()
            .all(|d| d.rule == RULE_LOCK_GRAPH && d.message.contains("potential deadlock")),
        "both declared directions must still report the cycle: {diags:?}"
    );
}

#[test]
fn stale_declarations_are_flagged() {
    let (path, src) = fixture("crates/server/src/stale_decl_trigger.rs");
    let diags = lint_source(&path, &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, RULE_LOCK_GRAPH);
    assert!(
        diags[0].message.contains("no derived witness"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("ghost -> only"),
        "{}",
        diags[0].message
    );
}

#[test]
fn atomics_justification_and_result_path_taint() {
    let (path, src) = fixture("crates/util/src/atomics_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_ATOMICS), "{diags:?}");
    assert_eq!(diags.len(), 2, "{diags:?}");
    // `hit` lacks the justification comment; `miss` has one and passes.
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("without an"))
            .count(),
        1,
        "{diags:?}"
    );
    // `snapshot` is justified yet still fires: its Relaxed load flows
    // into `stats`'s TaneStats.
    let taint: Vec<_> = diags
        .iter()
        .filter(|d| d.message.contains("flows into"))
        .collect();
    assert_eq!(taint.len(), 1, "{diags:?}");
    assert!(
        taint[0].message.contains("Counters::stats"),
        "the call path must name the sink constructor: {}",
        taint[0].message
    );
}

#[test]
fn error_hygiene_flags_panics_in_handlers_but_not_init() {
    let (path, src) = fixture("crates/server/src/hygiene_trigger.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.iter().all(|d| d.rule == RULE_HYGIENE), "{diags:?}");
    // panic!, unreachable!, and .unwrap() in `handle`; nothing from `new`.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(
        diags.iter().all(|d| d.line < 14),
        "init fn must be exempt: {diags:?}"
    );
}

#[test]
fn lint_allow_suppresses_with_reason() {
    let (path, src) = fixture("crates/server/src/suppressed.rs");
    let diags = lint_source(&path, &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unknown_rule_in_allow_is_itself_a_violation() {
    let src = "// lint:allow(bogus-rule): oops\nfn f() {}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "lint-allow");
    assert!(diags[0].message.contains("bogus-rule"));
}

#[test]
fn doc_mentions_of_the_syntax_are_not_directives() {
    let src = "//! Suppress with `lint:allow(<rule>)` comments.\nfn f() {}\n";
    let diags = lint_source("crates/core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

/// The gate: the actual workspace must be violation-free.
#[test]
fn workspace_lints_clean() {
    let report = run_workspace(&repo_root()).expect("workspace walk");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        report.render_human()
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_tane-lint");
    let root = repo_root();

    let clean = Command::new(bin)
        .current_dir(&root)
        .output()
        .expect("run tane-lint");
    assert!(clean.status.success(), "workspace run must exit 0");

    let trigger = Command::new(bin)
        .current_dir(&root)
        .arg("crates/lint/tests/fixtures/crates/server/src/lock_trigger.rs")
        .output()
        .expect("run tane-lint on fixture");
    assert_eq!(trigger.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&trigger.stdout);
    assert!(text.contains("lock-discipline"), "{text}");

    let json = Command::new(bin)
        .current_dir(&root)
        .args([
            "--json",
            "crates/lint/tests/fixtures/crates/core/src/unsafe_trigger.rs",
        ])
        .output()
        .expect("run tane-lint --json");
    assert_eq!(json.status.code(), Some(1));
    let parsed =
        tane_util::Json::parse(&String::from_utf8_lossy(&json.stdout)).expect("JSON output parses");
    assert_eq!(
        parsed.get("schema").and_then(|s| s.as_f64()),
        Some(2.0),
        "the JSON contract is versioned"
    );
    assert_eq!(parsed.get("count").and_then(|c| c.as_f64()), Some(1.0));

    let bad_flag = Command::new(bin)
        .current_dir(&root)
        .arg("--nope")
        .output()
        .expect("run tane-lint with bad flag");
    assert_eq!(bad_flag.status.code(), Some(2), "usage errors exit 2");
}

/// The five v2 detections must each fail a CLI run with exit 1.
#[test]
fn cli_exits_one_on_every_v2_detection() {
    let bin = env!("CARGO_BIN_EXE_tane-lint");
    let root = repo_root();
    let fx = "crates/lint/tests/fixtures";
    let runs: &[(&str, Vec<String>)] = &[
        (
            "cross-file guard-held edge",
            vec![
                format!("{fx}/crates/server/src/xfile_caller.rs"),
                format!("{fx}/crates/server/src/xfile_callee.rs"),
            ],
        ),
        (
            "derived cycle",
            vec![format!("{fx}/crates/server/src/cycle_trigger.rs")],
        ),
        (
            "stale declaration",
            vec![format!("{fx}/crates/server/src/stale_decl_trigger.rs")],
        ),
        (
            "unjustified ordering / relaxed taint",
            vec![format!("{fx}/crates/util/src/atomics_trigger.rs")],
        ),
        (
            "interprocedural hash taint",
            vec![format!("{fx}/crates/core/src/determinism_trigger.rs")],
        ),
    ];
    for (what, paths) in runs {
        let out = Command::new(bin)
            .current_dir(&root)
            .args(paths)
            .output()
            .expect("run tane-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{what} must exit 1:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

/// Diagnostics come out sorted by (file, line, rule) no matter the input
/// order, so reports diff cleanly run-to-run.
#[test]
fn reports_are_deterministically_sorted() {
    let (p1, s1) = fixture("crates/server/src/cycle_trigger.rs");
    let (p2, s2) = fixture("crates/core/src/determinism_trigger.rs");
    let fwd = analyze_sources(vec![(p1.clone(), s1.clone()), (p2.clone(), s2.clone())])
        .report
        .diagnostics;
    let rev = analyze_sources(vec![(p2, s2), (p1, s1)]).report.diagnostics;
    assert_eq!(fwd, rev, "input order must not leak into the report");
    let keys: Vec<_> = fwd
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "report must be sorted by (file, line, rule)");
}

#[test]
fn baseline_ratchet_cli_roundtrip() {
    let bin = env!("CARGO_BIN_EXE_tane-lint");
    let root = repo_root();
    let trigger = "crates/lint/tests/fixtures/crates/server/src/lock_trigger.rs";
    let dir = std::env::temp_dir().join(format!("tane-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let baseline = dir.join("baseline.txt");

    // Record the current violations…
    let write = Command::new(bin)
        .current_dir(&root)
        .args(["--write-baseline", baseline.to_str().unwrap(), trigger])
        .output()
        .expect("write baseline");
    assert!(write.status.success(), "writing a baseline exits 0");

    // …then the same run against the baseline is green (violations are
    // still printed, marked baselined, but none are new).
    let ratchet = Command::new(bin)
        .current_dir(&root)
        .args(["--baseline", baseline.to_str().unwrap(), trigger])
        .output()
        .expect("ratchet run");
    let text = String::from_utf8_lossy(&ratchet.stdout);
    assert!(
        ratchet.status.success(),
        "baselined violations must not fail the run:\n{text}"
    );
    assert!(text.contains("[baselined]"), "{text}");

    // A second file introduces NEW violations: exit 1.
    let grown = Command::new(bin)
        .current_dir(&root)
        .args([
            "--baseline",
            baseline.to_str().unwrap(),
            trigger,
            "crates/lint/tests/fixtures/crates/core/src/unsafe_trigger.rs",
        ])
        .output()
        .expect("ratchet run with new violations");
    assert_eq!(grown.status.code(), Some(1), "new violations still fail");

    // A corrupt baseline is an error, not an empty set.
    std::fs::write(&baseline, "not a baseline\n").expect("corrupt baseline");
    let corrupt = Command::new(bin)
        .current_dir(&root)
        .args(["--baseline", baseline.to_str().unwrap(), trigger])
        .output()
        .expect("corrupt baseline run");
    assert_eq!(corrupt.status.code(), Some(2), "corrupt baseline exits 2");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--symbols` dumps a queryable graph: real workspace functions, call
/// edges, and explicit unresolved/ambiguous accounting.
#[test]
fn symbol_graph_dump_is_queryable() {
    let bin = env!("CARGO_BIN_EXE_tane-lint");
    let root = repo_root();
    let dir = std::env::temp_dir().join(format!("tane-lint-symbols-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("symbols.json");
    let out = Command::new(bin)
        .current_dir(&root)
        .args(["--symbols", path.to_str().unwrap()])
        .output()
        .expect("symbol dump");
    assert!(out.status.success(), "clean workspace + dump exits 0");
    let text = std::fs::read_to_string(&path).expect("dump written");
    let parsed = tane_util::Json::parse(&text).expect("symbol dump parses");
    assert_eq!(parsed.get("schema").and_then(|s| s.as_f64()), Some(1.0));
    let fns = parsed
        .get("functions")
        .and_then(|f| f.as_array())
        .expect("functions array");
    assert!(
        fns.len() > 300,
        "workspace has many functions: {}",
        fns.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
