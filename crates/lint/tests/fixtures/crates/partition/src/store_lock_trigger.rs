//! R3/R6 triggers against the segment store's lock names: the declared
//! nestings (`clock` → `shard`, `shard` → `done`) must pass, an
//! undeclared inversion (`shard` → `clock`) must fire as an undeclared
//! edge *and* close a cycle in the derived graph, and a bare
//! `.lock().unwrap()` must fire as poison propagation.

use std::sync::Mutex;

pub struct Store {
    clock: Mutex<Vec<u64>>,
    shard: Mutex<u32>,
    done: Mutex<bool>,
}

impl Store {
    /// Declared order `clock` → `shard` (the eviction sweep): no nesting
    /// diagnostic may fire here.
    pub fn evict(&self) -> u32 {
        let clock = self.clock.lock().unwrap_or_else(|e| e.into_inner());
        // lint:lock-order(clock -> shard): the sweep dips into one shard
        // per key while walking the clock queue.
        let shard = self.shard.lock().unwrap_or_else(|e| e.into_inner());
        let _ = clock.len();
        *shard
    }

    /// Declared order `shard` → `done` (publish): the nesting passes, but
    /// the bare unwrap on `done` is one poison diagnostic.
    pub fn publish(&self) -> u32 {
        let shard = self.shard.lock().unwrap_or_else(|e| e.into_inner());
        // lint:lock-order(shard -> done): waiters are woken under the
        // shard lock so they can never observe a stale Loading marker.
        let done = self.done.lock().unwrap();
        let _ = *done;
        *shard
    }

    /// Inverted order: acquiring `clock` while holding `shard` is
    /// undeclared AND completes a `clock → shard → clock` cycle.
    pub fn inverted(&self) -> u64 {
        let shard = self.shard.lock().unwrap_or_else(|e| e.into_inner());
        let clock = self.clock.lock().unwrap_or_else(|e| e.into_inner());
        u64::from(*shard) + clock.len() as u64
    }
}
