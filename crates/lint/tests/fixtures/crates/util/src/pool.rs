//! R1 trigger: this path suffix *is* allowlisted, so bare `unsafe` is
//! legal — but only with a `// SAFETY:` comment immediately above.

pub fn unaudited(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn audited(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}
