//! R5 triggers: an unjustified ordering fires; a justified one passes;
//! and a justified `Relaxed` load still fires when its value flows into
//! a `TaneStats` result (comments cannot argue away staleness).

use std::sync::atomic::{AtomicU64, Ordering};

pub struct TaneStats {
    pub hits: u64,
}

pub struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Counters {
    /// No justification: one `atomics-audit` diagnostic.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Justified: passes.
    pub fn miss(&self) {
        // ORDERING: Relaxed — advisory heuristics only, never results.
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Constructs the result surface: `snapshot` below is on its path.
    pub fn stats(&self) -> TaneStats {
        TaneStats {
            hits: self.snapshot(),
        }
    }

    // ORDERING: Relaxed — justified, but the result-path taint check
    // still fires because the value lands in `TaneStats`.
    fn snapshot(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
