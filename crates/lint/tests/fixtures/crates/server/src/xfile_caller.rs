//! Cross-file R3: `flush` holds `journal` and calls a helper in another
//! file that acquires `index` — the derived edge crosses the file
//! boundary through the call graph and must carry a `via` label.

use std::sync::Mutex;

pub struct Writer {
    journal: Mutex<Vec<u8>>,
}

impl Writer {
    pub fn flush(&self, sidecar: &super::xfile_callee::Sidecar) {
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        sidecar.record_sidecar(journal.len());
    }
}
