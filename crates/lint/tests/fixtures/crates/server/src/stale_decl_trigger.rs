//! R6 staleness: a declared nesting with no derived witness anywhere in
//! the analyzed set — left over from a refactor, it must be flagged so
//! the declaration table cannot rot.

use std::sync::Mutex;

pub struct S {
    only: Mutex<u32>,
}

impl S {
    pub fn get(&self) -> u32 {
        // lint:lock-order(ghost -> only): left over from a refactor.
        *self.only.lock().unwrap_or_else(|e| e.into_inner())
    }
}
