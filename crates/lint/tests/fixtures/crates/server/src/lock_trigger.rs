//! R3 triggers: undeclared lock nesting, and poison-propagating unwraps.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn transfer(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }
}
