//! R4 triggers: panics in a request-handling path. The `new` function at
//! the bottom is exempt (init-time).

pub fn handle(req: &str) -> String {
    if req.is_empty() {
        panic!("empty request");
    }
    let n: u32 = req.parse().unwrap();
    match n {
        0 => unreachable!(),
        _ => format!("{n}"),
    }
}

pub fn new() -> String {
    let fail_fast: Option<String> = None;
    fail_fast.expect("init may panic")
}
