//! Suppression fixture: every would-be violation carries a justified
//! `lint:allow`, so this file must lint clean.

use std::sync::Mutex;

pub struct Counter {
    inner: Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) -> u64 {
        // lint:allow(lock-discipline): fixture exercising suppression —
        // poison recovery is deliberately omitted here.
        let mut g = self.inner.lock().unwrap();
        *g += 1;
        *g
    }

    pub fn must(&self, v: Option<u64>) -> u64 {
        // lint:allow(error-hygiene): fixture demonstrating a justified unwrap.
        v.unwrap()
    }
}
