//! R6: both nestings declared, still a cycle — a declaration documents an
//! edge, it does not absolve a deadlock. Two threads running `fwd` and
//! `rev` concurrently can each hold one lock and wait on the other.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn fwd(&self) -> u32 {
        let a = self.a.lock().unwrap_or_else(|e| e.into_inner());
        // lint:lock-order(a -> b): forward path.
        let b = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }

    pub fn rev(&self) -> u32 {
        let b = self.b.lock().unwrap_or_else(|e| e.into_inner());
        // lint:lock-order(b -> a): reverse path.
        let a = self.a.lock().unwrap_or_else(|e| e.into_inner());
        *a + *b
    }
}
