//! The callee side of the cross-file derived edge: acquires `index`.

use std::sync::Mutex;

pub struct Sidecar {
    index: Mutex<Vec<usize>>,
}

impl Sidecar {
    pub fn record_sidecar(&self, n: usize) {
        let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        index.push(n);
    }
}
