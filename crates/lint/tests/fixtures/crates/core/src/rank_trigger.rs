//! R2 trigger inside the ranking module's path: the ranked heap's order
//! *is* the answer (DESIGN §12), so hash-order iteration feeding it must
//! fire exactly as anywhere else in `crates/core/src`.

use std::collections::HashMap;

pub fn heap_order(scores: &HashMap<String, u64>) -> Vec<String> {
    let mut heap = Vec::new();
    for (fd, g3) in scores.iter() {
        heap.push(format!("{fd}:{g3}"));
    }
    heap
}
