//! R2 trigger inside the ranking module's path: the ranked heap's order
//! *is* the answer (DESIGN §12), so hash-order iteration that reaches the
//! `RankState` through the call graph must fire like anywhere else in
//! `crates/core/src`.

use std::collections::HashMap;

pub struct RankState {
    pub heap: Vec<String>,
}

pub fn rank(scores: &HashMap<String, u64>) -> RankState {
    RankState {
        heap: heap_order(scores),
    }
}

pub fn heap_order(scores: &HashMap<String, u64>) -> Vec<String> {
    let mut heap = Vec::new();
    for (fd, g3) in scores.iter() {
        heap.push(format!("{fd}:{g3}"));
    }
    heap
}
