//! R1 trigger: `unsafe` outside the audited allowlist.

pub fn peek(v: &[u32]) -> u32 {
    // SAFETY: a comment does not help here — the file is not allowlisted.
    unsafe { *v.get_unchecked(0) }
}
