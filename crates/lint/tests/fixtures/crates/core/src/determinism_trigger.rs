//! R2 triggers: hash iteration whose arbitrary order escapes through the
//! call graph into a `TaneStats` result, and a clock read in search-scope
//! code.

use std::collections::HashMap;
use std::time::Instant;

pub struct TaneStats {
    pub lines: Vec<String>,
}

/// Constructs the result surface: everything it (transitively) calls is
/// on a determinism-audited path.
pub fn emit(counts: &HashMap<String, u64>) -> TaneStats {
    TaneStats {
        lines: export(counts),
    }
}

/// Hash order leaks through the return value into `emit`'s `TaneStats`:
/// the iteration here must fire with the call path in the message.
pub fn export(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}

/// Canonicalizes before returning: no diagnostic, even though `emit`
/// could call it.
pub fn sorted_export(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
    out.sort();
    out
}

pub fn elapsed_secs() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
