//! R2 triggers: hash iteration escaping to output, and a clock read in
//! search-scope code.

use std::collections::HashMap;
use std::time::Instant;

pub fn export(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for (k, v) in counts.iter() {
        out.push(format!("{k}={v}"));
    }
    out
}

pub fn sorted_export(counts: &HashMap<String, u64>) -> Vec<String> {
    let mut out: Vec<String> = counts.iter().map(|(k, v)| format!("{k}={v}")).collect();
    out.sort();
    out
}

pub fn elapsed_secs() -> f64 {
    let t = Instant::now();
    t.elapsed().as_secs_f64()
}
