//! A structural layer over the token stream: the per-file item tree.
//!
//! The workspace analyses (call graph, lock-order derivation, taint) need
//! to know *which function* a token belongs to, what type a `self` call
//! resolves against, and where closures nest. This parser recovers exactly
//! that — modules, `impl` blocks (inherent and trait), traits, functions
//! with their body token ranges, and nested closures — from the lexer's
//! token stream. It is resolutely approximate: it never fails, it skips
//! what it does not understand, and like the lexer it leaves being the
//! arbiter of syntax to the compiler.

use crate::lexer::{Kind, Tok};
use crate::rules::matching;

/// One function (or method) found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl` self-type (`SegmentStore` for both `impl SegmentStore`
    /// and `impl PartitionStore for SegmentStore`) or the trait name for
    /// trait-default bodies; `None` for free functions.
    pub self_type: Option<String>,
    /// Enclosing `mod` path within the file (`["tests"]`, usually empty).
    pub module: Vec<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body *between* the braces (exclusive of both).
    /// `None` for bodiless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// True if the parameter list starts with a `self` receiver.
    pub is_method: bool,
    /// Closure literals (`|args| ...`) nested in the body. Closures are
    /// analyzed *inline* — a closure's locks and taints belong to its
    /// enclosing function, which is sound for the workspace rules because
    /// every closure here either runs before its creator returns (scoped
    /// pool jobs, iterator adapters) or is the function body itself.
    pub closures: usize,
}

/// The item tree of one file: its functions, in source order.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub fns: Vec<FnItem>,
}

impl ItemTree {
    /// Index (into `fns`) of the innermost function whose body contains
    /// token `i`. Nested fns win over their enclosing fn because they are
    /// parsed too and have tighter body ranges.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (k, f) in self.fns.iter().enumerate() {
            if let Some((s, e)) = f.body {
                if i >= s && i < e {
                    let tighter = match best {
                        None => true,
                        Some(b) => {
                            let (bs, be) = self.fns[b].body.unwrap();
                            (e - s) < (be - bs)
                        }
                    };
                    if tighter {
                        best = Some(k);
                    }
                }
            }
        }
        best
    }
}

/// Keywords that can precede `fn`/`impl`/`mod` without changing the item.
fn is_item_noise(w: &str) -> bool {
    matches!(
        w,
        "pub" | "crate" | "const" | "unsafe" | "async" | "extern" | "default"
    )
}

/// Parses the item tree of one lexed file.
pub fn parse(toks: &[Tok]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut scope = ScopeStack::default();
    parse_range(toks, 0, toks.len(), &mut scope, &mut tree);
    tree
}

#[derive(Debug, Default)]
struct ScopeStack {
    mods: Vec<String>,
    /// Innermost impl/trait self-type, if any.
    self_type: Option<String>,
}

fn parse_range(toks: &[Tok], start: usize, end: usize, scope: &mut ScopeStack, out: &mut ItemTree) {
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" => {
                // `mod name { ... }` — recurse with the module pushed;
                // `mod name;` — skip.
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == Kind::Ident) else {
                    i += 1;
                    continue;
                };
                match toks.get(i + 2) {
                    Some(b) if b.is_punct('{') => {
                        let close = matching(toks, i + 2, '{', '}').unwrap_or(end);
                        scope.mods.push(name.text.clone());
                        parse_range(toks, i + 3, close.min(end), scope, out);
                        scope.mods.pop();
                        i = close + 1;
                    }
                    _ => i += 2,
                }
            }
            "impl" | "trait" => {
                let kw_is_impl = t.text == "impl";
                // Find the block open; the self-type is the last plain
                // path segment before `{` (after `for`, if present).
                let mut j = i + 1;
                let mut depth_angle = 0i32;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                let mut ty_after_for: Option<String> = None;
                while j < end && !toks[j].is_punct('{') {
                    let tj = &toks[j];
                    if tj.is_punct('<') {
                        depth_angle += 1;
                    } else if tj.is_punct('>') {
                        depth_angle -= 1;
                    } else if tj.is_ident("for") && depth_angle == 0 {
                        after_for = true;
                    } else if tj.is_ident("where") && depth_angle == 0 {
                        break;
                    } else if tj.kind == Kind::Ident && depth_angle == 0 && !is_item_noise(&tj.text)
                    {
                        if after_for {
                            ty_after_for.get_or_insert(tj.text.clone());
                            // Later segments of a path (`a::b::Type`)
                            // override earlier ones.
                            if toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct(':')) {
                                ty_after_for = Some(tj.text.clone());
                            }
                        } else {
                            if ty.is_none()
                                || toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct(':'))
                            {
                                ty = Some(tj.text.clone());
                            }
                        }
                    }
                    j += 1;
                }
                // Skip to the block even past a where clause.
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j >= end || !toks[j].is_punct('{') {
                    i = j + 1;
                    continue;
                }
                let close = matching(toks, j, '{', '}').unwrap_or(end);
                let self_type = if kw_is_impl {
                    ty_after_for.or(ty)
                } else {
                    ty // the trait's own name, for default-method bodies
                };
                let saved = scope.self_type.clone();
                scope.self_type = self_type;
                parse_range(toks, j + 1, close.min(end), scope, out);
                scope.self_type = saved;
                i = close + 1;
            }
            "fn" => {
                // `fn name(...)` — `fn` followed by `(` is a fn-pointer
                // type, not an item.
                let Some(name) = toks.get(i + 1).filter(|n| n.kind == Kind::Ident) else {
                    i += 1;
                    continue;
                };
                // Find the parameter list and peek for a `self` receiver.
                let mut j = i + 2;
                while j < end && !toks[j].is_punct('(') {
                    j += 1; // generics <...>
                }
                let is_method = {
                    let mut k = j + 1;
                    let mut method = false;
                    while k < end && k < j + 6 {
                        if toks[k].is_ident("self") {
                            method = true;
                            break;
                        }
                        if (toks[k].kind == Kind::Ident && !toks[k].is_ident("mut"))
                            || toks[k].is_punct(')')
                        {
                            break;
                        }
                        k += 1; // `&`, `'a`, `mut`
                    }
                    method
                };
                // Find the body `{` or the signature-terminating `;`.
                // Return types and where clauses contain no braces.
                while j < end && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                let (body, next) = if j < end && toks[j].is_punct('{') {
                    let close = matching(toks, j, '{', '}').unwrap_or(end);
                    (Some((j + 1, close.min(end))), close + 1)
                } else {
                    (None, j + 1)
                };
                out.fns.push(FnItem {
                    name: name.text.clone(),
                    self_type: scope.self_type.clone(),
                    module: scope.mods.clone(),
                    line: t.line,
                    body,
                    is_method,
                    closures: body.map_or(0, |(s, e)| count_closures(toks, s, e)),
                });
                if let Some((s, e)) = body {
                    // Nested fns inside the body become items of their own.
                    parse_range(toks, s, e, scope, out);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
}

/// Counts closure literals in a token range: a `|` that opens a parameter
/// list, i.e. one not preceded by an expression-ending token (which would
/// make it a binary/bit-or) — the classic `|args|` heuristic.
fn count_closures(toks: &[Tok], start: usize, end: usize) -> usize {
    let mut n = 0;
    let mut i = start;
    while i < end {
        if toks[i].is_punct('|') {
            let prev_ends_expr = i > 0
                && matches!(&toks[i - 1], p if p.kind == Kind::Ident
                    || p.kind == Kind::Literal
                    || p.is_punct(')')
                    || p.is_punct(']'));
            if !prev_ends_expr {
                // `||` (no params) counts once.
                n += 1;
                if toks.get(i + 1).is_some_and(|t| t.is_punct('|')) {
                    i += 2;
                    continue;
                }
                // Skip to the closing `|` of the parameter list.
                let mut j = i + 1;
                while j < end && !toks[j].is_punct('|') {
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn items_and_impls_are_recovered() {
        let src = r#"
            pub fn free(x: u32) -> u32 { x }
            impl Store {
                pub fn get(&self) -> u32 { self.helper() }
                fn helper(&self) -> u32 { 1 }
            }
            impl Backend for Store {
                fn put(&mut self, v: u32) {}
            }
            trait Backend {
                fn put(&mut self, v: u32);
                fn flush(&mut self) { }
            }
            mod inner {
                fn nested() {}
            }
        "#;
        let lx = lex(src);
        let tree = parse(&lx.tokens);
        let names: Vec<(String, Option<String>, bool)> = tree
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_type.clone(), f.is_method))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None, false),
                ("get".into(), Some("Store".into()), true),
                ("helper".into(), Some("Store".into()), true),
                ("put".into(), Some("Store".into()), true),
                ("put".into(), Some("Backend".into()), true),
                ("flush".into(), Some("Backend".into()), true),
                ("nested".into(), None, false),
            ]
        );
        assert_eq!(tree.fns[6].module, vec!["inner".to_string()]);
        assert!(tree.fns[3].body.is_some(), "impl method has a body");
        assert!(tree.fns[4].body.is_none(), "trait signature has none");
    }

    #[test]
    fn closures_are_counted_and_fn_pointer_types_ignored() {
        let src = "fn f(g: fn(u32) -> u32) { let h = |x: u32| x + 1; v.iter().map(|y| y).count(); let p = a | b; }";
        let lx = lex(src);
        let tree = parse(&lx.tokens);
        assert_eq!(tree.fns.len(), 1, "{:?}", tree.fns);
        assert_eq!(tree.fns[0].closures, 2);
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() { fn inner() { marker(); } }";
        let lx = lex(src);
        let tree = parse(&lx.tokens);
        let marker = lx.tokens.iter().position(|t| t.is_ident("marker")).unwrap();
        let f = tree.enclosing_fn(marker).unwrap();
        assert_eq!(tree.fns[f].name, "inner");
    }
}
