//! Ratchet baselines: adopt the linter on a codebase with existing debt
//! without letting the debt grow.
//!
//! A baseline file records the exact `(rule, file, line, message)` tuples
//! of known violations. Under `--baseline <file>`, violations present in
//! the baseline stay **visible** (they are debt, not noise) but do not
//! fail the run; any violation *not* in the baseline is new and fails.
//! Fixed violations simply stop matching — rewrite the baseline
//! (`--write-baseline`) to shrink it. Matching is exact: editing a file
//! so a baselined violation moves lines makes it "new", which is the
//! ratchet working as intended — touched code meets the current bar.

use std::collections::BTreeSet;

use crate::diag::{Diagnostic, Report};

const HEADER: &str = "# tane-lint baseline v1";

/// Serializes a report as a baseline file (sorted, tab-separated).
pub fn render(report: &Report) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for d in &report.diagnostics {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            d.rule, d.file, d.line, d.message
        ));
    }
    out
}

/// Parses a baseline file into its tuple set. Lines that do not parse
/// (wrong field count) are reported as errors so a corrupted baseline
/// cannot silently accept everything.
pub fn parse(text: &str) -> Result<BTreeSet<(String, String, u32, String)>, String> {
    let mut set = BTreeSet::new();
    for (n, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(rule), Some(file), Some(lineno), Some(message)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected 4 tab-separated fields",
                n + 1
            ));
        };
        let lineno: u32 = lineno
            .parse()
            .map_err(|_| format!("baseline line {}: bad line number `{lineno}`", n + 1))?;
        set.insert((
            rule.to_string(),
            file.to_string(),
            lineno,
            message.to_string(),
        ));
    }
    Ok(set)
}

/// The ratchet split of a report against a baseline.
pub struct Ratchet {
    /// Violations not in the baseline: these fail the run.
    pub new: Vec<Diagnostic>,
    /// Count of violations matched by the baseline (shown, non-failing).
    pub baselined: usize,
}

pub fn apply(report: &Report, baseline: &BTreeSet<(String, String, u32, String)>) -> Ratchet {
    let mut new = Vec::new();
    let mut baselined = 0;
    for d in &report.diagnostics {
        let key = (
            d.rule.to_string(),
            d.file.clone(),
            d.line,
            d.message.clone(),
        );
        if baseline.contains(&key) {
            baselined += 1;
        } else {
            new.push(d.clone());
        }
    }
    Ratchet { new, baselined }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let mut r = Report {
            diagnostics: vec![
                Diagnostic::new(crate::RULE_LOCK, "a.rs", 3, "old debt"),
                Diagnostic::new(crate::RULE_ATOMICS, "b.rs", 9, "fresh"),
            ],
            files_scanned: 2,
        };
        r.finish();
        r
    }

    #[test]
    fn round_trip_and_ratchet() {
        let r = report();
        let text = render(&r);
        let set = parse(&text).unwrap();
        assert_eq!(set.len(), 2);
        let ratchet = apply(&r, &set);
        assert_eq!(ratchet.new.len(), 0);
        assert_eq!(ratchet.baselined, 2);

        // Drop one entry: it becomes "new" and must fail.
        let partial: BTreeSet<_> = set
            .into_iter()
            .filter(|(rule, _, _, _)| rule == crate::RULE_LOCK)
            .collect();
        let ratchet = apply(&r, &partial);
        assert_eq!(ratchet.baselined, 1);
        assert_eq!(ratchet.new.len(), 1);
        assert_eq!(ratchet.new[0].file, "b.rs");
    }

    #[test]
    fn corrupted_baseline_is_an_error() {
        assert!(parse("not a baseline line").is_err());
        assert!(parse("# tane-lint baseline v1\nrule\tfile\tnot-a-number\tmsg").is_err());
    }
}
