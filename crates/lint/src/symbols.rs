//! The workspace symbol graph: every function in every scanned file, with
//! its structural identity (file, impl type, module path, body span) and —
//! once `callgraph` has run — its call sites and analysis summaries.
//!
//! The graph is the queryable artifact behind the v2 rules: R3 derives
//! lock-order edges by walking it, R2 propagates hash-order taint over it,
//! R5 follows `Relaxed` loads through it. `tane-lint --symbols <file>`
//! persists it as JSON so the derived facts can be inspected (and diffed)
//! outside a lint run.

use std::collections::BTreeMap;

use crate::callgraph::{CallSite, Resolution};
use crate::lexer::Lexed;
use crate::parser::{self, ItemTree};

/// One scanned file, lexed and parsed.
pub struct FileSyms {
    /// Repo-relative path, forward slashes.
    pub path: String,
    pub lexed: Lexed,
    pub tree: ItemTree,
    /// Test-code token spans (mirrors `rules::Ctx`): excluded from graph
    /// summaries so test scaffolding never taints production analysis.
    pub test_spans: Vec<(usize, usize)>,
    /// Global `FnSym` index for each `tree.fns` entry, parallel vectors.
    pub fn_ids: Vec<usize>,
}

/// One function in the workspace, with analysis summaries.
pub struct FnSym {
    /// Index into `SymbolGraph::files`.
    pub file: usize,
    /// Index into that file's `tree.fns`.
    pub item: usize,
    /// Call sites found in the body (filled by `callgraph::resolve`).
    pub calls: Vec<CallSite>,
    /// Lock names this function acquires *directly* (`.lock()` receiver
    /// identity), in source order, deduplicated.
    pub direct_locks: Vec<String>,
    /// Direct + transitive (through resolved calls) lock acquisitions.
    pub all_locks: Vec<String>,
    /// Lines of `.load(Ordering::Relaxed)` sites in the body.
    pub relaxed_loads: Vec<u32>,
    /// (sink type, line) for determinism-audited result types constructed
    /// in the body (`TaneResult { .. }`, `LevelEvent { .. }`, ...).
    pub sinks: Vec<(String, u32)>,
    /// Unsuppressed, uncanonicalized hash-iteration sites in the body:
    /// (line, iterated name, how).
    pub hash_sources: Vec<(u32, String, String)>,
}

/// The whole-workspace graph.
pub struct SymbolGraph {
    pub files: Vec<FileSyms>,
    pub fns: Vec<FnSym>,
    /// name → fn ids (methods and free fns alike), names sorted.
    pub by_name: BTreeMap<String, Vec<usize>>,
}

/// One input file for [`SymbolGraph::build`]: path, lexed tokens, and the
/// file's precomputed `#[cfg(test)]` spans.
pub type LexedFile = (String, Lexed, Vec<(usize, usize)>);

impl SymbolGraph {
    /// Builds the structural graph (no call resolution yet) from lexed
    /// files. `test_spans` must be precomputed per file.
    pub fn build(files: Vec<LexedFile>) -> SymbolGraph {
        let mut g = SymbolGraph {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
        };
        for (path, lexed, test_spans) in files {
            let tree = parser::parse(&lexed.tokens);
            let file_idx = g.files.len();
            let mut fn_ids = Vec::with_capacity(tree.fns.len());
            for (item, f) in tree.fns.iter().enumerate() {
                let id = g.fns.len();
                g.fns.push(FnSym {
                    file: file_idx,
                    item,
                    calls: Vec::new(),
                    direct_locks: Vec::new(),
                    all_locks: Vec::new(),
                    relaxed_loads: Vec::new(),
                    sinks: Vec::new(),
                    hash_sources: Vec::new(),
                });
                g.by_name.entry(f.name.clone()).or_default().push(id);
                fn_ids.push(id);
            }
            g.files.push(FileSyms {
                path,
                lexed,
                tree,
                test_spans,
                fn_ids,
            });
        }
        g
    }

    /// The `FnItem` behind a global fn id.
    pub fn item(&self, id: usize) -> &parser::FnItem {
        let f = &self.fns[id];
        &self.files[f.file].tree.fns[f.item]
    }

    /// `"file:line fn name"` — a stable human label for diagnostics.
    pub fn label(&self, id: usize) -> String {
        let item = self.item(id);
        match &item.self_type {
            Some(t) => format!("{}::{}", t, item.name),
            None => item.name.clone(),
        }
    }

    /// Global fn id for the innermost fn containing token `i` of `file`.
    pub fn enclosing(&self, file: usize, i: usize) -> Option<usize> {
        let fs = &self.files[file];
        fs.tree.enclosing_fn(i).map(|item| fs.fn_ids[item])
    }

    /// Renders the graph as JSON (schema 1 of the symbol dump): one entry
    /// per function with identity, call-resolution tallies, and the
    /// analysis summaries. Deterministic: files and fns in scan order,
    /// which `workspace_files` already sorts.
    pub fn render_json(&self) -> String {
        use tane_util::Json;
        let fns: Vec<Json> = self
            .fns
            .iter()
            .enumerate()
            .map(|(id, f)| {
                let item = self.item(id);
                let (mut resolved, mut ambiguous, mut external) = (0u32, 0u32, 0u32);
                for c in &f.calls {
                    match c.resolution {
                        Resolution::Resolved(_) => resolved += 1,
                        Resolution::Ambiguous(_) => ambiguous += 1,
                        Resolution::External => external += 1,
                    }
                }
                Json::obj([
                    ("name", Json::Str(item.name.clone())),
                    (
                        "self_type",
                        match &item.self_type {
                            Some(t) => Json::Str(t.clone()),
                            None => Json::Null,
                        },
                    ),
                    (
                        "module",
                        Json::Arr(item.module.iter().map(|m| Json::Str(m.clone())).collect()),
                    ),
                    ("file", Json::Str(self.files[f.file].path.clone())),
                    ("line", Json::Num(item.line as f64)),
                    ("is_method", Json::Bool(item.is_method)),
                    ("closures", Json::Num(item.closures as f64)),
                    ("calls_resolved", Json::Num(resolved as f64)),
                    ("calls_ambiguous", Json::Num(ambiguous as f64)),
                    ("calls_external", Json::Num(external as f64)),
                    (
                        "locks_direct",
                        Json::Arr(
                            f.direct_locks
                                .iter()
                                .map(|l| Json::Str(l.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "locks_transitive",
                        Json::Arr(f.all_locks.iter().map(|l| Json::Str(l.clone())).collect()),
                    ),
                    ("relaxed_loads", Json::Num(f.relaxed_loads.len() as f64)),
                    (
                        "sinks",
                        Json::Arr(f.sinks.iter().map(|(s, _)| Json::Str(s.clone())).collect()),
                    ),
                    ("hash_sources", Json::Num(f.hash_sources.len() as f64)),
                ])
            })
            .collect();
        Json::obj([("schema", Json::Num(1.0)), ("functions", Json::Arr(fns))]).render()
    }
}
