//! Diagnostics: one violation, with human and JSON rendering.

use tane_util::Json;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule slug (`unsafe-audit`, `determinism`, `lock-discipline`,
    /// `error-hygiene`, or `lint-allow` for suppression errors).
    pub rule: &'static str,
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn new(rule: &'static str, file: &str, line: u32, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
        }
    }

    /// `file:line: [rule] message` — the shape editors jump on.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }

    pub fn render_json(&self) -> Json {
        Json::obj([
            ("rule", Json::Str(self.rule.to_string())),
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Num(self.line as f64)),
            ("message", Json::Str(self.message.clone())),
        ])
    }
}

/// The whole report: diagnostics in deterministic order plus scan counts.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    /// Sorts diagnostics by (file, line, rule, message): output is
    /// byte-identical regardless of scan or rule order — the linter holds
    /// itself to the determinism standard it enforces.
    pub fn finish(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        });
    }

    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        out.push_str(&format!(
            "tane-lint: {} violation(s) in {} file(s) scanned\n",
            self.diagnostics.len(),
            self.files_scanned
        ));
        out
    }

    /// Human rendering under `--baseline`: baselined violations stay
    /// visible (marked) but only new ones count against the run.
    pub fn render_human_ratchet(&self, is_new: &dyn Fn(&Diagnostic) -> bool) -> String {
        let mut out = String::new();
        let mut new = 0usize;
        for d in &self.diagnostics {
            out.push_str(&d.render_human());
            if is_new(d) {
                new += 1;
            } else {
                out.push_str(" [baselined]");
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "tane-lint: {} violation(s) ({new} new, {} baselined) in {} file(s) scanned\n",
            self.diagnostics.len(),
            self.diagnostics.len() - new,
            self.files_scanned
        ));
        out
    }

    pub fn render_json(&self) -> String {
        Json::obj([
            ("schema", Json::Num(2.0)),
            (
                "violations",
                Json::Arr(self.diagnostics.iter().map(|d| d.render_json()).collect()),
            ),
            ("count", Json::Num(self.diagnostics.len() as f64)),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
        ])
        .render()
    }

    /// JSON rendering under `--baseline`: schema 2 plus a `baselined`
    /// marker per violation and the ratchet tallies.
    pub fn render_json_ratchet(&self, is_new: &dyn Fn(&Diagnostic) -> bool) -> String {
        let mut new = 0usize;
        let violations: Vec<Json> = self
            .diagnostics
            .iter()
            .map(|d| {
                let fresh = is_new(d);
                if fresh {
                    new += 1;
                }
                match d.render_json() {
                    Json::Obj(mut fields) => {
                        fields.push(("baselined".to_string(), Json::Bool(!fresh)));
                        Json::Obj(fields)
                    }
                    other => other,
                }
            })
            .collect();
        Json::obj([
            ("schema", Json::Num(2.0)),
            ("violations", Json::Arr(violations)),
            ("count", Json::Num(self.diagnostics.len() as f64)),
            ("new_count", Json::Num(new as f64)),
            (
                "baselined_count",
                Json::Num((self.diagnostics.len() - new) as f64),
            ),
            ("files_scanned", Json::Num(self.files_scanned as f64)),
        ])
        .render()
    }
}
