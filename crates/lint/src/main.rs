#![forbid(unsafe_code)]
//! `tane-lint` binary: `cargo run -p tane-lint -- [FLAGS] [PATHS...]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut symbols: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value_flag =
            |slot: &mut Option<String>, args: &mut dyn Iterator<Item = String>| match args.next() {
                Some(v) => {
                    *slot = Some(v);
                    true
                }
                None => {
                    eprintln!("tane-lint: `{arg}` needs a file argument\n{USAGE}");
                    false
                }
            };
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => {
                if !value_flag(&mut baseline_path, &mut args) {
                    return ExitCode::from(2);
                }
            }
            "--write-baseline" => {
                if !value_flag(&mut write_baseline, &mut args) {
                    return ExitCode::from(2);
                }
            }
            "--symbols" => {
                if !value_flag(&mut symbols, &mut args) {
                    return ExitCode::from(2);
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("tane-lint: unknown flag `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    if baseline_path.is_some() && write_baseline.is_some() {
        eprintln!("tane-lint: `--baseline` and `--write-baseline` are mutually exclusive\n{USAGE}");
        return ExitCode::from(2);
    }
    run(json, baseline_path, write_baseline, symbols, &paths)
}

const USAGE: &str = "usage: tane-lint [--json] [--baseline FILE | --write-baseline FILE] \
    [--symbols FILE] [PATHS...]\n\
    Lints the whole workspace when no PATHS are given. Rules:\n\
    unsafe-audit, determinism, lock-discipline, lock-graph, atomics-audit,\n\
    error-hygiene.\n\
    Suppress with `// lint:allow(<rule>): <reason>`; declare lock nestings\n\
    with `// lint:lock-order(outer -> inner): <reason>`.\n\
    --baseline FILE        ratchet mode: baselined violations stay visible\n\
                           but only new ones fail the run\n\
    --write-baseline FILE  record current violations as the baseline\n\
    --symbols FILE         dump the workspace symbol graph as JSON";

fn run(
    json: bool,
    baseline_path: Option<String>,
    write_baseline: Option<String>,
    symbols: Option<String>,
    paths: &[String],
) -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tane-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = tane_lint::find_root(&cwd) else {
        eprintln!(
            "tane-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    let analysis = if paths.is_empty() {
        tane_lint::analyze_workspace(&root)
    } else {
        tane_lint::analyze_explicit(&root, paths)
    };
    let analysis = match analysis {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tane-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = &analysis.report;
    if let Some(p) = symbols {
        if let Err(e) = std::fs::write(&p, analysis.graph.render_json()) {
            eprintln!("tane-lint: cannot write symbol graph to {p}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(p) = write_baseline {
        if let Err(e) = std::fs::write(&p, tane_lint::baseline::render(report)) {
            eprintln!("tane-lint: cannot write baseline to {p}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "tane-lint: baselined {} violation(s) to {p}",
            report.diagnostics.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(p) = baseline_path {
        let text = match std::fs::read_to_string(&p) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tane-lint: cannot read baseline {p}: {e}");
                return ExitCode::from(2);
            }
        };
        let set = match tane_lint::baseline::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tane-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let ratchet = tane_lint::baseline::apply(report, &set);
        let is_new = |d: &tane_lint::diag::Diagnostic| ratchet.new.contains(d);
        if json {
            println!("{}", report.render_json_ratchet(&is_new));
        } else {
            print!("{}", report.render_human_ratchet(&is_new));
        }
        return if ratchet.new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
