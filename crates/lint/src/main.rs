#![forbid(unsafe_code)]
//! `tane-lint` binary: `cargo run -p tane-lint -- [--json] [PATHS...]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("tane-lint: unknown flag `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(arg),
        }
    }
    run(json, &paths)
}

const USAGE: &str = "usage: tane-lint [--json] [PATHS...]\n\
    Lints the whole workspace when no PATHS are given. Rules:\n\
    unsafe-audit, determinism, lock-discipline, error-hygiene.\n\
    Suppress with `// lint:allow(<rule>): <reason>`.";

fn run(json: bool, paths: &[String]) -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("tane-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = tane_lint::find_root(&cwd) else {
        eprintln!(
            "tane-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };
    let report = if paths.is_empty() {
        tane_lint::run_workspace(&root)
    } else {
        tane_lint::run_explicit(&root, paths)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tane-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
