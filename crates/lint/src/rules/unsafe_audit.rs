//! R1 `unsafe-audit`: every `unsafe` is audited, everywhere else it is
//! forbidden.
//!
//! The workspace's entire unsafe surface is the `WorkerPool` job-pointer
//! transmute (`util/src/pool.rs`) and the POSIX signal hookup
//! (`server/src/server.rs`). Those two files are the allowlist; inside
//! them, every `unsafe` block/impl/fn must carry a `// SAFETY:` comment
//! immediately above it stating the argument. Anywhere else, `unsafe` is a
//! violation outright — the compiler backs this with
//! `#![forbid(unsafe_code)]` on every other crate, and the lint keeps the
//! allowlisted crates honest about *scoped* `#[allow]`s.

use super::Ctx;
use crate::diag::Diagnostic;
use crate::RULE_UNSAFE;

/// Files in which `unsafe` may appear at all (matched by path suffix).
pub const UNSAFE_ALLOWLIST: &[&str] = &["crates/util/src/pool.rs", "crates/server/src/server.rs"];

pub fn run(ctx: &Ctx) -> Vec<Diagnostic> {
    let allowed = UNSAFE_ALLOWLIST.iter().any(|s| ctx.path.ends_with(s));
    let mut out = Vec::new();
    for t in ctx.toks.iter().filter(|t| t.is_ident("unsafe")) {
        if !allowed {
            out.push(Diagnostic::new(
                RULE_UNSAFE,
                ctx.path,
                t.line,
                "`unsafe` is forbidden outside the audited allowlist \
                 (util/src/pool.rs, server/src/server.rs)",
            ));
        } else if !ctx.comment_above_contains(t.line, "SAFETY:") {
            out.push(Diagnostic::new(
                RULE_UNSAFE,
                ctx.path,
                t.line,
                "`unsafe` without a `// SAFETY:` comment immediately above \
                 stating the soundness argument",
            ));
        }
    }
    out
}
