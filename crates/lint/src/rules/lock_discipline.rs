//! R3 `lock-discipline`: every lock nesting must have a declared order;
//! poison is a decision, not a crash.
//!
//! v2 derives the lock-order graph from the code instead of trusting a
//! hand-maintained table. The per-file scan tracks live guards exactly as
//! before — `let`-bound guards live to end of scope or `drop(guard)`,
//! temporaries to the end of their statement — but on top of the direct
//! check (acquiring `b` with a guard on `a` live ⇒ edge `a → b`) it now
//! emits **interprocedural** edges: a call made while a guard is live
//! contributes `held → l` for every lock `l` the callee transitively
//! acquires (via the symbol graph's `all_locks` fixpoint). A function
//! holding `shard` that calls a helper acquiring `done` yields the
//! `shard → done` edge even when the helper lives in another file or
//! crate.
//!
//! Every derived edge must be covered by a declaration:
//!
//! ```text
//! // lint:lock-order(outer -> inner): why this nesting is safe
//! ```
//!
//! placed next to a witness (by convention, the file where the nesting
//! happens — that keeps single-file runs coherent). Declarations are
//! source directives, not a const in the linter, so they travel with the
//! code they justify; `rules/lock_graph.rs` (R6) checks the global shape —
//! cycles in the derived graph and stale declarations.
//!
//! Poison remains scoped to the server and partition crates: `.lock()
//! .unwrap()` there must recover (`unwrap_or_else(|e| e.into_inner())`) or
//! carry a `// poison:` justification. The pool and search runtime
//! deliberately propagate poison (a panicked worker must not hand out its
//! half-written scratch), which is why they sit outside this scope.

use super::Ctx;
use crate::callgraph::Resolution;
use crate::diag::Diagnostic;
use crate::lexer::{Kind, Tok};
use crate::symbols::SymbolGraph;
use crate::RULE_LOCK;

/// Crates where poison handling is enforced. Edge *derivation* is
/// workspace-wide; this only scopes the poison check.
pub const POISON_SCOPES: &[&str] = &["crates/server/src", "crates/partition/src"];

pub fn in_scope(path: &str) -> bool {
    POISON_SCOPES.iter().any(|s| path.contains(s))
}

/// One guard-held-while-acquiring fact, with its witness.
#[derive(Debug, Clone)]
pub struct DerivedEdge {
    pub outer: String,
    pub inner: String,
    pub file: String,
    pub line: u32,
    /// For interprocedural edges: the callee that (transitively) acquires
    /// `inner`. `None` for a direct acquisition.
    pub via: Option<String>,
}

/// A `lint:lock-order(outer -> inner)` declaration parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDecl {
    pub outer: String,
    pub inner: String,
    pub file: String,
    pub line: u32,
}

/// Parses lock-order directives from a file's comments. Anchored like
/// `lint:allow`: the comment body must start with `lint:lock-order(`.
pub fn declarations(
    path: &str,
    comments: &[crate::lexer::Comment],
) -> (Vec<LockDecl>, Vec<Diagnostic>) {
    let mut decls = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        let body = c
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_ascii_start();
        let Some(rest) = body.strip_prefix("lint:lock-order(") else {
            continue;
        };
        let Some(end) = rest.find(')') else {
            diags.push(Diagnostic::new(
                RULE_LOCK,
                path,
                c.start_line,
                "malformed `lint:lock-order(...)`: missing closing parenthesis",
            ));
            continue;
        };
        let spec = &rest[..end];
        let Some((outer, inner)) = spec.split_once("->") else {
            diags.push(Diagnostic::new(
                RULE_LOCK,
                path,
                c.start_line,
                "malformed `lint:lock-order(...)`: expected `outer -> inner`",
            ));
            continue;
        };
        decls.push(LockDecl {
            outer: outer.trim().to_string(),
            inner: inner.trim().to_string(),
            file: path.to_string(),
            line: c.start_line,
        });
    }
    (decls, diags)
}

#[derive(Debug)]
struct Guard {
    /// Binding names (for `drop(name)` matching); empty for temporaries.
    names: Vec<String>,
    /// Lock identity: the receiver before `.lock()`.
    id: String,
    /// Brace depth at which the guard lives; dies when depth drops below.
    depth: i32,
}

#[derive(Debug, Default)]
struct PendingLet {
    names: Vec<String>,
    past_eq: bool,
    locked: Vec<(String, u32)>,
}

/// Scans one file: returns the derived edges witnessed in it plus poison
/// diagnostics (the latter only when the file is in [`POISON_SCOPES`]).
pub fn scan(ctx: &Ctx, g: &SymbolGraph, file: usize) -> (Vec<DerivedEdge>, Vec<Diagnostic>) {
    let toks = ctx.toks;
    let mut edges = Vec::new();
    let mut out = Vec::new();
    let poison_scoped = in_scope(ctx.path);
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut temps: Vec<Guard> = Vec::new();
    let mut pending: Option<PendingLet> = None;

    // tok index → resolved callee ids, for interprocedural edges.
    let calls: std::collections::BTreeMap<usize, &[usize]> = g.files[file]
        .fn_ids
        .iter()
        .flat_map(|&fid| g.fns[fid].calls.iter())
        .filter_map(|c| match &c.resolution {
            Resolution::Resolved(ids) => Some((c.tok, ids.as_slice())),
            _ => None,
        })
        .collect();

    let mut i = 0;
    while i < toks.len() {
        if ctx.in_test(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            // An `if let`/`while let` guard becomes durable in its block.
            finalize_let(&mut pending, &mut guards, depth);
            temps.clear();
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            temps.clear();
        } else if t.is_punct(';') {
            finalize_let(&mut pending, &mut guards, depth);
            temps.clear();
        } else if t.is_ident("let") {
            pending = Some(PendingLet::default());
        } else if t.is_punct('=') {
            if let Some(p) = pending.as_mut() {
                p.past_eq = true;
            }
        } else if t.kind == Kind::Ident {
            if let Some(p) = pending.as_mut() {
                if !p.past_eq && !super::is_binding_noise(&t.text) {
                    p.names.push(t.text.clone());
                }
            }
            // drop(name) releases the named guard early.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                let name = &toks[i + 2].text;
                guards.retain(|g| !g.names.iter().any(|n| n == name));
            }
            if let Some(id) = acquisition(toks, i) {
                for held in guards.iter().chain(temps.iter()) {
                    edges.push(DerivedEdge {
                        outer: held.id.clone(),
                        inner: id.clone(),
                        file: ctx.path.to_string(),
                        line: t.line,
                        via: None,
                    });
                }
                if poison_scoped {
                    poison_check(ctx, toks, i, &id, &mut out);
                }
                // A `let`-bound guard is durable only when the call chain
                // ends at the acquisition (plus unwrap-family): a chain
                // that continues (`.lock().expect(..).pop_front()`) binds
                // a derived value and the guard dies with the statement.
                let durable_binding =
                    matches!(pending.as_mut(), Some(p) if p.past_eq) && chain_ends(toks, i);
                if durable_binding {
                    if let Some(p) = pending.as_mut() {
                        p.locked.push((id, t.line));
                    }
                } else {
                    temps.push(Guard {
                        names: Vec::new(),
                        id,
                        depth,
                    });
                }
            } else if let Some(callees) = calls.get(&i) {
                // Interprocedural: a resolved call made with guards live
                // contributes an edge per transitive lock of the callee.
                for &callee in callees.iter() {
                    for l in &g.fns[callee].all_locks {
                        for held in guards.iter().chain(temps.iter()) {
                            edges.push(DerivedEdge {
                                outer: held.id.clone(),
                                inner: l.clone(),
                                file: ctx.path.to_string(),
                                line: t.line,
                                via: Some(g.label(callee)),
                            });
                        }
                    }
                }
                // A resolved call to a guard-returning helper — by the
                // workspace convention, a method *named* `lock`/`read`/
                // `write` (`let g = self.lock();`) — binds the callee's
                // locks as a live guard here, durable under the same
                // let-chain rules as a direct acquisition.
                if matches!(t.text.as_str(), "lock" | "read" | "write") {
                    let after = toks
                        .get(i + 1)
                        .filter(|n| n.is_punct('('))
                        .and_then(|_| super::matching(toks, i + 1, '(', ')'))
                        .map(|c| c + 1);
                    if let Some(after) = after {
                        let durable = matches!(pending.as_ref(), Some(p) if p.past_eq)
                            && chain_ends_at(toks, after);
                        let ids: Vec<String> = callees
                            .iter()
                            .flat_map(|&c| g.fns[c].all_locks.iter().cloned())
                            .collect();
                        for id in ids {
                            if durable {
                                if let Some(p) = pending.as_mut() {
                                    p.locked.push((id, t.line));
                                }
                            } else {
                                temps.push(Guard {
                                    names: Vec::new(),
                                    id,
                                    depth,
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    (edges, out)
}

fn finalize_let(pending: &mut Option<PendingLet>, guards: &mut Vec<Guard>, depth: i32) {
    if let Some(p) = pending.take() {
        for (id, _line) in p.locked {
            guards.push(Guard {
                names: p.names.clone(),
                id,
                depth,
            });
        }
    }
}

/// Returns the lock name if token `i` is a guard acquisition: `.lock()`,
/// or the zero-argument `.read()` / `.write()` of an `RwLock` (I/O
/// `read`/`write` always take a buffer, so empty parens disambiguate).
///
/// The receiver identity is the identifier before the dot
/// (`self.inner.lock()` → `inner`), looking through an index expression
/// (`queues[worker].lock()` → `queues` — every element shares one
/// discipline) or a call (`self.shard_for(k).lock()` → `<shard_for>`);
/// `"<expr>"` for anything else. A `self` receiver (`self.lock()`) is
/// *not* an acquisition — `Mutex` is never `Self`, so that is a call to a
/// guard-returning helper, and its lock identity comes from the callee's
/// summary through the call graph.
pub fn acquisition(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
    if !is_acq {
        return None;
    }
    let id = match toks.get(i.wrapping_sub(2)) {
        Some(r)
            if r.is_ident("self") && !i.checked_sub(3).is_some_and(|p| toks[p].is_punct('.')) =>
        {
            return None;
        }
        Some(r) if r.kind == Kind::Ident => r.text.clone(),
        Some(r) if r.is_punct(']') => match ident_before_matching(toks, i - 2, '[', ']') {
            Some(name) => name,
            None => "<expr>".to_string(),
        },
        Some(r) if r.is_punct(')') => match ident_before_matching(toks, i - 2, '(', ')') {
            Some(name) => format!("<{name}>"),
            None => "<expr>".to_string(),
        },
        _ => "<expr>".to_string(),
    };
    Some(id)
}

/// Walks back from a closing bracket at `close` to its opener, returning
/// the identifier right before it (`queues[worker]` → `queues`).
fn ident_before_matching(toks: &[Tok], close: usize, open: char, close_c: char) -> Option<String> {
    let mut depth = 0i32;
    let mut j = close;
    loop {
        if toks[j].is_punct(close_c) {
            depth += 1;
        } else if toks[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j = j.checked_sub(1)?;
    }
    let prev = j.checked_sub(1)?;
    (toks[prev].kind == Kind::Ident).then(|| toks[prev].text.clone())
}

/// True when the postfix chain ends after `.lock()` plus any unwrap-family
/// adapters — i.e. the binding really holds the guard.
fn chain_ends(toks: &[Tok], i: usize) -> bool {
    // i is the `lock` ident; i+1 '(' ; i+2 ')'.
    chain_ends_at(toks, i + 3)
}

/// Same, starting just past an arbitrary call's closing paren.
fn chain_ends_at(toks: &[Tok], start: usize) -> bool {
    let mut j = start;
    loop {
        if !toks.get(j).is_some_and(|t| t.is_punct('.')) {
            return true; // `;`, `?`, `}` — chain over, guard bound
        }
        let Some(m) = toks.get(j + 1) else {
            return true;
        };
        let unwrapish = matches!(
            m.text.as_str(),
            "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "unwrap_or_default"
        );
        if !unwrapish || !toks.get(j + 2).is_some_and(|t| t.is_punct('(')) {
            return false; // chain continues past the guard — temporary
        }
        match super::matching(toks, j + 2, '(', ')') {
            Some(close) => j = close + 1,
            None => return true,
        }
    }
}

/// Flags `.lock().unwrap()` / `.lock().expect(..)` unless a `poison`
/// comment sits on or directly above the line.
fn poison_check(ctx: &Ctx, toks: &[Tok], i: usize, id: &str, out: &mut Vec<Diagnostic>) {
    // i is the `lock` ident; i+1 '(' , i+2 ')'.
    let Some(dot) = toks.get(i + 3) else { return };
    if !dot.is_punct('.') {
        return;
    }
    let Some(m) = toks.get(i + 4) else { return };
    let bad = (m.is_ident("unwrap")
        && toks.get(i + 5).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 6).is_some_and(|n| n.is_punct(')')))
        || (m.is_ident("expect") && toks.get(i + 5).is_some_and(|n| n.is_punct('(')));
    if bad && !ctx.comment_above_contains(m.line, "poison") {
        out.push(Diagnostic::new(
            RULE_LOCK,
            ctx.path,
            m.line,
            format!(
                "`{id}.{}()` propagates mutex poisoning into this thread; recover \
                 with `unwrap_or_else(|e| e.into_inner())` or document the \
                 propagation with a `// poison:` comment",
                m.text
            ),
        ));
    }
}
