//! R3 `lock-discipline`: no undeclared lock nesting, no unhandled poison.
//!
//! Two crates hold multiple locks: the server (cache, queue, registry,
//! metrics, per-flight slots) and the partition crate's concurrent
//! segment store (clock queue, cache shards, single-flight slots, handle
//! cache, snapshot tracker — DESIGN §13). Two invariants keep them
//! deadlock-free and panic-tolerant:
//!
//! 1. **Nesting must be declared.** Acquiring a lock while a guard from
//!    another lock is live is only legal for pairs in [`LOCK_ORDER`]
//!    (outer acquired before inner, everywhere). The scan is
//!    intra-function: guards from `let` bindings live to end of scope or
//!    an explicit `drop(guard)`; guards from temporaries live to the end
//!    of their statement. Cross-function nesting (f locks, calls g which
//!    locks) is out of reach for a token scan — the defense there is the
//!    code-structure rule that `publish` drops its guard before waking
//!    waiters, which this rule protects from regressing *within* each
//!    function.
//! 2. **Poison is a decision, not a crash.** `.lock().unwrap()` /
//!    `.lock().expect(...)` turns one panicking thread into a cascade of
//!    panicking request handlers. Handlers must either recover
//!    (`unwrap_or_else(|e| e.into_inner())` — every mutex-guarded
//!    structure in the server tolerates this) or carry an explicit
//!    `// poison:` comment arguing why propagation is right.

use super::{is_binding_noise, Ctx};
use crate::diag::Diagnostic;
use crate::lexer::{Kind, Tok};
use crate::RULE_LOCK;

pub const SCOPES: &[&str] = &["crates/server/src", "crates/partition/src"];

/// Declared legal nestings: (outer, inner) lock names. The server still
/// holds at most one lock at a time by design (`publish` drops the cache
/// guard before filling the flight). The segment store declares exactly
/// two nestings, forming the total order `clock < shard < done`:
///
/// * `("clock", "shard")` — eviction walks the clock queue and dips into
///   the owning shard per popped key; `seal_level` enqueues a level under
///   the same order.
/// * `("shard", "done")` — publishing a loaded partition installs the
///   cache entry and completes the single-flight slot in one critical
///   section, so no reader can observe the `Loading` marker after its
///   waiters were woken.
///
/// Growing this table is the explicit, reviewed act the rule exists to
/// force.
pub const LOCK_ORDER: &[(&str, &str)] = &[("clock", "shard"), ("shard", "done")];

pub fn in_scope(path: &str) -> bool {
    SCOPES.iter().any(|s| path.contains(s))
}

#[derive(Debug)]
struct Guard {
    /// Binding names (for `drop(name)` matching); empty for temporaries.
    names: Vec<String>,
    /// Lock identity: the receiver field/variable name before `.lock()`.
    id: String,
    /// Brace depth at which the guard lives; dies when depth drops below.
    depth: i32,
    line: u32,
}

#[derive(Debug, Default)]
struct PendingLet {
    names: Vec<String>,
    past_eq: bool,
    locked: Vec<(String, u32)>,
}

pub fn run(ctx: &Ctx) -> Vec<Diagnostic> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut temps: Vec<Guard> = Vec::new();
    let mut pending: Option<PendingLet> = None;

    let mut i = 0;
    while i < toks.len() {
        if ctx.in_test(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            // An `if let`/`while let` guard becomes durable in its block.
            finalize_let(&mut pending, &mut guards, depth);
            temps.clear();
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
            temps.clear();
        } else if t.is_punct(';') {
            finalize_let(&mut pending, &mut guards, depth);
            temps.clear();
        } else if t.is_ident("let") {
            pending = Some(PendingLet::default());
        } else if t.is_punct('=') {
            if let Some(p) = pending.as_mut() {
                p.past_eq = true;
            }
        } else if t.kind == Kind::Ident {
            if let Some(p) = pending.as_mut() {
                if !p.past_eq && !is_binding_noise(&t.text) {
                    p.names.push(t.text.clone());
                }
            }
            // drop(name) releases the named guard early.
            if t.is_ident("drop")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.kind == Kind::Ident)
                && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
            {
                let name = &toks[i + 2].text;
                guards.retain(|g| !g.names.iter().any(|n| n == name));
            }
            if let Some(id) = acquisition(toks, i) {
                // Nested acquisition check against every live guard.
                for held in guards.iter().chain(temps.iter()) {
                    let declared = LOCK_ORDER
                        .iter()
                        .any(|&(outer, inner)| outer == held.id && inner == id);
                    if !declared {
                        out.push(Diagnostic::new(
                            RULE_LOCK,
                            ctx.path,
                            t.line,
                            format!(
                                "acquiring `{id}` while holding `{}` (locked on line {}) \
                                 — nesting must be declared in tane-lint's LOCK_ORDER \
                                 table or the guard dropped first",
                                held.id, held.line
                            ),
                        ));
                    }
                }
                poison_check(ctx, toks, i, &id, &mut out);
                match pending.as_mut() {
                    Some(p) if p.past_eq => p.locked.push((id, t.line)),
                    _ => temps.push(Guard {
                        names: Vec::new(),
                        id,
                        depth,
                        line: t.line,
                    }),
                }
            }
        }
        i += 1;
    }
    out
}

fn finalize_let(pending: &mut Option<PendingLet>, guards: &mut Vec<Guard>, depth: i32) {
    if let Some(p) = pending.take() {
        for (id, line) in p.locked {
            guards.push(Guard {
                names: p.names.clone(),
                id,
                depth,
                line,
            });
        }
    }
}

/// Returns the lock name if token `i` is a guard acquisition: `.lock()`,
/// or the zero-argument `.read()` / `.write()` of an `RwLock` (I/O
/// `read`/`write` always take a buffer, so empty parens disambiguate).
fn acquisition(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    let is_acq = (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
        && i > 0
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
    if !is_acq {
        return None;
    }
    // Receiver name: the identifier before the dot (`self.inner.lock()`
    // → `inner`); fall back for parenthesized expressions.
    let id = match toks.get(i.wrapping_sub(2)) {
        Some(r) if r.kind == Kind::Ident => r.text.clone(),
        _ => "<expr>".to_string(),
    };
    Some(id)
}

/// Flags `.lock().unwrap()` / `.lock().expect(..)` unless a `poison`
/// comment sits on or directly above the line.
fn poison_check(ctx: &Ctx, toks: &[Tok], i: usize, id: &str, out: &mut Vec<Diagnostic>) {
    // i is the `lock` ident; i+1 '(' , i+2 ')'.
    let Some(dot) = toks.get(i + 3) else { return };
    if !dot.is_punct('.') {
        return;
    }
    let Some(m) = toks.get(i + 4) else { return };
    let bad = (m.is_ident("unwrap")
        && toks.get(i + 5).is_some_and(|n| n.is_punct('('))
        && toks.get(i + 6).is_some_and(|n| n.is_punct(')')))
        || (m.is_ident("expect") && toks.get(i + 5).is_some_and(|n| n.is_punct('(')));
    if bad && !ctx.comment_above_contains(m.line, "poison") {
        out.push(Diagnostic::new(
            RULE_LOCK,
            ctx.path,
            m.line,
            format!(
                "`{id}.{}()` propagates mutex poisoning into this thread; recover \
                 with `unwrap_or_else(|e| e.into_inner())` or document the \
                 propagation with a `// poison:` comment",
                m.text
            ),
        ));
    }
}
