//! R5 `atomics-audit`: every explicit memory ordering is an argument, and
//! the argument must be written down.
//!
//! The workspace leans on atomics in exactly the places where a data race
//! would be silent: the pool's counter accumulation, the segment store's
//! cache accounting and disk counters. Two checks:
//!
//! 1. **Justification.** Every `Ordering::Relaxed`/`Acquire`/`Release`/
//!    `AcqRel`/`SeqCst` site in the scoped crates must carry an
//!    `// ORDERING:` comment — on the site's line, on the comment run
//!    directly above it, or (covering every site in the function) above
//!    the enclosing `fn`. The comment states *why this ordering is
//!    sufficient* — typically which happens-before edge makes the value
//!    exact by the time it is read.
//!
//! 2. **Relaxed on result paths.** A `.load(Ordering::Relaxed)` in a
//!    function whose return value flows (via resolved call edges) into a
//!    determinism-audited sink (`TaneStats`, `TaneResult`, ...) is flagged
//!    regardless of comments: counters published to results must be read
//!    with `Acquire` (or stronger) so the join/publish edge makes them
//!    exact — a Relaxed read is allowed to return a stale value, which
//!    voids the byte-identical-results contract (DESIGN §9).

use super::Ctx;
use crate::callgraph;
use crate::diag::Diagnostic;
use crate::symbols::SymbolGraph;
use crate::RULE_ATOMICS;

/// Crates whose atomics are audited.
pub const SCOPES: &[&str] = &["crates/util/src", "crates/core/src", "crates/partition/src"];

/// Atomic memory orderings — distinguishes `sync::atomic::Ordering` from
/// `cmp::Ordering` (whose variants are `Less`/`Equal`/`Greater`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

pub fn in_scope(path: &str) -> bool {
    SCOPES.iter().any(|s| path.contains(s))
}

/// Check 1, per file: unjustified `Ordering::*` sites.
pub fn ordering_comments(ctx: &Ctx, g: &SymbolGraph, file: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if !toks[i].is_ident("Ordering")
            || !toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            || !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        {
            continue;
        }
        let Some(ord) = toks
            .get(i + 3)
            .filter(|t| ATOMIC_ORDERINGS.contains(&t.text.as_str()))
        else {
            continue;
        };
        let line = toks[i].line;
        let site_justified = ctx.comment_above_contains(line, "ORDERING:");
        let fn_justified = g
            .enclosing(file, i)
            .is_some_and(|f| ctx.comment_above_contains(g.item(f).line, "ORDERING:"));
        if !site_justified && !fn_justified {
            out.push(Diagnostic::new(
                RULE_ATOMICS,
                ctx.path,
                line,
                format!(
                    "`Ordering::{}` without an `// ORDERING:` justification; state \
                     which happens-before edge makes this ordering sufficient (on \
                     this line, above it, or above the enclosing fn)",
                    ord.text
                ),
            ));
        }
    }
    out
}

/// Check 2, workspace: Relaxed loads in functions reachable from sink
/// constructors. `reach` is `callgraph::reachable_from_sinks` output.
pub fn relaxed_taint(g: &SymbolGraph, reach: &[Option<Vec<usize>>]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        if f.relaxed_loads.is_empty() || !in_scope(&g.files[f.file].path) {
            continue;
        }
        let Some(path) = &reach[id] else { continue };
        let chain = callgraph::chain_label(g, path);
        for &line in &f.relaxed_loads {
            out.push(Diagnostic::new(
                RULE_ATOMICS,
                &g.files[f.file].path,
                line,
                format!(
                    "`.load(Ordering::Relaxed)` on a value that flows into a \
                     determinism-audited result (call path: {chain}); read with \
                     `Ordering::Acquire` or stronger so the publish edge makes \
                     the value exact"
                ),
            ));
        }
    }
    out
}
