//! R2 `determinism`: results must not depend on hash-iteration order or
//! the clock.
//!
//! TANE's contract (DESIGN §9) is that the dependency cover, the candidate
//! keys, and every counter are byte-identical across thread counts and
//! runs. Two things silently break that:
//!
//! 1. **Hash-map iteration feeding results.** Iterating a
//!    `HashMap`/`FxHashMap` yields an arbitrary order; if that order
//!    reaches a result or serialization path, output becomes
//!    hasher-dependent. v1 policed a fixed file list; v2 tracks the flow:
//!    every unsuppressed, uncanonicalized hash iteration anywhere in the
//!    workspace is a **taint source**, and taint propagates callee→caller
//!    through *resolved* return edges of the call graph until it reaches a
//!    function that constructs a determinism-audited sink
//!    (`LevelEvent`/`TaneResult`/`TaneStats`/`RankState` — see
//!    `callgraph::SINK_TYPES`). Only sources with such a witness chain are
//!    violations; an iteration whose order provably stays local (feeds a
//!    `sort`, a `BTreeMap`, an order-insensitive reduction, or never
//!    reaches a sink through resolved calls) is fine. A call edge whose
//!    call site canonicalizes the returned data breaks the chain.
//!
//! 2. **Reading the clock in search code.** `Instant::now`/
//!    `SystemTime::now` outside the dedicated timing modules means elapsed
//!    time *could* steer a search decision (adaptive cutoffs, time-based
//!    eviction), which no determinism test would catch reliably. Timing
//!    belongs in `tane_util::timing` and the stats structs.

use super::Ctx;
use crate::diag::Diagnostic;
use crate::lexer::Kind;
use crate::RULE_DETERMINISM;

/// Clock reads are policed in everything that feeds the search, with the
/// timing infrastructure itself allowlisted.
pub const CLOCK_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/partition/src",
    "crates/relation/src",
    "crates/util/src",
    "crates/delta/src",
];

/// The modules whose whole purpose is reading the clock: the `Timer`
/// abstraction and the worker pool's busy/spin/stall-time accounting. Both
/// only ever *report* durations (TaneStats), never branch on them — in
/// particular the pool's steal loop is bounded by probe counts and queue
/// emptiness, not elapsed time.
pub const CLOCK_ALLOWLIST: &[&str] = &["crates/util/src/timing.rs", "crates/util/src/pool.rs"];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

pub fn clock_in_scope(path: &str) -> bool {
    CLOCK_SCOPE.iter().any(|s| path.contains(s))
        && !CLOCK_ALLOWLIST.iter().any(|s| path.ends_with(s))
}

/// One hash-iteration taint source.
#[derive(Debug, Clone)]
pub struct HashSource {
    /// Token index of the iteration site.
    pub tok: usize,
    pub line: u32,
    /// The hash-typed name being iterated.
    pub name: String,
    /// How (`iter`, `keys`, ..., or `for-loop`).
    pub how: String,
}

/// Collects every name in the file that is visibly hash-typed: fields and
/// typed bindings (`name: FxHashMap<..>`), and `let` bindings initialized
/// from a hash-type constructor (`let m = FxHashMap::default()`).
fn hash_names(ctx: &Ctx) -> Vec<String> {
    let toks = ctx.toks;
    let mut names = Vec::new();
    for i in 0..toks.len() {
        // `name : [path::]HashType <`
        if toks[i].kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| !t.is_punct(':'))
        {
            let mut j = i + 2;
            // Walk a type path: idents, `::`, and reference sigils
            // (`&'a mut`), giving up at anything else.
            while j < toks.len() && j < i + 12 {
                match &toks[j] {
                    t if t.is_punct('&') || t.kind == Kind::Lifetime || t.is_ident("mut") => {
                        j += 1;
                    }
                    t if t.kind == Kind::Ident => {
                        if HASH_TYPES.contains(&t.text.as_str())
                            && toks.get(j + 1).is_some_and(|n| n.is_punct('<'))
                        {
                            names.push(toks[i].text.clone());
                        }
                        j += 1;
                    }
                    t if t.is_punct(':') => j += 1,
                    _ => break,
                }
            }
        }
        // `let [mut] name = HashType::...`
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == Kind::Ident)
                && toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                && toks
                    .get(j + 2)
                    .is_some_and(|t| HASH_TYPES.contains(&t.text.as_str()))
            {
                names.push(toks[j].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Extracts the file's taint sources: hash iterations with no visible
/// local canonicalization, outside test code. Suppression filtering is the
/// caller's job (it must happen *before* propagation, so a documented
/// `lint:allow` kills the whole downstream chain, not just the local
/// report).
pub fn sources(ctx: &Ctx) -> Vec<HashSource> {
    let names = hash_names(ctx);
    let mut out = Vec::new();
    if names.is_empty() {
        return out;
    }
    let toks = ctx.toks;
    let tracked =
        |t: &crate::lexer::Tok| t.kind == Kind::Ident && names.iter().any(|n| n == &t.text);
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        // `name.iter()` and friends.
        let mut site = None;
        if tracked(&toks[i])
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            site = Some((i + 2, toks[i].text.clone(), toks[i + 2].text.clone()));
        }
        // `for pat in [&][mut] name {`
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if toks.get(j).is_some_and(tracked) && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
            {
                site = Some((j, toks[j].text.clone(), "for-loop".to_string()));
            }
        }
        let Some((at, name, how)) = site else {
            continue;
        };
        if canonicalized_downstream(toks, at) {
            continue;
        }
        out.push(HashSource {
            tok: at,
            line: toks[at].line,
            name,
            how,
        });
    }
    out
}

/// True if, within the rest of this statement or the following one, the
/// data at token `from` is visibly canonicalized (`sort*`, `BTreeMap`,
/// `BTreeSet`) or consumed order-insensitively
/// (`min*`/`max*`/`sum`/`count`/`all`/`any`). Used both at iteration sites
/// and at call sites when deciding whether taint crosses a return edge.
pub fn canonicalized_downstream(toks: &[crate::lexer::Tok], from: usize) -> bool {
    let mut semis = 0;
    let mut depth = 0i32;
    for t in toks.iter().skip(from).take(90) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            // Fell out of the enclosing block: nothing past here is
            // downstream of the iteration.
            if depth < 0 {
                return false;
            }
        }
        if t.is_punct(';') {
            semis += 1;
            if semis == 2 {
                return false;
            }
            continue;
        }
        if t.kind == Kind::Ident {
            let w = t.text.as_str();
            if w.starts_with("sort")
                || w.starts_with("min")
                || w.starts_with("max")
                || matches!(w, "BTreeMap" | "BTreeSet" | "sum" | "count" | "all" | "any")
            {
                return true;
            }
        }
    }
    false
}

/// The clock half of the rule, still file-scoped.
pub fn clock_run(ctx: &Ctx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = ctx.toks;
    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let clock = toks[i].is_ident("Instant") || toks[i].is_ident("SystemTime");
        if clock
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            out.push(Diagnostic::new(
                RULE_DETERMINISM,
                ctx.path,
                toks[i].line,
                format!(
                    "`{}::now` outside the timing modules: the clock must never \
                     steer search decisions — measure through `tane_util::timing` \
                     and report via stats",
                    toks[i].text
                ),
            ));
        }
    }
    out
}
