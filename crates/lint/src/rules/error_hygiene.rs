//! R4 `error-hygiene`: request-handling paths never panic.
//!
//! A panic in a handler or worker kills its thread mid-request: the client
//! sees a dropped connection, the connection-permit accounting and the
//! single-flight cache have to clean up after it, and any held mutex is
//! poisoned for everyone else. So in `crates/server/src`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`, `.unwrap()` and `.expect(..)`
//! are violations — errors must travel as values to the HTTP edge, which
//! knows how to shape them into a status code.
//!
//! Exemptions: construction-time code (functions named `new`, `start`,
//! `default`, `main`, `install_signal_handlers` — failing fast at startup
//! is correct), test code, and lock-poison handling (`.lock().unwrap()`),
//! which is R3's jurisdiction and reported once, there.

use super::Ctx;
use crate::diag::Diagnostic;
use crate::lexer::{Kind, Tok};
use crate::RULE_HYGIENE;

pub const SCOPE: &str = "crates/server/src";

/// Function names whose bodies are init-time, not request-time.
pub const INIT_FNS: &[&str] = &["new", "start", "default", "main", "install_signal_handlers"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn in_scope(path: &str) -> bool {
    path.contains(SCOPE)
}

pub fn run(ctx: &Ctx) -> Vec<Diagnostic> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    let mut depth = 0i32;
    // Stack of (fn name, brace depth of its body).
    let mut fns: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;

    for i in 0..toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending_fn.take() {
                fns.push((name, depth));
            }
        } else if t.is_punct('}') {
            if fns.last().is_some_and(|&(_, d)| d == depth) {
                fns.pop();
            }
            depth -= 1;
        } else if t.is_punct(';') {
            pending_fn = None; // trait method signature without a body
        } else if t.is_ident("fn") {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == Kind::Ident {
                    pending_fn = Some(n.text.clone());
                }
            }
        }
        let in_init = fns
            .iter()
            .any(|(name, _)| INIT_FNS.contains(&name.as_str()));
        if in_init {
            continue;
        }

        // Panic-family macros: `name!(...)`.
        if t.kind == Kind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Diagnostic::new(
                RULE_HYGIENE,
                ctx.path,
                t.line,
                format!(
                    "`{}!` in a request-handling path kills the thread mid-request; \
                     return an error value to the HTTP edge instead",
                    t.text
                ),
            ));
        }
        // `.unwrap()` / `.expect(..)` — except directly on a lock
        // acquisition, which R3 owns.
        let is_unwrap = t.is_ident("unwrap")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
        let is_expect = t.is_ident("expect") && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        if (is_unwrap || is_expect) && i > 0 && toks[i - 1].is_punct('.') && !on_lock(toks, i) {
            out.push(Diagnostic::new(
                RULE_HYGIENE,
                ctx.path,
                t.line,
                format!(
                    "`.{}(...)` in a request-handling path can panic; propagate the \
                     error (init fns and tests are exempt)",
                    t.text
                ),
            ));
        }
    }
    out
}

/// True when the call chain is `<..>.lock().unwrap()` / `.read().expect(..)`
/// etc. — lock-poison handling, reported by R3 rather than twice.
fn on_lock(toks: &[Tok], i: usize) -> bool {
    // i is unwrap/expect; i-1 is '.', so i-2/i-3/i-4 should be `) ( lockish`.
    if i < 4 {
        return false;
    }
    toks[i - 2].is_punct(')')
        && toks[i - 3].is_punct('(')
        && (toks[i - 4].is_ident("lock")
            || toks[i - 4].is_ident("read")
            || toks[i - 4].is_ident("write"))
}
