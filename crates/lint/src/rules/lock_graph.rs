//! R6 `lock-graph`: the global shape of the derived lock-order graph.
//!
//! `lock_discipline::scan` derives the edges; this pass judges the whole
//! graph:
//!
//! * **Coverage** (reported as `lock-discipline`, it is the per-witness
//!   rule): every derived edge needs a `lint:lock-order(outer -> inner)`
//!   declaration somewhere in the scanned set.
//! * **Cycles**: an edge `a → b` where `b` already reaches `a` in the
//!   derived graph is a potential deadlock — two threads taking the two
//!   paths in opposite order can block each other forever. Self-edges
//!   (`a → a`, re-acquiring a lock already held) deadlock a single thread
//!   on a non-reentrant mutex. Cycles are structural: no declaration can
//!   justify one, and `lint:allow` at the witness is the only (audited)
//!   escape.
//! * **Staleness**: a declaration with no derived witness documents a
//!   nesting that no longer exists. Stale declarations rot the discipline
//!   — the next reader trusts an ordering constraint the code stopped
//!   exercising — so they are violations too, at the declaration site.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::Diagnostic;
use crate::rules::lock_discipline::{DerivedEdge, LockDecl};
use crate::{RULE_LOCK, RULE_LOCK_GRAPH};

/// Runs the workspace checks over all derived edges and declarations.
pub fn run(edges: &[DerivedEdge], decls: &[LockDecl]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Dedup witnesses: same edge can be derived once per live guard.
    let mut seen: BTreeSet<(String, String, String, u32, Option<String>)> = BTreeSet::new();
    let mut uniq: Vec<&DerivedEdge> = Vec::new();
    for e in edges {
        if seen.insert((
            e.outer.clone(),
            e.inner.clone(),
            e.file.clone(),
            e.line,
            e.via.clone(),
        )) {
            uniq.push(e);
        }
    }

    // Adjacency over lock names, and the first witness per (outer, inner).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut first_witness: BTreeMap<(&str, &str), (&str, u32, &Option<String>)> = BTreeMap::new();
    for e in &uniq {
        adj.entry(&e.outer).or_default().insert(&e.inner);
        let w = first_witness
            .entry((&e.outer, &e.inner))
            .or_insert((&e.file, e.line, &e.via));
        if (e.file.as_str(), e.line) < (w.0, w.1) {
            *w = (&e.file, e.line, &e.via);
        }
    }

    // Coverage: every derived edge (per witness) must be declared.
    for e in &uniq {
        if e.outer == e.inner {
            continue; // reported below as a self-cycle, not as undeclared
        }
        let declared = decls
            .iter()
            .any(|d| d.outer == e.outer && d.inner == e.inner);
        if !declared {
            let via = match &e.via {
                Some(v) => format!(" (via `{v}`)"),
                None => String::new(),
            };
            out.push(Diagnostic::new(
                RULE_LOCK,
                &e.file,
                e.line,
                format!(
                    "acquiring `{}` while holding `{}`{via} derives an undeclared \
                     lock-order edge; declare it with \
                     `// lint:lock-order({} -> {}): <why>` next to this witness",
                    e.inner, e.outer, e.outer, e.inner
                ),
            ));
        }
    }

    // Cycles: an edge whose head reaches its tail closes a cycle.
    let reaches = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !visited.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    for ((outer, inner), (file, line, via)) in &first_witness {
        let cyclic = outer == inner || reaches(inner, outer);
        if cyclic {
            let via = match via {
                Some(v) => format!(" (via `{v}`)"),
                None => String::new(),
            };
            let shape = if outer == inner {
                format!("re-acquires `{outer}` while already held{via}")
            } else {
                format!(
                    "edge `{outer} -> {inner}`{via} completes a cycle: `{inner}` \
                     already reaches `{outer}` in the derived graph"
                )
            };
            out.push(Diagnostic::new(
                RULE_LOCK_GRAPH,
                file,
                *line,
                format!("potential deadlock: {shape}"),
            ));
        }
    }

    // Staleness: declarations with no derived witness.
    for d in decls {
        let witnessed = uniq
            .iter()
            .any(|e| e.outer == d.outer && e.inner == d.inner);
        if !witnessed {
            out.push(Diagnostic::new(
                RULE_LOCK_GRAPH,
                &d.file,
                d.line,
                format!(
                    "declared lock order `{} -> {}` has no derived witness in the \
                     scanned files: the nesting it documents no longer exists — \
                     remove the stale declaration",
                    d.outer, d.inner
                ),
            ));
        }
    }

    out
}
