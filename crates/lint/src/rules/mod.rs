//! Rule passes over the token stream.
//!
//! Every rule is a function `run(&Ctx) -> Vec<Diagnostic>` over one file.
//! Rules are heuristic token scans, not type checkers: they over-approximate
//! (a tracked name shadowed by a non-map local would still be flagged) and
//! the `// lint:allow(<rule>): <why>` escape hatch exists precisely so that
//! a justified exception becomes *documented* instead of silent.

pub mod atomics;
pub mod determinism;
pub mod error_hygiene;
pub mod lock_discipline;
pub mod lock_graph;
pub mod unsafe_audit;

use crate::lexer::{Comment, Lexed, Tok};

/// Everything a rule pass sees for one file.
pub struct Ctx<'a> {
    /// Repo-relative path, forward slashes.
    pub path: &'a str,
    pub toks: &'a [Tok],
    pub comments: &'a [Comment],
    /// Token-index ranges (start..end, exclusive) of `#[cfg(test)]` /
    /// `#[test]` items. Test code is exempt from every rule but R1.
    pub test_spans: Vec<(usize, usize)>,
}

impl<'a> Ctx<'a> {
    pub fn new(path: &'a str, lexed: &'a Lexed) -> Ctx<'a> {
        Ctx {
            path,
            toks: &lexed.tokens,
            comments: &lexed.comments,
            test_spans: test_spans(&lexed.tokens),
        }
    }

    /// True if token index `i` falls inside test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }

    /// The comment covering `line`, if any.
    pub fn comment_at(&self, line: u32) -> Option<&Comment> {
        self.comments
            .iter()
            .find(|c| c.start_line <= line && line <= c.end_line)
    }

    /// True if a comment containing `needle` sits on `line` or on the
    /// contiguous run of comment lines ending directly above it.
    pub fn comment_above_contains(&self, line: u32, needle: &str) -> bool {
        if self
            .comment_at(line)
            .is_some_and(|c| c.text.contains(needle))
        {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 {
            match self.comment_at(l) {
                Some(c) if c.text.contains(needle) => return true,
                Some(c) => l = c.start_line.saturating_sub(1),
                None => return false,
            }
        }
        false
    }
}

/// Finds the token spans of items guarded by a test attribute:
/// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`. An attribute
/// mentioning `not` (e.g. `#[cfg(not(test))]`) guards *production* code
/// and is ignored. The span is the brace block of the next item.
pub fn test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = match matching(toks, i + 1, '[', ']') {
                Some(c) => c,
                None => break,
            };
            let attr = &toks[i + 1..close];
            let is_test =
                attr.iter().any(|t| t.is_ident("test")) && !attr.iter().any(|t| t.is_ident("not"));
            if is_test {
                // The guarded item runs to its first brace block.
                let mut j = close + 1;
                while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('{') {
                    if let Some(end) = matching(toks, j, '{', '}') {
                        spans.push((i, end + 1));
                        i = end + 1;
                        continue;
                    }
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Index of the `close` punct matching the `open` punct at `start`.
pub fn matching(toks: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Rust keywords that can appear where a binding name is expected; never
/// tracked as names.
pub fn is_binding_noise(word: &str) -> bool {
    matches!(word, "mut" | "ref" | "box" | "Some" | "Ok" | "Err" | "None")
}
