//! Call-site extraction, approximate resolution, and the workspace
//! fixpoint summaries (transitive locks, Relaxed-load taint, hash-order
//! taint, sink construction).
//!
//! ## Resolution policy (and its soundness caveats)
//!
//! A token-level analyzer cannot do type inference, so resolution is by
//! *qualification*, most precise first:
//!
//! * `self.helper()` — methods of the enclosing `impl` type, by name.
//! * `Type::helper()` — methods of `Type` (capitalized path qualifier).
//! * `module::helper()` / bare `helper(...)` — free functions by name,
//!   only when the name is workspace-unique.
//! * `expr.method()` — any other receiver: resolved only when the method
//!   name is defined exactly once across all workspace impls *and* is not
//!   a ubiquitous std name (`get`, `len`, `insert`, ... — the deny list),
//!   since `guard.map.get()` resolving to `SegmentStore::get` would
//!   manufacture lock edges out of thin air.
//!
//! Everything else is **explicitly unresolved** — recorded, counted in the
//! symbol dump, and treated as acquiring nothing and tainting nothing.
//! That makes the analysis *under*-approximate at indirect calls (closure
//! parameters, trait objects, ambiguous names): a real edge through such a
//! call is missed, never invented. The derived lock graph therefore only
//! contains edges with a concrete witness chain, which is what lets the
//! workspace gate demand zero false deadlock cycles. The one deliberate
//! over-approximation is temporal: a callee's transitive lock set is
//! attributed to the whole call (as if every lock were held at entry),
//! which is exactly the guard-held-across-call semantics R3 wants.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Kind, Tok};
use crate::symbols::SymbolGraph;

/// How a call site resolved.
#[derive(Debug, Clone)]
pub enum Resolution {
    /// Workspace definitions this call may reach (all same-named
    /// candidates for the matched qualification).
    Resolved(Vec<usize>),
    /// Several workspace candidates, no qualification to pick one: treated
    /// as unresolved; the count is kept for the symbol dump.
    Ambiguous(usize),
    /// No workspace definition (std, closure parameter, constructor, ...).
    External,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the callee name.
    pub tok: usize,
    pub line: u32,
    pub name: String,
    pub resolution: Resolution,
}

/// Method names too generic to resolve by workspace-wide uniqueness: a
/// `.get()` on a `HashMap` must not resolve to `SegmentStore::get` just
/// because the latter is the only *workspace* `get`.
const STD_METHOD_DENY: &[&str] = &[
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "back",
    "binary_search",
    "chain",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "drop",
    "elapsed",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "find",
    "first",
    "flat_map",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "front",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "load",
    "lock",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "new",
    "next",
    "notify_all",
    "notify_one",
    "or_else",
    "or_insert",
    "parse",
    "pop",
    "pop_back",
    "pop_front",
    "position",
    "push",
    "push_back",
    "push_front",
    "push_str",
    "read",
    "recv",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "seek",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "split",
    "split_off",
    "spawn",
    "step_by",
    "store",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "take_while",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_lock",
    "try_recv",
    "try_send",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "wait",
    "wait_timeout",
    "windows",
    "write",
    "write_all",
    "zip",
];

/// Keywords that look like `name (` but are not calls.
const CALL_NOISE: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "fn", "impl", "where", "move",
    "let", "else", "dyn", "ref", "mut", "pub", "use", "box", "unsafe",
];

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(s, e)| i >= s && i < e)
}

/// Extracts and resolves every call site in every non-test function body,
/// filling `FnSym::calls`.
pub fn resolve(g: &mut SymbolGraph) {
    // (self_type, name) → fn ids, for method/self/Type:: resolution.
    let mut methods: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    let mut method_names: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut free_fns: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for id in 0..g.fns.len() {
        let item = g.item(id);
        match &item.self_type {
            Some(t) => {
                methods
                    .entry((t.clone(), item.name.clone()))
                    .or_default()
                    .push(id);
                method_names.entry(item.name.clone()).or_default().push(id);
            }
            None => free_fns.entry(item.name.clone()).or_default().push(id),
        }
    }

    for file in 0..g.files.len() {
        let toks: &[Tok] = &g.files[file].lexed.tokens;
        let mut sites: Vec<(usize, CallSite)> = Vec::new(); // (fn id, site)
        for i in 0..toks.len() {
            if toks[i].kind != Kind::Ident || CALL_NOISE.contains(&toks[i].text.as_str()) {
                continue;
            }
            // `name (` or turbofish `name ::< ... > (`.
            let open = if toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                Some(i + 1)
            } else if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
            {
                crate::rules::matching(toks, i + 3, '<', '>')
                    .filter(|c| toks.get(c + 1).is_some_and(|t| t.is_punct('(')))
                    .map(|c| c + 1)
            } else {
                None
            };
            if open.is_none() {
                continue;
            }
            // `fn name(` is a definition, `name!(` a macro (no `(` right
            // after the `!` pattern can reach here), `|name|` a param.
            if i > 0 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_punct('|')) {
                continue;
            }
            if in_spans(&g.files[file].test_spans, i) {
                continue;
            }
            let Some(caller) = g.enclosing(file, i) else {
                continue;
            };
            let name = toks[i].text.clone();
            let resolution =
                resolve_one(g, file, toks, i, &name, &methods, &method_names, &free_fns);
            sites.push((
                caller,
                CallSite {
                    tok: i,
                    line: toks[i].line,
                    name,
                    resolution,
                },
            ));
        }
        for (caller, site) in sites {
            g.fns[caller].calls.push(site);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_one(
    g: &SymbolGraph,
    file: usize,
    toks: &[Tok],
    i: usize,
    name: &str,
    methods: &BTreeMap<(String, String), Vec<usize>>,
    method_names: &BTreeMap<String, Vec<usize>>,
    free_fns: &BTreeMap<String, Vec<usize>>,
) -> Resolution {
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    // Method call: `receiver . name (`.
    if prev.is_some_and(|p| p.is_punct('.')) {
        let recv = i.checked_sub(2).map(|p| &toks[p]);
        let recv_is_self = recv.is_some_and(|r| r.is_ident("self"))
            && !i
                .checked_sub(3)
                .map(|p| &toks[p])
                .is_some_and(|t| t.is_punct('.'));
        if recv_is_self {
            // Resolve against the enclosing impl type.
            let caller = g.enclosing(file, i);
            let self_type = caller.and_then(|c| g.item(c).self_type.clone());
            if let Some(t) = self_type {
                if let Some(ids) = methods.get(&(t, name.to_string())) {
                    return Resolution::Resolved(ids.clone());
                }
            }
            return Resolution::External;
        }
        // Arbitrary receiver: unique workspace method name, deny-listed
        // std names never resolve.
        if STD_METHOD_DENY.contains(&name) {
            return Resolution::External;
        }
        return match method_names.get(name) {
            Some(ids) if ids.len() == 1 => Resolution::Resolved(ids.clone()),
            Some(ids) => Resolution::Ambiguous(ids.len()),
            None => Resolution::External,
        };
    }
    // Path call: `Qual :: name (`.
    if prev.is_some_and(|p| p.is_punct(':'))
        && i.checked_sub(2)
            .map(|p| &toks[p])
            .is_some_and(|t| t.is_punct(':'))
    {
        if let Some(q) = i
            .checked_sub(3)
            .map(|p| &toks[p])
            .filter(|t| t.kind == Kind::Ident)
        {
            if q.text.chars().next().is_some_and(char::is_uppercase) || q.is_ident("Self") {
                // `Type::name` — methods of that type. `Self::` uses the
                // enclosing impl type.
                let ty = if q.is_ident("Self") {
                    g.enclosing(file, i)
                        .and_then(|c| g.item(c).self_type.clone())
                } else {
                    Some(q.text.clone())
                };
                if let Some(ty) = ty {
                    if let Some(ids) = methods.get(&(ty, name.to_string())) {
                        return Resolution::Resolved(ids.clone());
                    }
                }
                return Resolution::External;
            }
            // `module::name` — free fns, unique-name.
            return match free_fns.get(name) {
                Some(ids) if ids.len() == 1 => Resolution::Resolved(ids.clone()),
                Some(ids) => Resolution::Ambiguous(ids.len()),
                None => Resolution::External,
            };
        }
        return Resolution::External;
    }
    // Bare call: free fns, unique-name. Capitalized bare names are tuple
    // -struct/enum constructors (`Some`, `JobPtr`), never fns here.
    if name.chars().next().is_some_and(char::is_uppercase) {
        return Resolution::External;
    }
    match free_fns.get(name) {
        Some(ids) if ids.len() == 1 => Resolution::Resolved(ids.clone()),
        Some(ids) => Resolution::Ambiguous(ids.len()),
        None => Resolution::External,
    }
}

/// Sink types whose construction makes a function a determinism-audited
/// result surface (DESIGN §9/§12): hash order and `Relaxed` loads must not
/// flow into them.
pub const SINK_TYPES: &[&str] = &["LevelEvent", "TaneResult", "TaneStats", "RankState"];

/// Fills per-fn direct summaries: direct lock acquisitions, `Relaxed`
/// loads, and sink constructions. (Hash sources are filled by the
/// determinism rule, which owns suppression/canonicalization logic.)
pub fn direct_summaries(g: &mut SymbolGraph) {
    for file in 0..g.files.len() {
        let toks: &[Tok] = &g.files[file].lexed.tokens;
        let mut found: Vec<(usize, u32, SummaryKind)> = Vec::new();
        for i in 0..toks.len() {
            if in_spans(&g.files[file].test_spans, i) {
                continue;
            }
            let Some(f) = g.enclosing(file, i) else {
                continue;
            };
            if let Some(id) = crate::rules::lock_discipline::acquisition(toks, i) {
                found.push((f, toks[i].line, SummaryKind::Lock(id)));
            }
            // `.load(Ordering::Relaxed)`
            if toks[i].is_ident("load")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("Ordering"))
                && toks.get(i + 5).is_some_and(|t| t.is_ident("Relaxed"))
            {
                found.push((f, toks[i].line, SummaryKind::Relaxed));
            }
            // `SinkType {` — struct-literal construction.
            if toks[i].kind == Kind::Ident
                && SINK_TYPES.contains(&toks[i].text.as_str())
                && toks.get(i + 1).is_some_and(|t| t.is_punct('{'))
            {
                found.push((f, toks[i].line, SummaryKind::Sink(toks[i].text.clone())));
            }
        }
        for (f, line, kind) in found {
            match kind {
                SummaryKind::Lock(id) => {
                    if !g.fns[f].direct_locks.contains(&id) {
                        g.fns[f].direct_locks.push(id);
                    }
                }
                SummaryKind::Relaxed => g.fns[f].relaxed_loads.push(line),
                SummaryKind::Sink(s) => g.fns[f].sinks.push((s, line)),
            }
        }
    }
}

enum SummaryKind {
    Lock(String),
    Relaxed,
    Sink(String),
}

/// Computes `all_locks` for every fn: direct locks plus every resolved
/// callee's, to fixpoint.
pub fn lock_fixpoint(g: &mut SymbolGraph) {
    let mut all: Vec<BTreeSet<String>> = g
        .fns
        .iter()
        .map(|f| f.direct_locks.iter().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..g.fns.len() {
            let mut add: Vec<String> = Vec::new();
            for c in &g.fns[id].calls {
                if let Resolution::Resolved(callees) = &c.resolution {
                    for &callee in callees {
                        for l in &all[callee] {
                            if !all[id].contains(l) {
                                add.push(l.clone());
                            }
                        }
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                all[id].extend(add);
            }
        }
        if !changed {
            break;
        }
    }
    for (id, set) in all.into_iter().enumerate() {
        g.fns[id].all_locks = set.into_iter().collect();
    }
}

/// For each fn, whether it is transitively *called by* a sink-constructing
/// fn — i.e. values it returns can flow into a determinism-audited result.
/// `edge_ok` filters individual call edges (the hash-taint pass drops
/// edges whose call site canonicalizes the returned order).
///
/// Returns, per fn, `Some(path)` where `path` is the call chain from a
/// sink fn down to it (sink first), or `None` when unreachable.
pub fn reachable_from_sinks(
    g: &SymbolGraph,
    edge_ok: impl Fn(usize, &CallSite) -> bool,
) -> Vec<Option<Vec<usize>>> {
    let mut parent: Vec<Option<(usize, bool)>> = vec![None; g.fns.len()]; // (parent fn, is_root)
    let mut queue: Vec<usize> = Vec::new();
    // Deterministic seed order: fn ids ascend with (file, position).
    for (id, f) in g.fns.iter().enumerate() {
        if !f.sinks.is_empty() {
            parent[id] = Some((id, true));
            queue.push(id);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let f = queue[head];
        head += 1;
        for c in &g.fns[f].calls {
            if !edge_ok(f, c) {
                continue;
            }
            if let Resolution::Resolved(callees) = &c.resolution {
                for &callee in callees {
                    if parent[callee].is_none() {
                        parent[callee] = Some((f, false));
                        queue.push(callee);
                    }
                }
            }
        }
    }
    (0..g.fns.len())
        .map(|id| {
            parent[id]?;
            let mut path = vec![id];
            let mut cur = id;
            while let Some((p, is_root)) = parent[cur] {
                if is_root {
                    break;
                }
                path.push(p);
                cur = p;
            }
            path.reverse(); // sink-most first
            Some(path)
        })
        .collect()
}

/// Renders a call chain (`sink ← ... ← leaf`) for diagnostics.
pub fn chain_label(g: &SymbolGraph, path: &[usize]) -> String {
    path.iter()
        .map(|&id| g.label(id))
        .collect::<Vec<_>>()
        .join(" ← ")
}
