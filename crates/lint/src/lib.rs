#![forbid(unsafe_code)]
//! `tane-lint` — a std-only static analyzer for the TANE workspace.
//!
//! The workspace's correctness story rests on invariants no unit test can
//! pin down forever: the determinism contract of DESIGN §9 (results
//! byte-identical across thread counts, hash seeds, and wall-clock), the
//! audited-`unsafe` discipline around the worker pool's lifetime-erasing
//! transmute, and the server's lock and panic hygiene. This crate checks
//! them *statically*, on every tier-1 run: a hand-rolled Rust lexer strips
//! comments/strings/raw strings, and four rule passes scan the token
//! stream with file/line diagnostics:
//!
//! | rule | scope | invariant |
//! |---|---|---|
//! | `unsafe-audit` | whole workspace | `unsafe` only in allowlisted files, each site `// SAFETY:`-commented |
//! | `determinism` | core, partition, relation (+util clocks) | no hash-order or clock leakage into results |
//! | `lock-discipline` | server | no undeclared lock nesting, no unhandled poison |
//! | `error-hygiene` | server | request paths return errors, never panic |
//!
//! Suppression: `// lint:allow(<rule>[, <rule>...]): <why>` on the line
//! above (or the same line as) a violation. The reason is part of the
//! syntax by convention — an allow is a documented exception, not an
//! off-switch. Unknown rule names in an allow are themselves violations,
//! so a typo cannot silently mask nothing.

pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Report};
use rules::Ctx;

pub const RULE_UNSAFE: &str = "unsafe-audit";
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCK: &str = "lock-discipline";
pub const RULE_HYGIENE: &str = "error-hygiene";
/// Meta-rule for malformed/unknown suppressions.
pub const RULE_ALLOW: &str = "lint-allow";

pub const ALL_RULES: &[&str] = &[RULE_UNSAFE, RULE_DETERMINISM, RULE_LOCK, RULE_HYGIENE];

/// Lints one file's source. `path` is the repo-relative path (forward
/// slashes) — it selects which rules apply, so callers with out-of-tree
/// content (fixtures) choose scoping by choosing the path.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let ctx = Ctx::new(path, &lexed);
    let mut diags = rules::unsafe_audit::run(&ctx);
    if rules::determinism::in_scope(path) {
        diags.extend(rules::determinism::run(&ctx));
    }
    if rules::lock_discipline::in_scope(path) {
        diags.extend(rules::lock_discipline::run(&ctx));
    }
    if rules::error_hygiene::in_scope(path) {
        diags.extend(rules::error_hygiene::run(&ctx));
    }
    let (suppressed, mut allow_diags) = suppressions(path, &lexed);
    diags.retain(|d| {
        !suppressed
            .iter()
            .any(|(rule, line)| rule == d.rule && *line == d.line)
    });
    diags.append(&mut allow_diags);
    diags
}

/// Parses `lint:allow(...)` comments. A suppression covers every line of
/// the contiguous comment run containing the directive (so the reason may
/// wrap onto continuation lines) plus the line after it — both trailing
/// and preceding placement work. Returns (suppressed (rule, line) pairs,
/// diagnostics for unknown rule names).
fn suppressions(path: &str, lexed: &lexer::Lexed) -> (Vec<(String, u32)>, Vec<Diagnostic>) {
    let mut pairs = Vec::new();
    let mut diags = Vec::new();
    for (ci, c) in lexed.comments.iter().enumerate() {
        // Directive position is anchored: the comment must *start* with
        // `lint:allow(` (after the comment sigils). Mid-sentence mentions
        // — e.g. docs describing the syntax — are not directives.
        let body = c
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_ascii_start();
        if !body.starts_with("lint:allow(") {
            continue;
        }
        let rest = &body["lint:allow(".len()..];
        let Some(end) = rest.find(')') else {
            diags.push(Diagnostic::new(
                RULE_ALLOW,
                path,
                c.start_line,
                "malformed `lint:allow(...)`: missing closing parenthesis",
            ));
            continue;
        };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !ALL_RULES.contains(&rule) {
                diags.push(Diagnostic::new(
                    RULE_ALLOW,
                    path,
                    c.start_line,
                    format!(
                        "unknown rule `{rule}` in lint:allow (known: {})",
                        ALL_RULES.join(", ")
                    ),
                ));
                continue;
            }
            let mut cover_end = c.end_line;
            for next in &lexed.comments[ci + 1..] {
                if next.start_line == cover_end + 1 {
                    cover_end = next.end_line;
                } else {
                    break;
                }
            }
            for line in c.start_line..=cover_end + 1 {
                pairs.push((rule.to_string(), line));
            }
        }
    }
    (pairs, diags)
}

/// Lints one on-disk file, using `rel` for scoping and reporting.
pub fn lint_file(root: &Path, rel: &str) -> io::Result<Vec<Diagnostic>> {
    let src = fs::read_to_string(root.join(rel))?;
    Ok(lint_source(rel, &src))
}

/// All workspace `.rs` files to lint, repo-root-relative, sorted. Skips
/// build output and the linter's own violation fixtures.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || rel.contains("tests/fixtures") {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes for stable diagnostics across platforms.
    rel.to_string_lossy().replace('\\', "/")
}

/// Lints the whole workspace under `root`.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    run_paths(root, &workspace_files(root)?)
}

/// Lints an explicit path list (files or directories, root-relative or
/// absolute).
pub fn run_explicit(root: &Path, paths: &[String]) -> io::Result<Report> {
    let mut files = Vec::new();
    for p in paths {
        let full = if Path::new(p).is_absolute() {
            PathBuf::from(p)
        } else {
            root.join(p)
        };
        if full.is_dir() {
            walk(&full, root, &mut files)?;
        } else {
            files.push(rel_path(root, &full));
        }
    }
    files.sort();
    files.dedup();
    run_paths(root, &files)
}

fn run_paths(root: &Path, files: &[String]) -> io::Result<Report> {
    let mut report = Report::default();
    for rel in files {
        report.diagnostics.extend(lint_file(root, rel)?);
        report.files_scanned += 1;
    }
    report.finish();
    Ok(report)
}

/// Walks upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
