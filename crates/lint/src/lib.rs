#![forbid(unsafe_code)]
//! `tane-lint` — a std-only static analyzer for the TANE workspace.
//!
//! The workspace's correctness story rests on invariants no unit test can
//! pin down forever: the determinism contract of DESIGN §9 (results
//! byte-identical across thread counts, hash seeds, and wall-clock), the
//! audited-`unsafe` discipline around the worker pool's lifetime-erasing
//! transmute, and the server's lock and panic hygiene. This crate checks
//! them *statically*, on every tier-1 run.
//!
//! v2 is a two-phase workspace analyzer. Phase one builds a **symbol
//! graph** over the hand-rolled lexer: a per-file item tree (modules,
//! fns, impls, nested closures) plus an approximate call graph with
//! explicit unresolved/ambiguous handling (`parser`, `symbols`,
//! `callgraph`). Phase two runs the rules — per-file token passes where
//! file scope suffices, workspace passes over the graph where the
//! invariant is interprocedural:
//!
//! | rule | scope | invariant |
//! |---|---|---|
//! | `unsafe-audit` | whole workspace | `unsafe` only in allowlisted files, each site `// SAFETY:`-commented |
//! | `determinism` | workspace (clocks: core/partition/relation/util/delta) | no hash-order taint reaching result sinks, no clock reads outside timing modules |
//! | `lock-discipline` | workspace (poison: server, partition) | every guard-held-while-acquiring edge — including through calls — declared via `lint:lock-order`, no unhandled poison |
//! | `lock-graph` | whole workspace | no cycles in the derived lock graph, no stale declarations |
//! | `atomics-audit` | util, core, partition | every `Ordering::*` justified with `// ORDERING:`, no Relaxed loads on result paths |
//! | `error-hygiene` | server | request paths return errors, never panic |
//!
//! Suppression: `// lint:allow(<rule>[, <rule>...]): <why>` on the line
//! above (or the same line as) a violation. The reason is part of the
//! syntax by convention — an allow is a documented exception, not an
//! off-switch. Unknown rule names in an allow are themselves violations,
//! so a typo cannot silently mask nothing. Suppressed hash-iteration
//! sources are dropped *before* taint propagation: a documented allow
//! covers the whole downstream chain.

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use diag::{Diagnostic, Report};
use rules::Ctx;
use symbols::SymbolGraph;

pub const RULE_UNSAFE: &str = "unsafe-audit";
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCK: &str = "lock-discipline";
pub const RULE_LOCK_GRAPH: &str = "lock-graph";
pub const RULE_ATOMICS: &str = "atomics-audit";
pub const RULE_HYGIENE: &str = "error-hygiene";
/// Meta-rule for malformed/unknown suppressions.
pub const RULE_ALLOW: &str = "lint-allow";

pub const ALL_RULES: &[&str] = &[
    RULE_UNSAFE,
    RULE_DETERMINISM,
    RULE_LOCK,
    RULE_LOCK_GRAPH,
    RULE_ATOMICS,
    RULE_HYGIENE,
];

/// A full analysis: the diagnostics plus the symbol graph they were
/// derived from (for `--symbols` dumps and tests).
pub struct Analysis {
    pub report: Report,
    pub graph: SymbolGraph,
}

/// Analyzes a set of `(path, source)` pairs as one workspace. `path` is
/// the repo-relative path (forward slashes) — it selects which rules
/// apply, so callers with out-of-tree content (fixtures) choose scoping
/// by choosing the path.
pub fn analyze_sources(sources: Vec<(String, String)>) -> Analysis {
    let mut input = Vec::new();
    for (path, src) in sources {
        let lexed = lexer::lex(&src);
        let spans = rules::test_spans(&lexed.tokens);
        input.push((path, lexed, spans));
    }
    let mut g = SymbolGraph::build(input);
    callgraph::resolve(&mut g);
    callgraph::direct_summaries(&mut g);
    callgraph::lock_fixpoint(&mut g);

    // Suppressions first: hash-taint sources must be filtered before they
    // propagate, so the maps are computed up front.
    let mut suppressed: BTreeMap<String, BTreeSet<(String, u32)>> = BTreeMap::new();
    let mut allow_diags: Vec<Diagnostic> = Vec::new();
    for fs in &g.files {
        let (pairs, mut ds) = suppressions(&fs.path, &fs.lexed);
        suppressed.entry(fs.path.clone()).or_default().extend(pairs);
        allow_diags.append(&mut ds);
    }
    let is_suppressed = |rule: &str, file: &str, line: u32| {
        suppressed
            .get(file)
            .is_some_and(|s| s.contains(&(rule.to_string(), line)))
    };

    // Per-file passes (immutable borrow of the graph); hash sources are
    // collected here and folded into the graph afterwards.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut edges: Vec<rules::lock_discipline::DerivedEdge> = Vec::new();
    let mut decls: Vec<rules::lock_discipline::LockDecl> = Vec::new();
    let mut pending_sources: Vec<(usize, rules::determinism::HashSource)> = Vec::new();
    for file in 0..g.files.len() {
        let fsy = &g.files[file];
        let ctx = Ctx {
            path: &fsy.path,
            toks: &fsy.lexed.tokens,
            comments: &fsy.lexed.comments,
            test_spans: fsy.test_spans.clone(),
        };
        diags.extend(rules::unsafe_audit::run(&ctx));
        if rules::determinism::clock_in_scope(&fsy.path) {
            diags.extend(rules::determinism::clock_run(&ctx));
        }
        if rules::error_hygiene::in_scope(&fsy.path) {
            diags.extend(rules::error_hygiene::run(&ctx));
        }
        if rules::atomics::in_scope(&fsy.path) {
            diags.extend(rules::atomics::ordering_comments(&ctx, &g, file));
        }
        let (mut es, mut poison) = rules::lock_discipline::scan(&ctx, &g, file);
        edges.append(&mut es);
        diags.append(&mut poison);
        let (mut ds, mut malformed) =
            rules::lock_discipline::declarations(&fsy.path, &fsy.lexed.comments);
        decls.append(&mut ds);
        diags.append(&mut malformed);
        for s in rules::determinism::sources(&ctx) {
            if is_suppressed(RULE_DETERMINISM, &fsy.path, s.line) {
                continue;
            }
            if let Some(f) = g.enclosing(file, s.tok) {
                pending_sources.push((f, s));
            }
        }
    }
    for (f, s) in pending_sources {
        g.fns[f].hash_sources.push((s.line, s.name, s.how));
    }

    // Workspace passes over the graph.
    diags.extend(rules::lock_graph::run(&edges, &decls));

    // Hash-order taint: sources reach sinks through resolved return edges
    // unless the call site canonicalizes the returned data.
    let reach_hash = callgraph::reachable_from_sinks(&g, |caller, c| {
        let toks = &g.files[g.fns[caller].file].lexed.tokens;
        !rules::determinism::canonicalized_downstream(toks, c.tok)
    });
    for (id, f) in g.fns.iter().enumerate() {
        if f.hash_sources.is_empty() {
            continue;
        }
        let Some(path) = &reach_hash[id] else {
            continue;
        };
        let sink = g.fns[path[0]]
            .sinks
            .first()
            .map(|(s, _)| s.clone())
            .unwrap_or_else(|| "result".to_string());
        let chain = callgraph::chain_label(&g, path);
        for (line, name, how) in &f.hash_sources {
            diags.push(Diagnostic::new(
                RULE_DETERMINISM,
                &g.files[f.file].path,
                *line,
                format!(
                    "iteration (`{how}`) over hash-keyed `{name}` leaks arbitrary \
                     order into `{sink}` (call path: {chain}); sort the output / \
                     use a BTreeMap, or justify with \
                     `// lint:allow(determinism): <why>`"
                ),
            ));
        }
    }

    // Relaxed-load taint: canonicalization does not help a stale counter,
    // so every resolved return edge propagates.
    let reach_all = callgraph::reachable_from_sinks(&g, |_, _| true);
    diags.extend(rules::atomics::relaxed_taint(&g, &reach_all));

    diags.retain(|d| !is_suppressed(d.rule, &d.file, d.line));
    diags.append(&mut allow_diags);

    let mut report = Report {
        diagnostics: diags,
        files_scanned: g.files.len(),
    };
    report.finish();
    Analysis { report, graph: g }
}

/// Lints one file's source in isolation (no cross-file edges — fixture
/// and unit-test entry point).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    analyze_sources(vec![(path.to_string(), src.to_string())])
        .report
        .diagnostics
}

/// Parses `lint:allow(...)` comments. A suppression covers every line of
/// the contiguous comment run containing the directive (so the reason may
/// wrap onto continuation lines) plus the line after it — both trailing
/// and preceding placement work. Returns (suppressed (rule, line) pairs,
/// diagnostics for unknown rule names).
fn suppressions(path: &str, lexed: &lexer::Lexed) -> (Vec<(String, u32)>, Vec<Diagnostic>) {
    let mut pairs = Vec::new();
    let mut diags = Vec::new();
    for (ci, c) in lexed.comments.iter().enumerate() {
        // Directive position is anchored: the comment must *start* with
        // `lint:allow(` (after the comment sigils). Mid-sentence mentions
        // — e.g. docs describing the syntax — are not directives.
        let body = c
            .text
            .trim_start_matches(['/', '*', '!'])
            .trim_ascii_start();
        if !body.starts_with("lint:allow(") {
            continue;
        }
        let rest = &body["lint:allow(".len()..];
        let Some(end) = rest.find(')') else {
            diags.push(Diagnostic::new(
                RULE_ALLOW,
                path,
                c.start_line,
                "malformed `lint:allow(...)`: missing closing parenthesis",
            ));
            continue;
        };
        for rule in rest[..end].split(',') {
            let rule = rule.trim();
            if !ALL_RULES.contains(&rule) {
                diags.push(Diagnostic::new(
                    RULE_ALLOW,
                    path,
                    c.start_line,
                    format!(
                        "unknown rule `{rule}` in lint:allow (known: {})",
                        ALL_RULES.join(", ")
                    ),
                ));
                continue;
            }
            let mut cover_end = c.end_line;
            for next in &lexed.comments[ci + 1..] {
                if next.start_line == cover_end + 1 {
                    cover_end = next.end_line;
                } else {
                    break;
                }
            }
            for line in c.start_line..=cover_end + 1 {
                pairs.push((rule.to_string(), line));
            }
        }
    }
    (pairs, diags)
}

/// All workspace `.rs` files to lint, repo-root-relative, sorted. Skips
/// build output and the linter's own violation fixtures.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || rel.contains("tests/fixtures") {
                continue;
            }
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    // Forward slashes for stable diagnostics across platforms.
    rel.to_string_lossy().replace('\\', "/")
}

/// Analyzes the whole workspace under `root`, returning the report and
/// the symbol graph.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    analyze_paths(root, &workspace_files(root)?)
}

/// Lints the whole workspace under `root`.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    Ok(analyze_workspace(root)?.report)
}

/// Analyzes an explicit path list (files or directories, root-relative or
/// absolute) as one workspace.
pub fn analyze_explicit(root: &Path, paths: &[String]) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for p in paths {
        let full = if Path::new(p).is_absolute() {
            PathBuf::from(p)
        } else {
            root.join(p)
        };
        if full.is_dir() {
            walk(&full, root, &mut files)?;
        } else {
            files.push(rel_path(root, &full));
        }
    }
    files.sort();
    files.dedup();
    analyze_paths(root, &files)
}

/// Lints an explicit path list.
pub fn run_explicit(root: &Path, paths: &[String]) -> io::Result<Report> {
    Ok(analyze_explicit(root, paths)?.report)
}

fn analyze_paths(root: &Path, files: &[String]) -> io::Result<Analysis> {
    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        sources.push((rel.clone(), fs::read_to_string(root.join(rel))?));
    }
    Ok(analyze_sources(sources))
}

/// Walks upward from `start` to the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
