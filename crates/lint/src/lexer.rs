//! A small Rust lexer, sufficient for token-stream lint passes.
//!
//! The lexer's one job is to never mistake the *inside* of a comment,
//! string, raw string, byte string, or char literal for code: every rule
//! downstream matches identifier/punctuation sequences, and a `"unsafe"`
//! inside a string must not trigger the unsafe audit. Comments are not
//! discarded — they are collected separately with their line spans, because
//! two rules read them (`// SAFETY:` adjacency and `// lint:allow(...)`
//! suppressions).
//!
//! The lexer is deliberately forgiving: it never fails. Malformed input
//! (an unterminated string, a stray byte) degrades to best-effort tokens,
//! which at worst costs a lint pass some precision — the compiler, not the
//! linter, is the arbiter of syntax.

/// What a token is. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `lock`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `:`, `!`, ...).
    Punct,
    /// String, byte-string, char, or numeric literal (content opaque).
    Literal,
    /// A lifetime (`'a`) — distinct from a char literal.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: Kind,
    /// The token text for `Ident` and `Punct`; empty for literals (their
    /// content is never matched against).
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == Kind::Ident && self.text == word
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// One comment (line `//...` or block `/* ... */`), with the source lines
/// it covers. Block comments may span several lines; doc comments are
/// comments like any other.
#[derive(Debug, Clone)]
pub struct Comment {
    pub start_line: u32,
    pub end_line: u32,
    pub text: String,
}

/// The lexed file: code tokens (comments stripped) plus the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Infallible by design (see module docs).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    start_line: line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let tok_line = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(lit(tok_line));
            }
            b'\'' => {
                // Lifetime or char literal. After the quote: a backslash
                // means a char escape; an identifier character followed by
                // a closing quote means a char ('a'); an identifier
                // character *not* followed by a closing quote means a
                // lifetime ('a in `&'a str` — no closing quote at all).
                let tok_line = line;
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if is_ident_char(n))
                    && after != Some(b'\'')
                    && next != Some(b'\\');
                if is_lifetime {
                    i += 1;
                    let start = i;
                    while i < b.len() && is_ident_char(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Tok {
                        kind: Kind::Lifetime,
                        text: src[start..i].to_string(),
                        line: tok_line,
                    });
                } else {
                    i = skip_char_literal(b, i, &mut line);
                    out.tokens.push(lit(tok_line));
                }
            }
            c if c == b'r' || c == b'b' => {
                // Possible raw string r"..." / r#"..."#, byte string
                // b"..." / br"...", byte char b'x', or a plain identifier.
                let tok_line = line;
                if let Some(end) = try_raw_or_byte_string(b, i, &mut line) {
                    out.tokens.push(lit(tok_line));
                    i = end;
                } else {
                    i = lex_ident(src, b, i, line, &mut out.tokens);
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                i = lex_ident(src, b, i, line, &mut out.tokens);
            }
            c if c.is_ascii_digit() => {
                // Numbers (integer, float, hex, suffixed). Consuming
                // [0-9a-zA-Z_.] is crude but safe: no rule inspects them.
                while i < b.len() && (is_ident_char(b[i]) || b[i] == b'.') {
                    // Do not swallow `..` (range) or a method call `.foo()`
                    // on a literal.
                    if b[i] == b'.' && b.get(i + 1).is_some_and(|&n| !n.is_ascii_digit()) {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(lit(line));
            }
            _ => {
                if c.is_ascii() {
                    out.tokens.push(Tok {
                        kind: Kind::Punct,
                        text: (c as char).to_string(),
                        line,
                    });
                }
                // Skip over any UTF-8 continuation bytes too.
                i += 1;
            }
        }
    }
    out
}

fn lit(line: u32) -> Tok {
    Tok {
        kind: Kind::Literal,
        text: String::new(),
        line,
    }
}

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes an identifier (or raw identifier `r#ident`) starting at `i`.
fn lex_ident(src: &str, b: &[u8], mut i: usize, line: u32, tokens: &mut Vec<Tok>) -> usize {
    let mut start = i;
    // Raw identifier: r#type — strip the r# so rules see `type`.
    if b[i] == b'r'
        && b.get(i + 1) == Some(&b'#')
        && b.get(i + 2).is_some_and(|&c| is_ident_char(c))
    {
        i += 2;
        start = i;
    }
    while i < b.len() && is_ident_char(b[i]) {
        i += 1;
    }
    tokens.push(Tok {
        kind: Kind::Ident,
        text: src[start..i].to_string(),
        line,
    });
    i
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// just past the closing quote. Tracks newlines (multi-line strings),
/// including the one a line-continuation `\` swallows — the escaped
/// newline still advances the source line even though it is not in the
/// string's value.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a `'x'` char literal starting at the quote; returns the index past
/// the closing quote (or past the escape on malformed input).
fn skip_char_literal(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    if i < b.len() && b[i] == b'\\' {
        i += 2; // escape + escaped char ('\n', '\'', '\\', '\u{..}' head)
                // '\u{...}' — consume to the closing brace.
        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
            i += 1;
        }
    } else if i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
        // A non-ASCII scalar ('é', '—') is several UTF-8 bytes; consume
        // its continuation bytes so the closing quote lines up.
        while i < b.len() && (b[i] & 0xC0) == 0x80 {
            i += 1;
        }
    }
    if i < b.len() && b[i] == b'\'' {
        i += 1;
    }
    i
}

/// If position `i` starts a raw string (`r"`, `r#"`), byte string (`b"`),
/// raw byte string (`br#"`), or byte char (`b'x'`), skips it and returns
/// the end index; otherwise `None` (it is an ordinary identifier).
fn try_raw_or_byte_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'r') {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if raw {
        // Count hashes, then require a quote: r"", r#""#, r##""##, ...
        let mut hashes = 0;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None; // r#ident or plain identifier starting with r/br
        }
        j += 1;
        // Scan for `"` followed by `hashes` hashes. No escapes in raw strings.
        loop {
            match b.get(j) {
                None => return Some(j),
                Some(b'\n') => {
                    *line += 1;
                    j += 1;
                }
                Some(b'"') => {
                    let close = (0..hashes).all(|k| b.get(j + 1 + k) == Some(&b'#'));
                    j += 1;
                    if close {
                        return Some(j + hashes);
                    }
                }
                Some(_) => j += 1,
            }
        }
    }
    // Non-raw byte forms: b"..." and b'x'.
    if b[i] == b'b' {
        match b.get(i + 1) {
            Some(&b'"') => return Some(skip_string(b, i + 1, line)),
            Some(&b'\'') => return Some(skip_char_literal(b, i + 1, line)),
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r####"
            // unsafe in a line comment
            /* unsafe in a /* nested */ block */
            let a = "unsafe { }";
            let b = r#"unsafe " quote"#;
            let c = b"unsafe";
            let d = 'u';
            let e = br##"deep"## ;
        "####;
        assert!(
            !idents(src).iter().any(|t| t == "unsafe"),
            "{:?}",
            idents(src)
        );
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("unsafe in a line comment"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }").tokens;
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Literal).count(),
            1,
            "'x' is a char literal"
        );
    }

    #[test]
    fn char_escapes_do_not_derail() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F600}'; let after = 1;";
        assert!(idents(src).contains(&"after".to_string()));
    }

    #[test]
    fn raw_identifiers_lose_their_sigil() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn byte_strings_are_single_literals() {
        // b"..." with escapes, br#"..."# with inner quotes, and b'x' must
        // each lex as one opaque literal; their contents are never idents.
        for src in [
            r#"let a = b"unsafe \" byte";"#,
            r##"let a = br#"unsafe " raw byte"#;"##,
            "let a = b'u'; let z = b'\\'';",
        ] {
            let lx = lex(src);
            assert!(
                !lx.tokens.iter().any(|t| t.is_ident("unsafe")),
                "{src}: {:?}",
                lx.tokens
            );
            assert!(
                lx.tokens.iter().any(|t| t.kind == Kind::Literal),
                "{src}: literal expected"
            );
        }
    }

    #[test]
    fn char_literal_after_generic_close_is_not_a_lifetime() {
        // `>'a'` — a char comparison right after a generic close — must
        // stay a char literal, while `<'a>` stays a lifetime.
        let toks = lex("fn f<'a>(c: char) -> bool { c>'a' }").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            1,
            "{toks:?}"
        );
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Literal).count(),
            1,
            "'a' must lex as a char literal: {toks:?}"
        );
        // The char literal must not swallow the closing brace.
        assert!(toks.last().unwrap().is_punct('}'), "{toks:?}");
    }

    #[test]
    fn lifetime_after_generic_close_is_not_a_char() {
        // `Vec<X<'a>>` then a following lifetime bound: `>'a` with no
        // closing quote anywhere near.
        let toks = lex("fn g<'a>(x: Box<dyn Iterator<Item = &'a str> +'a>) {}").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Lifetime).count(),
            3,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Literal).count(), 0);
    }

    #[test]
    fn non_ascii_char_literals_close_correctly() {
        // 'é' is two UTF-8 bytes; the literal must consume through its
        // closing quote so following code still lexes.
        let src = "let e = 'é'; let after = '—'; unsafe {}";
        let toks = lex(src).tokens;
        assert!(
            toks.iter().any(|t| t.is_ident("unsafe")),
            "code after non-ASCII chars must still lex: {toks:?}"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Literal).count(), 2);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"x\ny\";\nunsafe {}";
        let toks = lex(src).tokens;
        let uns = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn escaped_newline_in_string_still_counts_a_line() {
        // A line-continuation `\` at end of line swallows the newline from
        // the string's *value* but not from the *source* — every token
        // after it must keep the physical line number.
        let src = "let a = \"one \\\n two\";\nunsafe {}";
        let toks = lex(src).tokens;
        let uns = toks.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn block_comment_spans_are_recorded() {
        let src = "/* one\ntwo\nthree */\nfn f() {}";
        let lx = lex(src);
        assert_eq!(lx.comments[0].start_line, 1);
        assert_eq!(lx.comments[0].end_line, 3);
        assert_eq!(lx.tokens[0].line, 4);
    }
}
