//! A fast, non-cryptographic hasher for small keys.
//!
//! TANE keeps each lattice level in a hash map keyed by [`AttrSet`] (a single
//! `u64`), and the partition-product probe tables are keyed by small
//! integers. The default SipHash 1-3 in `std::collections::HashMap` is
//! designed to resist hash-flooding attacks, which is irrelevant here and
//! measurably slow for word-sized keys. This module implements the same
//! multiply-and-rotate scheme as the well-known `rustc-hash`/`FxHash` crates
//! (which are not on the approved dependency list — see DESIGN.md §6), giving
//! the constant-time hashed random access the paper assumes in its cost
//! model (Section 6, "Practical analysis").
//!
//! [`AttrSet`]: crate::AttrSet

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A multiply-and-rotate hasher (the FxHash scheme used inside rustc).
///
/// Not HashDoS-resistant; only use for keys the program itself generates
/// (attribute sets, row indices, dictionary codes), never for untrusted
/// network input.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(7u64), b.hash_one(7u64));
    }

    #[test]
    fn distinct_small_keys_do_not_collide() {
        // Not a guarantee in general, but for sequential small ints the
        // multiplicative scheme must spread values — this guards against
        // a broken implementation that returns the input or zero.
        let hashes: Vec<u64> = (0u64..1000).map(|i| hash_one(&i)).collect();
        let unique: std::collections::HashSet<&u64> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn write_handles_unaligned_tails() {
        // 9 bytes exercises both the 8-byte chunk and the remainder path.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn maps_and_sets_work_end_to_end() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn empty_write_is_stable() {
        let mut h = FxHasher::default();
        h.write(&[]);
        assert_eq!(h.finish(), 0);
    }
}
