//! A persistent worker pool with work-stealing deques.
//!
//! TANE's per-level work — partition products, exact `g3` computations,
//! singleton partition construction — is embarrassingly parallel, but the
//! cost of individual items varies by orders of magnitude (a product costs
//! O(‖π̂'‖ + ‖π̂''‖), and stripped-partition sizes within one level differ
//! wildly). A pool of threads created *once per search* and re-dispatched
//! every level gives load balance without per-level thread spawns.
//!
//! ## Scheduling
//!
//! Earlier revisions had every worker claim grains from one shared atomic
//! cursor, which stops scaling past a couple of workers: the cursor's cache
//! line ping-pongs on every claim, and workers that run out of indices spin
//! in the claim loop. Dispatch now *pre-splits* the grains of a batch into
//! **per-worker bounded deques** (contiguous blocks, so each worker walks
//! ascending indices). A worker pops from the front of its own deque; when
//! that runs dry it **steals** the back half of a victim's deque — victims
//! probed first at random (a [`SplitMix64`] stream seeded only by the
//! worker id, so the probe order is deterministic, never entropy-driven)
//! and then in one full round-robin scan. Only if the full scan finds every
//! deque empty does the worker give up the epoch — a *bounded* number of
//! failed probes, after which it parks on the pool's condvar until the next
//! dispatch instead of spinning. Steals, claims, parks, and the time spent
//! hunting for work are counted per worker (see [`PoolCounters`]).
//!
//! ## Determinism
//!
//! Parallel execution must not change any search result. Work items write
//! into an index-addressed [`Slots`] vector, so the gathered output is in
//! input order regardless of which worker computed what — steal order (and
//! the probe RNG) can only change *who* computes a slot, never *what* the
//! slot holds or the order it is consumed in. The serial and parallel paths
//! are byte-identical downstream.
//!
//! The pool is std-only: `std::thread`, atomics, mutexes, and condvars.

use crate::rng::SplitMix64;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A dispatched job: a borrowed closure with its lifetime erased.
///
/// Safety: [`WorkerPool::run`] does not return until every worker has
/// finished the epoch, so the pointee outlives every dereference.
struct JobPtr(*const (dyn Fn(usize) + Sync));

#[allow(unsafe_code)]
// SAFETY: the pointer is only dereferenced by pool workers while the
// `run` call that published it is still blocked waiting for them, and the
// pointee is `Sync`, so sharing the pointer across threads is sound.
unsafe impl Send for JobPtr {}

/// Dispatch state shared between the owner and the workers.
struct State {
    /// Monotonically increasing job counter; a change signals new work.
    epoch: u64,
    /// The current job, present while an epoch is in flight.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
    /// First panic payload captured from a worker this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// Per-worker scheduling instrumentation cells (see [`PoolCounters`]).
#[derive(Default)]
struct CounterCells {
    claims: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    spin_nanos: AtomicU64,
    stall_nanos: AtomicU64,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new epoch or shutdown. Idle workers *park* here
    /// between epochs (counted in [`PoolCounters::parks`]) — they never
    /// spin across a dispatch boundary.
    work_cv: Condvar,
    /// Signals the owner: a worker finished the epoch.
    done_cv: Condvar,
    /// Total nanoseconds workers (the caller included) spent executing job
    /// bodies, across the pool's lifetime.
    busy_nanos: AtomicU64,
    /// Per-worker steal/claim/park/spin/stall counters, index = worker id.
    counters: Vec<CounterCells>,
    /// True once any worker body has panicked (sticky; lets cooperating
    /// producers stop feeding a pipeline whose consumers died).
    panicked: AtomicBool,
}

/// A snapshot of one worker's (or, summed, the pool's) scheduling
/// instrumentation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolCounters {
    /// Work grains executed: deque pops plus externally counted grains
    /// (see [`WorkerPool::add_claims`]).
    pub claims: u64,
    /// Successful steals — batches taken from another worker's deque.
    pub steals: u64,
    /// Times the worker parked on the pool condvar waiting for a dispatch.
    pub parks: u64,
    /// Time spent probing for work (failed and successful steal sweeps).
    /// Bounded by construction: a worker gives up an epoch after one full
    /// failed scan of every deque instead of spinning.
    pub spin: Duration,
    /// Time spent blocked on an external feed (e.g. the disk-fetch
    /// pipeline's channel), attributed to the worker that blocked — see
    /// [`WorkerPool::add_stall`].
    pub stall: Duration,
}

impl PoolCounters {
    // ORDERING: Acquire — these counters land in TaneStats, which is part
    // of the byte-identical-results contract; the Acquire loads pair with
    // the workers' Release increments so the totals read after an epoch's
    // done-notification are exact, not merely eventually consistent.
    fn accumulate(&mut self, cells: &CounterCells) {
        self.claims += cells.claims.load(Ordering::Acquire);
        self.steals += cells.steals.load(Ordering::Acquire);
        self.parks += cells.parks.load(Ordering::Acquire);
        self.spin += Duration::from_nanos(cells.spin_nanos.load(Ordering::Acquire));
        self.stall += Duration::from_nanos(cells.stall_nanos.load(Ordering::Acquire));
    }
}

/// Seed base of the steal-probe RNG: mixed with the worker id only, so the
/// probe sequence is a pure function of the worker — deterministic across
/// runs, machines, and epochs (no clocks, no OS entropy).
const STEAL_SEED: u64 = 0x7a9e_5eed_0c0d_e001;

/// Random victim probes per sweep before the deterministic full scan. Two
/// random probes spread contention; the full scan guarantees a worker only
/// gives up after observing every deque empty.
const RANDOM_PROBES: usize = 2;

/// A fixed pool of `threads − 1` worker threads plus the calling thread.
///
/// [`run`](WorkerPool::run) executes one closure on every worker
/// concurrently (worker ids `0..threads`, the caller being worker 0) and
/// blocks until all of them return. Worker panics are captured and
/// re-raised on the caller after the epoch completes, and the pool remains
/// usable afterwards. With `threads == 1` no threads are spawned and every
/// job runs inline on the caller.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool executing jobs on `threads` workers total.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> WorkerPool {
        assert!(threads >= 1, "need at least one worker");
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
            counters: (0..threads).map(|_| CounterCells::default()).collect(),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tane-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total workers, caller included (the `threads` passed to `new`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(worker_id)` on every worker concurrently and returns when
    /// all invocations have finished. The caller participates as worker 0.
    ///
    /// # Panics
    ///
    /// If any invocation panics, the (first) panic is re-raised here after
    /// every worker has finished; the pool stays usable.
    pub fn run(&self, body: &(dyn Fn(usize) + Sync)) {
        self.run_overlapped(body, || {});
    }

    /// [`run`](WorkerPool::run), except the caller first executes `driver`
    /// *while the spawned workers are already processing the job*, and only
    /// then joins in as worker 0. This is the level-overlap primitive: the
    /// search dispatches the next level's partition products here and runs
    /// the current level's serial driver tail (observer event, superkey
    /// closure) concurrently on the calling thread.
    ///
    /// With `threads == 1` the call degenerates to `driver(); body(0)` —
    /// the serial order, which the overlap must be equivalent to.
    ///
    /// # Panics
    ///
    /// Panics from `driver` or any `body` invocation are re-raised after
    /// the epoch fully drains (`driver`'s first); the pool stays usable.
    #[allow(unsafe_code)] // audited: the lifetime-erasing transmute below
                          // ORDERING: Release on busy_nanos and the panicked flag — pairs with
                          // the Acquire loads in busy_time/panicked; the epoch-drain mutex
                          // already orders everything else.
    pub fn run_overlapped(&self, body: &(dyn Fn(usize) + Sync), driver: impl FnOnce()) {
        if self.handles.is_empty() {
            let drove = catch_unwind(AssertUnwindSafe(driver));
            if drove.is_ok() {
                let t = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| body(0)));
                self.shared
                    .busy_nanos
                    .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Release);
                if let Err(payload) = outcome {
                    self.shared.panicked.store(true, Ordering::Release);
                    resume_unwind(payload);
                }
            }
            if let Err(payload) = drove {
                resume_unwind(payload);
            }
            return;
        }
        {
            // SAFETY: the trait-object lifetime is erased to publish the
            // borrowed closure to the workers; this function does not
            // return until every worker has finished with it.
            let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
            let mut state = self.shared.state.lock().expect("pool state");
            state.epoch += 1;
            state.job = Some(JobPtr(body as *const _));
            state.remaining = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The workers are computing already; the caller overlaps the serial
        // driver work, then participates as worker 0. Panics (from either)
        // are deferred until the other workers drain, so `body`'s captures
        // stay borrowed-valid for the whole epoch.
        let drove = catch_unwind(AssertUnwindSafe(driver));
        let caller = if drove.is_ok() {
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(0)));
            self.shared
                .busy_nanos
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Release);
            outcome
        } else {
            // Driver died: skip worker-0 participation, but the epoch must
            // still drain before the panic may unwind past the borrow.
            Ok(())
        };
        if caller.is_err() {
            self.shared.panicked.store(true, Ordering::Release);
        }
        let worker_panic = {
            let mut state = self.shared.state.lock().expect("pool state");
            while state.remaining > 0 {
                state = self.shared.done_cv.wait(state).expect("pool state");
            }
            state.job = None;
            state.panic.take()
        };
        if let Err(payload) = drove {
            resume_unwind(payload);
        }
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Computes `f(worker_id, i)` for every `i in 0..n`, `grain` indices
    /// per work item, and returns the results in index order —
    /// byte-identical to a serial `(0..n).map(|i| f(0, i))`.
    ///
    /// Scheduling: the grains are pre-split into per-worker deques
    /// (contiguous blocks); workers pop their own deque front and steal the
    /// back half of a victim's when it runs dry (see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`, and re-raises worker panics (see
    /// [`run`](WorkerPool::run)).
    pub fn run_indexed<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.run_indexed_overlapped(n, grain, f, || {})
    }

    /// [`run_indexed`](WorkerPool::run_indexed) with a serial `driver`
    /// closure that the caller executes *before* joining the computation —
    /// see [`run_overlapped`](WorkerPool::run_overlapped). The driver must
    /// not depend on any `f` output (it runs concurrently with them).
    // ORDERING: Release on every per-worker counter increment — pairs with
    // the Acquire loads in PoolCounters::accumulate (stats are results).
    pub fn run_indexed_overlapped<T, F, D>(&self, n: usize, grain: usize, f: F, driver: D) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
        D: FnOnce(),
    {
        assert!(grain >= 1, "grain must be at least 1");
        let slots = Slots::new(n);
        if n == 0 {
            driver();
            return slots.into_vec();
        }
        let threads = self.threads;
        let n_grains = n.div_ceil(grain);
        // Contiguous grain blocks per worker: worker w owns grains
        // [w·G/T, (w+1)·G/T). Deques are bounded by construction — the
        // ranges in flight across all deques never exceed the dispatch's
        // G = ⌈n/grain⌉ (steals move ranges, they never duplicate them).
        let queues: Vec<Mutex<VecDeque<(usize, usize)>>> = (0..threads)
            .map(|w| {
                let lo = w * n_grains / threads;
                let hi = (w + 1) * n_grains / threads;
                let mut q = VecDeque::with_capacity(hi - lo);
                for g in lo..hi {
                    q.push_back((g * grain, ((g + 1) * grain).min(n)));
                }
                Mutex::new(q)
            })
            .collect();
        let shared = &self.shared;
        self.run_overlapped(
            &|worker| {
                let cells = &shared.counters[worker];
                let mut rng = SplitMix64::new(STEAL_SEED.wrapping_add(worker as u64));
                loop {
                    let range = queues[worker].lock().expect("work deque").pop_front();
                    if let Some((start, end)) = range {
                        cells.claims.fetch_add(1, Ordering::Release);
                        for i in start..end {
                            slots.put(i, f(worker, i));
                        }
                        continue;
                    }
                    // Own deque dry: a bounded hunt for work — a couple of
                    // random probes, then one full scan. Give up (and later
                    // park on the pool condvar) only after the scan saw
                    // every deque empty.
                    let hunt = Instant::now();
                    let mut stolen: Option<Vec<(usize, usize)>> = None;
                    let probes = (0..RANDOM_PROBES)
                        .map(|_| (rng.next_u64() % threads as u64) as usize)
                        .chain((0..threads).map(|k| (worker + 1 + k) % threads));
                    for victim in probes {
                        if victim == worker {
                            continue;
                        }
                        let mut vq = queues[victim].lock().expect("work deque");
                        let len = vq.len();
                        if len > 0 {
                            // Take the back half (rounded up), preserving
                            // range order; the victim keeps its front.
                            let take = len - len / 2;
                            stolen = Some(vq.drain(len - take..).collect());
                            break;
                        }
                    }
                    cells
                        .spin_nanos
                        .fetch_add(hunt.elapsed().as_nanos() as u64, Ordering::Release);
                    match stolen {
                        Some(batch) => {
                            cells.steals.fetch_add(1, Ordering::Release);
                            // Never hold two deque locks at once: the
                            // victim's guard dropped at the end of the scan.
                            queues[worker].lock().expect("work deque").extend(batch);
                        }
                        None => return,
                    }
                }
            },
            driver,
        );
        slots.into_vec()
    }

    /// Counts `n` externally executed work grains against `worker` (for
    /// job shapes that distribute work themselves, e.g. a channel-fed
    /// pipeline).
    // ORDERING: Release — pairs with the Acquire loads in accumulate;
    // externally attributed grains are stats, hence result-exact.
    pub fn add_claims(&self, worker: usize, n: u64) {
        self.shared.counters[worker]
            .claims
            .fetch_add(n, Ordering::Release);
    }

    /// Attributes `stall` time spent blocked on an external feed (channel
    /// recv, fetch wait) to `worker` — every worker's stalls are recorded,
    /// not just the fetcher's.
    // ORDERING: Release — pairs with the Acquire loads in accumulate.
    pub fn add_stall(&self, worker: usize, stall: Duration) {
        self.shared.counters[worker]
            .stall_nanos
            .fetch_add(stall.as_nanos() as u64, Ordering::Release);
    }

    /// Counts serial compute time executed outside a dispatch (the
    /// `threads == 1` search path and under-the-gate inline batches), so
    /// busy time stays comparable across worker counts.
    // ORDERING: Release — pairs with the Acquire load in busy_time.
    pub fn add_busy(&self, busy: Duration) {
        self.shared
            .busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Release);
    }

    /// Work grains claimed over the pool's lifetime (all workers).
    pub fn grains_executed(&self) -> u64 {
        self.totals().claims
    }

    /// Summed scheduling counters across all workers.
    pub fn totals(&self) -> PoolCounters {
        let mut t = PoolCounters::default();
        for cells in &self.shared.counters {
            t.accumulate(cells);
        }
        t
    }

    /// Per-worker scheduling counters, index = worker id.
    pub fn worker_counters(&self) -> Vec<PoolCounters> {
        self.shared
            .counters
            .iter()
            .map(|cells| {
                let mut t = PoolCounters::default();
                t.accumulate(cells);
                t
            })
            .collect()
    }

    /// Total time workers spent executing job bodies over the pool's
    /// lifetime (sums across workers, so it can exceed wall-clock).
    // ORDERING: Acquire — busy time is reported in TaneStats; pairs with
    // the Release fetch_adds at every body-timing site.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.shared.busy_nanos.load(Ordering::Acquire))
    }

    /// True once any job body has panicked on any worker. Sticky; lets a
    /// producer worker bail out of a bounded pipeline instead of blocking
    /// forever on consumers that died.
    // ORDERING: Acquire — the sticky flag gates result-affecting control
    // flow (a producer bails out of the pipeline); pairs with the Release
    // stores at the panic sites so bailing implies seeing the panic.
    pub fn panicked(&self) -> bool {
        self.shared.panicked.load(Ordering::Acquire)
    }
}

/// The grain size for a batch of `n_items` work items with an estimated
/// total cost of `est_cost` units (for partition work: Σ‖π̂‖ elements),
/// split across `threads` workers.
///
/// Two pressures trade off: grains must be *large* enough that deque
/// traffic is amortized (≈ [`GRAIN_TARGET_COST`] units each), and *small*
/// enough that every worker sees several of them (item costs within a TANE
/// level differ by orders of magnitude, so fewer than a handful of grains
/// per worker re-creates static-chunk imbalance). Deterministic: a pure
/// function of the batch shape, never of timing.
pub fn adaptive_grain(n_items: usize, est_cost: usize, threads: usize) -> usize {
    if n_items == 0 {
        return 1;
    }
    let avg = (est_cost / n_items).max(1);
    let by_cost = (GRAIN_TARGET_COST / avg).max(1);
    let by_balance = (n_items / (threads.max(1) * GRAINS_PER_WORKER)).max(1);
    by_cost.min(by_balance)
}

/// Estimated work units (stripped-partition elements) to aim for per
/// grain; one grain then costs enough to dwarf a deque pop.
pub const GRAIN_TARGET_COST: usize = 1 << 14;

/// Minimum grains per worker the adaptive split aims for, so stealing has
/// something to balance with.
const GRAINS_PER_WORKER: usize = 4;

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(unsafe_code)] // audited: dereferences the pointer `run` published
                      // ORDERING: Release on busy_nanos, the panicked flag, and the park counter
                      // — pairs with the Acquire loads in busy_time/panicked/accumulate.
fn worker_loop(shared: &Shared, id: usize) {
    let mut last_epoch = 0u64;
    let mut state = shared.state.lock().expect("pool state");
    loop {
        if state.shutdown {
            return;
        }
        if state.epoch != last_epoch {
            last_epoch = state.epoch;
            // SAFETY: `run` published this pointer and blocks until
            // `remaining` reaches zero, which happens strictly after this
            // worker's decrement below — the closure is alive throughout.
            let body = unsafe { &*state.job.as_ref().expect("job for new epoch").0 };
            drop(state);
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(id)));
            shared
                .busy_nanos
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Release);
            state = shared.state.lock().expect("pool state");
            if let Err(payload) = outcome {
                shared.panicked.store(true, Ordering::Release);
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                shared.done_cv.notify_all();
            }
        } else {
            // No work: park until the next dispatch (or shutdown). This is
            // a real condvar wait, not a spin — the park counter proves it.
            shared.counters[id].parks.fetch_add(1, Ordering::Release);
            state = shared.work_cv.wait(state).expect("pool state");
        }
    }
}

/// An index-addressed output vector for parallel producers: any worker may
/// fill any slot, and [`into_vec`](Slots::into_vec) gathers the values in
/// index order, making parallel output order-independent of scheduling.
///
/// Each slot is its own mutex, so concurrent writes to distinct indices
/// never contend; writing the same index twice keeps the later value.
pub struct Slots<T> {
    cells: Vec<Mutex<Option<T>>>,
}

impl<T: Send> Slots<T> {
    /// `n` empty slots.
    pub fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True iff the vector has zero slots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Fills slot `i`.
    pub fn put(&self, i: usize, value: T) {
        *self.cells[i].lock().expect("slot") = Some(value);
    }

    /// All values, in index order.
    ///
    /// # Panics
    ///
    /// Panics if any slot was never filled.
    pub fn into_vec(self) -> Vec<T> {
        self.cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.into_inner()
                    .expect("slot")
                    .unwrap_or_else(|| panic!("slot {i} never filled"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_indexed_matches_serial_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, 3, |_worker, i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(pool.grains_executed() > 0);
        assert!(pool.busy_time() > Duration::ZERO);
    }

    #[test]
    fn pool_is_reused_across_jobs() {
        // Two searches' worth of dispatches on one pool: the same threads
        // serve both (thread count is observable via distinct worker ids).
        let pool = WorkerPool::new(3);
        let first = pool.run_indexed(50, 1, |_w, i| i + 1);
        let second = pool.run_indexed(10, 4, |_w, i| i * 2);
        assert_eq!(first, (1..=50).collect::<Vec<_>>());
        assert_eq!(second, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let seen = Mutex::new(std::collections::BTreeSet::new());
        pool.run(&|worker| {
            seen.lock().unwrap().insert(worker);
            // Hold every worker briefly so all three must participate.
            std::thread::sleep(Duration::from_millis(5));
        });
        assert_eq!(*seen.lock().unwrap(), (0..3).collect());
    }

    #[test]
    fn flood_of_tiny_grains_is_lossless_under_stealing() {
        // 10k single-index grains through 8 workers, with costs skewed so
        // some deque blocks take far longer than others — forcing steals.
        // Every grain must execute exactly once and the gathered output
        // must be byte-identical to the serial map.
        const N: usize = 10_000;
        let pool = WorkerPool::new(8);
        let executions = AtomicUsize::new(0);
        let out = pool.run_indexed(N, 1, |_worker, i| {
            executions.fetch_add(1, Ordering::Relaxed);
            if i < N / 8 {
                // The first deque block is heavy by design: its owner lags,
                // so light workers must steal from it (or from each other)
                // on any schedule and core count.
                std::hint::black_box((0..2_000u64).sum::<u64>());
            }
            i.wrapping_mul(0x9e37_79b9) ^ i
        });
        assert_eq!(
            out,
            (0..N)
                .map(|i| i.wrapping_mul(0x9e37_79b9) ^ i)
                .collect::<Vec<_>>(),
            "stealing changed the gathered output"
        );
        assert_eq!(
            executions.load(Ordering::Relaxed),
            N,
            "grains were lost or duplicated"
        );
        let totals = pool.totals();
        assert_eq!(totals.claims, N as u64, "one claim per single-index grain");
        assert!(
            totals.steals > 0,
            "8 workers × 10k skewed grains must steal at least once"
        );
    }

    #[test]
    fn idle_workers_park_instead_of_spinning() {
        let pool = WorkerPool::new(4);
        // After a dispatch drains, every spawned worker must return to the
        // condvar (parks grow), not spin on empty deques. Poll briefly: the
        // workers park as soon as the scheduler runs them again.
        let _ = pool.run_indexed(64, 1, |_w, i| i);
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.totals().parks == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let after_first = pool.totals().parks;
        assert!(
            after_first > 0,
            "spawned workers never parked after the epoch drained"
        );
        // Another dispatch on the parked pool: claims stay exact — nothing
        // lost across a park/wake cycle.
        let out = pool.run_indexed(64, 1, |_w, i| i);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        assert!(pool.totals().parks >= after_first);
        assert_eq!(pool.totals().claims, 128);
    }

    #[test]
    fn overlapped_driver_runs_alongside_the_job() {
        let pool = WorkerPool::new(4);
        let driver_ran = AtomicUsize::new(0);
        let out = pool.run_indexed_overlapped(
            200,
            2,
            |_w, i| i + 7,
            || {
                driver_ran.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out, (0..200).map(|i| i + 7).collect::<Vec<_>>());
        assert_eq!(driver_ran.load(Ordering::Relaxed), 1);
        // threads == 1 degenerates to the serial order: driver, then body.
        let serial = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        let out = serial.run_indexed_overlapped(
            3,
            1,
            |_w, i| {
                order.lock().unwrap().push(format!("item{i}"));
                i
            },
            || order.lock().unwrap().push("driver".into()),
        );
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(
            *order.lock().unwrap(),
            vec!["driver", "item0", "item1", "item2"]
        );
    }

    #[test]
    fn overlapped_driver_panic_propagates_after_drain() {
        let pool = WorkerPool::new(4);
        let executed = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_overlapped(
                &|_worker| {
                    executed.fetch_add(1, Ordering::Relaxed);
                },
                || panic!("driver exploded"),
            );
        }));
        let err = outcome.expect_err("driver panic must reach the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("driver exploded"), "unexpected payload: {msg}");
        // The spawned workers all ran their bodies; the pool still works.
        assert_eq!(executed.load(Ordering::Relaxed), 3);
        assert_eq!(pool.run_indexed(5, 1, |_w, i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let attempts = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|worker| {
                attempts.fetch_add(1, Ordering::Relaxed);
                if worker == 2 {
                    panic!("worker 2 exploded");
                }
            });
        }));
        let err = outcome.expect_err("worker panic must reach the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        assert!(pool.panicked());
        // The pool still works after the panic.
        let out = pool.run_indexed(20, 2, |_w, i| i);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn caller_panic_propagates_too() {
        let pool = WorkerPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|worker| {
                if worker == 0 {
                    panic!("caller side");
                }
            });
        }));
        assert!(outcome.is_err());
        assert_eq!(pool.run_indexed(3, 1, |_w, i| i), vec![0, 1, 2]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.run_indexed(10, 4, |worker, i| {
            assert_eq!(worker, 0, "no threads to hand work to");
            i
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|_| panic!("inline"));
        }))
        .is_err());
        assert!(pool.panicked());
    }

    #[test]
    fn external_claim_stall_and_busy_attribution() {
        let pool = WorkerPool::new(2);
        pool.add_claims(1, 5);
        pool.add_stall(0, Duration::from_millis(3));
        pool.add_stall(1, Duration::from_millis(4));
        pool.add_busy(Duration::from_millis(9));
        let per_worker = pool.worker_counters();
        assert_eq!(per_worker.len(), 2);
        assert_eq!(per_worker[1].claims, 5);
        assert_eq!(per_worker[0].stall, Duration::from_millis(3));
        assert_eq!(per_worker[1].stall, Duration::from_millis(4));
        assert_eq!(pool.totals().stall, Duration::from_millis(7));
        assert_eq!(pool.grains_executed(), 5);
        assert!(pool.busy_time() >= Duration::from_millis(9));
    }

    #[test]
    fn adaptive_grain_tracks_cost_and_balance() {
        // Heavy items: one item already exceeds the target cost → grain 1.
        assert_eq!(adaptive_grain(100, 100 * GRAIN_TARGET_COST, 8), 1);
        // Featherweight items: grain grows, but stays small enough that
        // every worker sees several grains.
        let g = adaptive_grain(10_000, 10_000, 8);
        assert!(g > 1, "tiny items must coalesce");
        assert!(10_000 / g >= 8 * 4, "at least 4 grains per worker");
        // Degenerate shapes stay valid.
        assert_eq!(adaptive_grain(0, 0, 8), 1);
        assert_eq!(adaptive_grain(5, 0, 8), 1);
        assert!(adaptive_grain(3, 1 << 30, 1) >= 1);
    }

    #[test]
    fn slots_gather_in_index_order() {
        let slots = Slots::new(4);
        assert_eq!(slots.len(), 4);
        assert!(!slots.is_empty());
        for i in (0..4).rev() {
            slots.put(i, i * 10);
        }
        assert_eq!(slots.into_vec(), vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "never filled")]
    fn unfilled_slot_panics_on_gather() {
        let slots: Slots<usize> = Slots::new(2);
        slots.put(0, 7);
        let _ = slots.into_vec();
    }
}
