//! A persistent worker pool with dynamic work claiming.
//!
//! TANE's per-level work — partition products, exact `g3` computations,
//! singleton partition construction — is embarrassingly parallel, but the
//! cost of individual items varies by orders of magnitude (a product costs
//! O(‖π̂'‖ + ‖π̂''‖), and stripped-partition sizes within one level differ
//! wildly). A pool of threads created *once per search* and re-dispatched
//! every level, with workers claiming small grains of indices from a shared
//! atomic cursor, gives load balance without per-level thread spawns.
//!
//! Determinism: parallel execution must not change any search result. Work
//! items write into an index-addressed [`Slots`] vector, so the gathered
//! output is in input order regardless of which worker computed what — the
//! serial and parallel paths are byte-identical downstream.
//!
//! The pool is std-only: `std::thread`, atomics, and condvars.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A dispatched job: a borrowed closure with its lifetime erased.
///
/// Safety: [`WorkerPool::run`] does not return until every worker has
/// finished the epoch, so the pointee outlives every dereference.
struct JobPtr(*const (dyn Fn(usize) + Sync));

#[allow(unsafe_code)]
// SAFETY: the pointer is only dereferenced by pool workers while the
// `run` call that published it is still blocked waiting for them, and the
// pointee is `Sync`, so sharing the pointer across threads is sound.
unsafe impl Send for JobPtr {}

/// Dispatch state shared between the owner and the workers.
struct State {
    /// Monotonically increasing job counter; a change signals new work.
    epoch: u64,
    /// The current job, present while an epoch is in flight.
    job: Option<JobPtr>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
    /// First panic payload captured from a worker this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: new epoch or shutdown.
    work_cv: Condvar,
    /// Signals the owner: a worker finished the epoch.
    done_cv: Condvar,
    /// Total nanoseconds workers (the caller included) spent executing job
    /// bodies, across the pool's lifetime.
    busy_nanos: AtomicU64,
    /// Work grains claimed across the pool's lifetime (see
    /// [`WorkerPool::run_indexed`] and [`WorkerPool::add_grains`]).
    grains: AtomicU64,
    /// True once any worker body has panicked (sticky; lets cooperating
    /// producers stop feeding a pipeline whose consumers died).
    panicked: AtomicBool,
}

/// A fixed pool of `threads − 1` worker threads plus the calling thread.
///
/// [`run`](WorkerPool::run) executes one closure on every worker
/// concurrently (worker ids `0..threads`, the caller being worker 0) and
/// blocks until all of them return. Worker panics are captured and
/// re-raised on the caller after the epoch completes, and the pool remains
/// usable afterwards. With `threads == 1` no threads are spawned and every
/// job runs inline on the caller.
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool executing jobs on `threads` workers total.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> WorkerPool {
        assert!(threads >= 1, "need at least one worker");
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            busy_nanos: AtomicU64::new(0),
            grains: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tane-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            threads,
        }
    }

    /// Total workers, caller included (the `threads` passed to `new`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `body(worker_id)` on every worker concurrently and returns when
    /// all invocations have finished. The caller participates as worker 0.
    ///
    /// # Panics
    ///
    /// If any invocation panics, the (first) panic is re-raised here after
    /// every worker has finished; the pool stays usable.
    #[allow(unsafe_code)] // audited: the lifetime-erasing transmute below
    pub fn run(&self, body: &(dyn Fn(usize) + Sync)) {
        if self.handles.is_empty() {
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(0)));
            self.shared
                .busy_nanos
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if let Err(payload) = outcome {
                self.shared.panicked.store(true, Ordering::Relaxed);
                resume_unwind(payload);
            }
            return;
        }
        {
            // SAFETY: the trait-object lifetime is erased to publish the
            // borrowed closure to the workers; this function does not
            // return until every worker has finished with it.
            let body: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
            let mut state = self.shared.state.lock().expect("pool state");
            state.epoch += 1;
            state.job = Some(JobPtr(body as *const _));
            state.remaining = self.handles.len();
            self.shared.work_cv.notify_all();
        }
        // The caller is worker 0; its panic (if any) is deferred until the
        // other workers drain, so `body`'s captures stay borrowed-valid for
        // the whole epoch.
        let t = Instant::now();
        let caller = catch_unwind(AssertUnwindSafe(|| body(0)));
        self.shared
            .busy_nanos
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if caller.is_err() {
            self.shared.panicked.store(true, Ordering::Relaxed);
        }
        let worker_panic = {
            let mut state = self.shared.state.lock().expect("pool state");
            while state.remaining > 0 {
                state = self.shared.done_cv.wait(state).expect("pool state");
            }
            state.job = None;
            state.panic.take()
        };
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Computes `f(worker_id, i)` for every `i in 0..n`, claiming indices
    /// from a shared cursor `grain` at a time, and returns the results in
    /// index order — byte-identical to a serial `(0..n).map(|i| f(0, i))`.
    ///
    /// # Panics
    ///
    /// Panics if `grain == 0`, and re-raises worker panics (see
    /// [`run`](WorkerPool::run)).
    pub fn run_indexed<T, F>(&self, n: usize, grain: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        assert!(grain >= 1, "grain must be at least 1");
        let slots = Slots::new(n);
        let cursor = AtomicUsize::new(0);
        self.run(&|worker| loop {
            let start = cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= n {
                break;
            }
            self.add_grains(1);
            for i in start..(start + grain).min(n) {
                slots.put(i, f(worker, i));
            }
        });
        slots.into_vec()
    }

    /// Counts `n` externally executed work grains (for job shapes that
    /// distribute work themselves, e.g. a channel-fed pipeline).
    pub fn add_grains(&self, n: u64) {
        self.shared.grains.fetch_add(n, Ordering::Relaxed);
    }

    /// Work grains claimed over the pool's lifetime.
    pub fn grains_executed(&self) -> u64 {
        self.shared.grains.load(Ordering::Relaxed)
    }

    /// Total time workers spent executing job bodies over the pool's
    /// lifetime (sums across workers, so it can exceed wall-clock).
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.shared.busy_nanos.load(Ordering::Relaxed))
    }

    /// True once any job body has panicked on any worker. Sticky; lets a
    /// producer worker bail out of a bounded pipeline instead of blocking
    /// forever on consumers that died.
    pub fn panicked(&self) -> bool {
        self.shared.panicked.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(unsafe_code)] // audited: dereferences the pointer `run` published
fn worker_loop(shared: &Shared, id: usize) {
    let mut last_epoch = 0u64;
    let mut state = shared.state.lock().expect("pool state");
    loop {
        if state.shutdown {
            return;
        }
        if state.epoch != last_epoch {
            last_epoch = state.epoch;
            // SAFETY: `run` published this pointer and blocks until
            // `remaining` reaches zero, which happens strictly after this
            // worker's decrement below — the closure is alive throughout.
            let body = unsafe { &*state.job.as_ref().expect("job for new epoch").0 };
            drop(state);
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| body(id)));
            shared
                .busy_nanos
                .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
            state = shared.state.lock().expect("pool state");
            if let Err(payload) = outcome {
                shared.panicked.store(true, Ordering::Relaxed);
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                shared.done_cv.notify_all();
            }
        } else {
            state = shared.work_cv.wait(state).expect("pool state");
        }
    }
}

/// An index-addressed output vector for parallel producers: any worker may
/// fill any slot, and [`into_vec`](Slots::into_vec) gathers the values in
/// index order, making parallel output order-independent of scheduling.
///
/// Each slot is its own mutex, so concurrent writes to distinct indices
/// never contend; writing the same index twice keeps the later value.
pub struct Slots<T> {
    cells: Vec<Mutex<Option<T>>>,
}

impl<T: Send> Slots<T> {
    /// `n` empty slots.
    pub fn new(n: usize) -> Slots<T> {
        Slots {
            cells: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True iff the vector has zero slots.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Fills slot `i`.
    pub fn put(&self, i: usize, value: T) {
        *self.cells[i].lock().expect("slot") = Some(value);
    }

    /// All values, in index order.
    ///
    /// # Panics
    ///
    /// Panics if any slot was never filled.
    pub fn into_vec(self) -> Vec<T> {
        self.cells
            .into_iter()
            .enumerate()
            .map(|(i, cell)| {
                cell.into_inner()
                    .expect("slot")
                    .unwrap_or_else(|| panic!("slot {i} never filled"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn run_indexed_matches_serial_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, 3, |_worker, i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(pool.grains_executed() > 0);
        assert!(pool.busy_time() > Duration::ZERO);
    }

    #[test]
    fn pool_is_reused_across_jobs() {
        // Two searches' worth of dispatches on one pool: the same threads
        // serve both (thread count is observable via distinct worker ids).
        let pool = WorkerPool::new(3);
        let first = pool.run_indexed(50, 1, |_w, i| i + 1);
        let second = pool.run_indexed(10, 4, |_w, i| i * 2);
        assert_eq!(first, (1..=50).collect::<Vec<_>>());
        assert_eq!(second, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let seen = Mutex::new(std::collections::BTreeSet::new());
        pool.run(&|worker| {
            seen.lock().unwrap().insert(worker);
            // Hold every worker briefly so all three must participate.
            std::thread::sleep(Duration::from_millis(5));
        });
        assert_eq!(*seen.lock().unwrap(), (0..3).collect());
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let attempts = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|worker| {
                attempts.fetch_add(1, Ordering::Relaxed);
                if worker == 2 {
                    panic!("worker 2 exploded");
                }
            });
        }));
        let err = outcome.expect_err("worker panic must reach the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("exploded"), "unexpected payload: {msg}");
        assert!(pool.panicked());
        // The pool still works after the panic.
        let out = pool.run_indexed(20, 2, |_w, i| i);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn caller_panic_propagates_too() {
        let pool = WorkerPool::new(2);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|worker| {
                if worker == 0 {
                    panic!("caller side");
                }
            });
        }));
        assert!(outcome.is_err());
        assert_eq!(pool.run_indexed(3, 1, |_w, i| i), vec![0, 1, 2]);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.run_indexed(10, 4, |worker, i| {
            assert_eq!(worker, 0, "no threads to hand work to");
            i
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|_| panic!("inline"));
        }))
        .is_err());
        assert!(pool.panicked());
    }

    #[test]
    fn slots_gather_in_index_order() {
        let slots = Slots::new(4);
        assert_eq!(slots.len(), 4);
        assert!(!slots.is_empty());
        for i in (0..4).rev() {
            slots.put(i, i * 10);
        }
        assert_eq!(slots.into_vec(), vec![0, 10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "never filled")]
    fn unfilled_slot_panics_on_gather() {
        let slots: Slots<usize> = Slots::new(2);
        slots.put(0, 7);
        let _ = slots.into_vec();
    }
}
