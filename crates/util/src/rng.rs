//! A small deterministic PRNG (SplitMix64) for the dataset generators.
//!
//! The synthetic UCI stand-ins need reproducible pseudo-random draws, not
//! cryptographic ones. The `rand` crate is unavailable in the offline build
//! environment (see DESIGN.md §6), so this module provides the three draw
//! primitives the generators use — bounded integers, unit-interval floats,
//! and Bernoulli trials — on top of Steele, Lea & Flood's SplitMix64
//! (*Fast Splittable Pseudorandom Number Generators*, OOPSLA 2014), the
//! same mixer `rand` itself uses to seed its generators. The sequence for a
//! given seed is fixed forever: dataset specs embed seeds, and the
//! calibrated dependency counts in `tane-datasets` depend on the stream.

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic for a given seed; passes BigCrush as a 64-bit mixer.
/// Never use for anything security-sensitive.
///
/// # Examples
///
/// ```
/// use tane_util::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[inline]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..bound` (Lemire's multiply-shift reduction;
    /// the modulo bias is below 2⁻³² for the small domains used here, and
    /// debiasing loops would make the stream length input-dependent).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn u32_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "u32_below needs a non-empty range");
        (((self.next_u64() >> 32) * u64::from(bound)) >> 32) as u32
    }

    /// A uniform draw from `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below needs a non-empty range");
        // 128-bit multiply-shift keeps the full usize range uniform.
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool_with_p(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = SplitMix64::new(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn known_reference_values() {
        // SplitMix64 reference stream for seed 1234567 (from the public
        // test vectors of the Vigna implementation).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn bounded_draws_stay_in_range_and_cover() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.u32_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 7 values must appear in 1000 draws"
        );
        for _ in 0..100 {
            assert!(r.usize_below(3) < 3);
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut r = SplitMix64::new(5);
        let draws: Vec<f64> = (0..4000).map(|_| r.f64_unit()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10000).filter(|_| r.bool_with_p(0.1)).count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| r.bool_with_p(0.0)));
        assert!((0..100).all(|_| r.bool_with_p(1.0)));
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn empty_bound_panics() {
        SplitMix64::new(0).u32_below(0);
    }
}
