#![deny(unsafe_code)]
//! Shared utilities for the TANE suite.
//!
//! This crate provides the low-level building blocks that every other crate
//! in the workspace depends on:
//!
//! * [`AttrSet`] — a compact bitset over attribute indices, used to represent
//!   the left-hand sides of dependencies and the nodes of the set-containment
//!   lattice searched by TANE. The paper (Section 6, "Practical analysis")
//!   implements attribute sets "as bit vectors of O(1) words" with hashed
//!   random access; `AttrSet` is exactly that: a single `u64` word supporting
//!   up to [`MAX_ATTRS`] attributes with O(1) set operations.
//! * [`hash`] — a fast multiplicative hasher for small integer keys
//!   (`FxHashMap`/`FxHashSet` aliases). The standard library's SipHash is
//!   collision-resistant but slow for the hot `AttrSet -> level-entry` lookups
//!   TANE performs; the paper likewise assumes constant-time hashed access.
//! * [`timing`] — a small stopwatch used by the benchmark harness.
//! * [`json`] — a hand-rolled JSON value type, reader, and writer: the wire
//!   format of the discovery service and the benchmark reports (`serde` is
//!   unavailable in the offline build).
//! * [`rng`] — a SplitMix64 PRNG for the synthetic dataset generators
//!   (`rand` is likewise unavailable offline).
//! * [`pool`] — a persistent worker pool with per-worker work-stealing
//!   deques, condvar parking, and order-preserving output slots; the
//!   parallel search runtime is built on it (std threads + atomics +
//!   condvars only).

pub mod attrset;
pub mod fd;
pub mod hash;
pub mod json;
pub mod pool;
pub mod rng;
pub mod timing;

pub use attrset::{AttrSet, AttrSetIter, MAX_ATTRS};
pub use fd::{canonical_fds, Fd};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{Json, JsonError};
pub use pool::{adaptive_grain, PoolCounters, Slots, WorkerPool};
pub use rng::SplitMix64;
pub use timing::Stopwatch;
