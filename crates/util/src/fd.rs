//! Functional dependencies as values.
//!
//! A functional dependency `X → A` (paper, Section 1) is a left-hand side
//! attribute set and a single right-hand side attribute. Every discovery
//! algorithm in the workspace (TANE, FDEP, the brute-force oracle) produces
//! [`Fd`] values, so cross-checking their outputs is a set comparison.

use crate::attrset::AttrSet;
use std::fmt;

/// A functional dependency `lhs → rhs`.
///
/// # Examples
///
/// ```
/// use tane_util::{AttrSet, Fd};
///
/// let fd = Fd::new(AttrSet::from_indices([1, 2]), 0);
/// assert!(!fd.is_trivial());
/// assert!(Fd::new(AttrSet::from_indices([0, 1]), 0).is_trivial());
/// assert_eq!(format!("{fd}"), "{1,2} -> 0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Determinant attribute set `X`.
    pub lhs: AttrSet,
    /// Dependent attribute `A`.
    pub rhs: usize,
}

impl Fd {
    /// Creates `lhs → rhs`.
    #[inline]
    pub const fn new(lhs: AttrSet, rhs: usize) -> Fd {
        Fd { lhs, rhs }
    }

    /// A dependency is *trivial* when `A ∈ X`; trivial dependencies always
    /// hold and are excluded from discovery.
    #[inline]
    pub fn is_trivial(&self) -> bool {
        self.lhs.contains(self.rhs)
    }

    /// Renders with attribute names, e.g. `{B,C} -> A`.
    pub fn display_with(&self, names: &[String]) -> String {
        let rhs = names
            .get(self.rhs)
            .map(String::as_str)
            .map(str::to_string)
            .unwrap_or_else(|| format!("#{}", self.rhs));
        format!("{} -> {}", self.lhs.display_with(names), rhs)
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.lhs, self.rhs)
    }
}

/// Sorts dependencies canonically (by rhs, then lhs) and removes duplicates;
/// useful before comparing outputs of different algorithms.
pub fn canonical_fds(mut fds: Vec<Fd>) -> Vec<Fd> {
    fds.sort_unstable_by_key(|fd| (fd.rhs, fd.lhs));
    fds.dedup();
    fds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_triviality() {
        let fd = Fd::new(AttrSet::from_indices([0, 2]), 1);
        assert_eq!(fd.lhs, AttrSet::from_indices([0, 2]));
        assert_eq!(fd.rhs, 1);
        assert!(!fd.is_trivial());
        assert!(Fd::new(AttrSet::singleton(3), 3).is_trivial());
        assert!(!Fd::new(AttrSet::empty(), 0).is_trivial());
    }

    #[test]
    fn display_forms() {
        let fd = Fd::new(AttrSet::from_indices([1, 2]), 0);
        assert_eq!(format!("{fd}"), "{1,2} -> 0");
        let names: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
        assert_eq!(fd.display_with(&names), "{B,C} -> A");
        let fd_oob = Fd::new(AttrSet::singleton(0), 9);
        assert_eq!(fd_oob.display_with(&names), "{A} -> #9");
    }

    #[test]
    fn canonicalization_sorts_and_dedups() {
        let a = Fd::new(AttrSet::singleton(1), 0);
        let b = Fd::new(AttrSet::singleton(0), 1);
        let out = canonical_fds(vec![a, b, a, a]);
        assert_eq!(out, vec![a, b]);
    }

    #[test]
    fn ordering_groups_by_rhs() {
        let fds = vec![
            Fd::new(AttrSet::singleton(5), 1),
            Fd::new(AttrSet::singleton(0), 1),
            Fd::new(AttrSet::singleton(9), 0),
        ];
        let sorted = canonical_fds(fds);
        assert_eq!(sorted[0].rhs, 0);
        assert_eq!(sorted[1].rhs, 1);
        assert_eq!(sorted[2].rhs, 1);
        assert!(sorted[1].lhs < sorted[2].lhs);
    }
}
