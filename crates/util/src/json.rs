//! A minimal JSON value type, writer, and reader.
//!
//! The discovery service (`tane-server`) speaks JSON over HTTP and the
//! benchmark harness writes structured reports, but `serde`/`serde_json`
//! are unavailable in the offline build environment (see DESIGN.md §6).
//! This module is the hand-rolled replacement: a [`Json`] tree with a
//! recursive-descent parser and a writer, covering the JSON that this
//! workspace itself produces and accepts — objects, arrays, strings with
//! standard escapes (`\uXXXX` included), numbers, booleans, null.
//!
//! Numbers are stored as `f64`. Integers up to 2⁵³ round-trip exactly,
//! which covers every counter in the suite; the writer prints integral
//! values without a decimal point so integer counters render as integers.
//!
//! The parser enforces a nesting-depth limit so untrusted request bodies
//! cannot overflow the stack — the server feeds client input through it.

use std::fmt;

/// Maximum object/array nesting the parser accepts. Deeper input returns
/// [`JsonError::TooDeep`] instead of recursing toward a stack overflow.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Object members keep their insertion order (discovery responses are
/// byte-stable across runs because of this).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte or premature end of input.
    Syntax {
        /// Byte offset of the problem.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// Nesting exceeded the parser's depth limit.
    TooDeep,
    /// Input had trailing non-whitespace after the value.
    TrailingData {
        /// Byte offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            JsonError::TooDeep => write!(f, "JSON nested deeper than {MAX_DEPTH} levels"),
            JsonError::TrailingData { offset } => {
                write!(f, "trailing data after JSON value at byte {offset}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for an object.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for an array of strings.
    pub fn str_array(items: impl IntoIterator<Item = impl Into<String>>) -> Json {
        Json::Arr(items.into_iter().map(|s| Json::Str(s.into())).collect())
    }

    /// Member lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a usize, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=(u64::MAX as f64)).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON value from `input` (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed input, depth overflow, or trailing data.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::TrailingData { offset: p.pos });
        }
        Ok(value)
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders human-readable JSON with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no representation for these; null is the least-wrong.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    let len = utf8_len(b);
                    self.pos += len;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // `\uXXXX` with a low surrogate.
        if (0xd800..0xdc00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.hex4()?;
                if (0xdc00..0xe000).contains(&second) {
                    let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return char::from_u32(combined).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("bad \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + digit;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "{text}");
        }
    }

    #[test]
    fn object_preserves_order_and_round_trips() {
        let text = r#"{"b":1,"a":[2,3,{"c":null}],"d":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("d").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_both_ways() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        let rendered = Json::Str("tab\there \"q\" \u{1}".into()).render();
        assert_eq!(rendered, r#""tab\there \"q\" \u0001""#);
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("tab\there \"q\" \u{1}")
        );
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn numbers_parse_and_render() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap().as_f64(), Some(-0.25));
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_usize(),
            Some(9007199254740992)
        );
        assert_eq!(Json::parse("0.5").unwrap().as_usize(), None);
        assert_eq!(Json::parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "{'a':1}",
            "[1 2]",
            "\"\\q\"",
            "nullX",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should fail");
        }
        assert_eq!(
            Json::parse("null  true"),
            Err(JsonError::TrailingData { offset: 6 })
        );
    }

    #[test]
    fn depth_limit_guards_the_stack() {
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn helpers_and_constructors() {
        let v = Json::obj([
            ("count", Json::Num(3.0)),
            ("items", Json::str_array(["a", "b"])),
            ("on", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        assert_eq!(
            v.render(),
            r#"{"count":3,"items":["a","b"],"on":true,"none":null}"#
        );
        assert_eq!(v.get("on").and_then(Json::as_bool), Some(true));
        assert!(v.get("none").unwrap().is_null());
        assert_eq!(v.get("items").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_rendering_is_reparseable() {
        let v = Json::parse(r#"{"a":[1,{"b":"c"}],"d":{}}"#).unwrap();
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn error_display() {
        let e = Json::parse("{bad").unwrap_err();
        assert!(e.to_string().contains("syntax error"));
        assert!(JsonError::TooDeep.to_string().contains("deeper"));
    }
}
