//! Wall-clock timing helpers for the benchmark harness.
//!
//! The paper reports "real times elapsed … as reported by Unix `time`"
//! (Section 7) — i.e. wall-clock, not CPU time — so the harness measures the
//! same quantity.

use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
///
/// # Examples
///
/// ```
/// use tane_util::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let _work: u64 = (0..1000).sum();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.as_secs() < 60);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in (fractional) seconds, the unit of every table in the
    /// paper.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Formats a duration the way the paper's tables do: seconds with two to
/// three significant digits (`0.76`, `68.2`, `1451`).
pub fn format_secs(secs: f64) -> String {
    if secs < 0.01 {
        format!("{secs:.4}")
    } else if secs < 100.0 {
        format!("{secs:.2}")
    } else {
        format!("{secs:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn format_matches_paper_style() {
        assert_eq!(format_secs(0.001), "0.0010");
        assert_eq!(format_secs(0.76), "0.76");
        assert_eq!(format_secs(68.2), "68.20");
        assert_eq!(format_secs(1451.0), "1451");
    }
}
