//! Attribute sets as single-word bitsets.
//!
//! TANE's search space is the set-containment lattice over the attributes of
//! a relation schema (paper, Figure 2). Every node of that lattice — every
//! candidate left-hand side `X` — is an attribute set. The paper implements
//! these as machine-word bit vectors so that subset tests, unions,
//! intersections and single-attribute removal are all O(1); this module is
//! the Rust equivalent.
//!
//! Attributes are identified by their column index in the schema
//! (`0..schema.len()`). A single `u64` word caps the schema width at
//! [`MAX_ATTRS`] = 64 attributes, which covers every dataset in the paper
//! (the widest, `Rel6`, has 60) and is checked when relations are built.

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Sub, SubAssign};

/// Maximum number of attributes representable by an [`AttrSet`].
pub const MAX_ATTRS: usize = 64;

/// A set of attribute indices, stored as a `u64` bitmask.
///
/// Bit `i` is set iff attribute `i` is a member. All operations are O(1)
/// except iteration, which is O(cardinality) via `trailing_zeros`.
///
/// # Examples
///
/// ```
/// use tane_util::AttrSet;
///
/// let x = AttrSet::from_indices([0, 2, 3]);
/// assert_eq!(x.len(), 3);
/// assert!(x.contains(2));
/// assert!(!x.contains(1));
///
/// // X \ {A} for every A in X — the loop TANE runs for each lattice node.
/// let subsets: Vec<AttrSet> = x.iter().map(|a| x.without(a)).collect();
/// assert_eq!(subsets.len(), 3);
/// assert!(subsets.iter().all(|s| s.is_subset_of(x) && s.len() == 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(u64);

impl AttrSet {
    /// The empty set `∅`.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Creates an empty set.
    #[inline]
    pub const fn empty() -> Self {
        AttrSet(0)
    }

    /// Creates the full set `{0, 1, …, n-1}` of the first `n` attributes.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_ATTRS`.
    #[inline]
    pub fn full(n: usize) -> Self {
        assert!(
            n <= MAX_ATTRS,
            "AttrSet supports at most {MAX_ATTRS} attributes, got {n}"
        );
        if n == MAX_ATTRS {
            AttrSet(u64::MAX)
        } else {
            AttrSet((1u64 << n) - 1)
        }
    }

    /// Creates the singleton set `{a}`.
    ///
    /// # Panics
    ///
    /// Panics if `a >= MAX_ATTRS`.
    #[inline]
    pub fn singleton(a: usize) -> Self {
        assert!(a < MAX_ATTRS, "attribute index {a} out of range");
        AttrSet(1u64 << a)
    }

    /// Builds a set from an iterator of attribute indices.
    #[inline]
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = AttrSet::empty();
        for a in iter {
            s.insert(a);
        }
        s
    }

    /// Reconstructs a set from its raw bitmask.
    #[inline]
    pub const fn from_bits(bits: u64) -> Self {
        AttrSet(bits)
    }

    /// Returns the raw bitmask.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Number of attributes in the set (the lattice level this set lives on).
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` iff the set is `∅`.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, a: usize) -> bool {
        a < MAX_ATTRS && (self.0 >> a) & 1 == 1
    }

    /// Inserts attribute `a`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `a >= MAX_ATTRS`.
    #[inline]
    pub fn insert(&mut self, a: usize) -> bool {
        assert!(a < MAX_ATTRS, "attribute index {a} out of range");
        let had = self.contains(a);
        self.0 |= 1u64 << a;
        !had
    }

    /// Removes attribute `a`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, a: usize) -> bool {
        let had = self.contains(a);
        if a < MAX_ATTRS {
            self.0 &= !(1u64 << a);
        }
        had
    }

    /// `X ∪ {a}` — the set with `a` added, without mutating `self`.
    #[inline]
    pub fn with(self, a: usize) -> Self {
        assert!(a < MAX_ATTRS, "attribute index {a} out of range");
        AttrSet(self.0 | (1u64 << a))
    }

    /// `X \ {a}` — the set with `a` removed, without mutating `self`.
    ///
    /// This is the single most executed set operation in TANE: validity tests
    /// consider `X \ {A} → A` for each `A ∈ X`.
    #[inline]
    pub fn without(self, a: usize) -> Self {
        if a < MAX_ATTRS {
            AttrSet(self.0 & !(1u64 << a))
        } else {
            self
        }
    }

    /// Set union `X ∪ Y`.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        AttrSet(self.0 | other.0)
    }

    /// Set intersection `X ∩ Y`.
    #[inline]
    pub const fn intersect(self, other: Self) -> Self {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `X \ Y`.
    #[inline]
    pub const fn difference(self, other: Self) -> Self {
        AttrSet(self.0 & !other.0)
    }

    /// `true` iff `self ⊆ other`.
    #[inline]
    pub const fn is_subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// `true` iff `self ⊂ other` (proper subset).
    #[inline]
    pub const fn is_proper_subset_of(self, other: Self) -> bool {
        self.is_subset_of(other) && self.0 != other.0
    }

    /// `true` iff `self ⊇ other`.
    #[inline]
    pub const fn is_superset_of(self, other: Self) -> bool {
        other.is_subset_of(self)
    }

    /// `true` iff the two sets share no attribute.
    #[inline]
    pub const fn is_disjoint(self, other: Self) -> bool {
        self.0 & other.0 == 0
    }

    /// The smallest attribute index in the set, or `None` if empty.
    #[inline]
    pub fn min_attr(self) -> Option<usize> {
        if self.is_empty() {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// The largest attribute index in the set, or `None` if empty.
    #[inline]
    pub fn max_attr(self) -> Option<usize> {
        if self.is_empty() {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// If the set is a singleton `{a}`, returns `a`.
    #[inline]
    pub fn as_singleton(self) -> Option<usize> {
        if self.len() == 1 {
            self.min_attr()
        } else {
            None
        }
    }

    /// Iterates over the attribute indices in ascending order.
    #[inline]
    pub fn iter(self) -> AttrSetIter {
        AttrSetIter(self.0)
    }

    /// Iterates over all `|X|` subsets of the form `X \ {a}`, paired with the
    /// removed attribute: `(a, X \ {a})` in ascending order of `a`.
    #[inline]
    pub fn proper_subsets_one_smaller(self) -> impl Iterator<Item = (usize, AttrSet)> {
        self.iter().map(move |a| (a, self.without(a)))
    }

    /// Formats the set as attribute names drawn from `names`, e.g. `{A,C}`.
    pub fn display_with<'a>(self, names: &'a [String]) -> DisplayWith<'a> {
        DisplayWith { set: self, names }
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Helper returned by [`AttrSet::display_with`].
pub struct DisplayWith<'a> {
    set: AttrSet,
    names: &'a [String],
}

impl fmt::Display for DisplayWith<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match self.names.get(a) {
                Some(name) => write!(f, "{name}")?,
                None => write!(f, "#{a}")?,
            }
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of an [`AttrSet`], ascending.
#[derive(Clone)]
pub struct AttrSetIter(u64);

impl Iterator for AttrSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let a = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1; // clear lowest set bit
            Some(a)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrSetIter {}

impl IntoIterator for AttrSet {
    type Item = usize;
    type IntoIter = AttrSetIter;

    fn into_iter(self) -> AttrSetIter {
        self.iter()
    }
}

impl FromIterator<usize> for AttrSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        AttrSet::from_indices(iter)
    }
}

impl BitOr for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

impl BitOrAssign for AttrSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        self.intersect(rhs)
    }
}

impl BitAndAssign for AttrSet {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        self.0 &= rhs.0;
    }
}

impl BitXor for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        AttrSet(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for AttrSet {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.difference(rhs)
    }
}

impl SubAssign for AttrSet {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.0 &= !rhs.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_properties() {
        let e = AttrSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.min_attr(), None);
        assert_eq!(e.max_attr(), None);
        assert_eq!(e, AttrSet::EMPTY);
        assert_eq!(e, AttrSet::default());
    }

    #[test]
    fn full_set_small_and_max() {
        let f5 = AttrSet::full(5);
        assert_eq!(f5.len(), 5);
        assert_eq!(f5.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        let f64 = AttrSet::full(64);
        assert_eq!(f64.len(), 64);
        assert!(f64.contains(63));
        assert_eq!(AttrSet::full(0), AttrSet::empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn full_set_too_large_panics() {
        let _ = AttrSet::full(65);
    }

    #[test]
    fn singleton_and_membership() {
        let s = AttrSet::singleton(7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
        assert!(!s.contains(6));
        assert_eq!(s.as_singleton(), Some(7));
        assert_eq!(AttrSet::from_indices([1, 2]).as_singleton(), None);
        assert_eq!(AttrSet::empty().as_singleton(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn singleton_out_of_range_panics() {
        let _ = AttrSet::singleton(64);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = AttrSet::empty();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(s.is_empty());
        // removing an out-of-range attribute is a no-op, not a panic
        assert!(!s.remove(100));
    }

    #[test]
    fn with_and_without_do_not_mutate() {
        let x = AttrSet::from_indices([0, 2]);
        let y = x.with(1);
        assert_eq!(x.len(), 2);
        assert_eq!(y.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let z = y.without(2);
        assert_eq!(y.len(), 3);
        assert_eq!(z.iter().collect::<Vec<_>>(), vec![0, 1]);
        // without() an absent attribute is identity
        assert_eq!(x.without(5), x);
        assert_eq!(x.without(99), x);
    }

    #[test]
    fn union_intersection_difference() {
        let x = AttrSet::from_indices([0, 1, 2]);
        let y = AttrSet::from_indices([2, 3]);
        assert_eq!(x.union(y), AttrSet::from_indices([0, 1, 2, 3]));
        assert_eq!(x.intersect(y), AttrSet::singleton(2));
        assert_eq!(x.difference(y), AttrSet::from_indices([0, 1]));
        assert_eq!(y.difference(x), AttrSet::singleton(3));
        // operator sugar
        assert_eq!(x | y, x.union(y));
        assert_eq!(x & y, x.intersect(y));
        assert_eq!(x - y, x.difference(y));
        assert_eq!(x ^ y, AttrSet::from_indices([0, 1, 3]));
    }

    #[test]
    fn assign_operators() {
        let mut s = AttrSet::from_indices([0, 1]);
        s |= AttrSet::singleton(2);
        assert_eq!(s, AttrSet::from_indices([0, 1, 2]));
        s &= AttrSet::from_indices([1, 2, 3]);
        assert_eq!(s, AttrSet::from_indices([1, 2]));
        s -= AttrSet::singleton(1);
        assert_eq!(s, AttrSet::singleton(2));
        s ^= AttrSet::from_indices([2, 3]);
        assert_eq!(s, AttrSet::singleton(3));
    }

    #[test]
    fn subset_relations() {
        let x = AttrSet::from_indices([1, 2]);
        let y = AttrSet::from_indices([0, 1, 2]);
        assert!(x.is_subset_of(y));
        assert!(x.is_proper_subset_of(y));
        assert!(!y.is_subset_of(x));
        assert!(y.is_superset_of(x));
        assert!(x.is_subset_of(x));
        assert!(!x.is_proper_subset_of(x));
        assert!(AttrSet::empty().is_subset_of(x));
        assert!(x.is_disjoint(AttrSet::from_indices([3, 4])));
        assert!(!x.is_disjoint(y));
    }

    #[test]
    fn min_max_attr() {
        let x = AttrSet::from_indices([5, 9, 63]);
        assert_eq!(x.min_attr(), Some(5));
        assert_eq!(x.max_attr(), Some(63));
        assert_eq!(AttrSet::singleton(0).min_attr(), Some(0));
        assert_eq!(AttrSet::singleton(0).max_attr(), Some(0));
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let x = AttrSet::from_indices([10, 3, 63, 0]);
        let v: Vec<usize> = x.iter().collect();
        assert_eq!(v, vec![0, 3, 10, 63]);
        assert_eq!(x.iter().len(), 4);
        let collected: AttrSet = v.into_iter().collect();
        assert_eq!(collected, x);
    }

    #[test]
    fn proper_subsets_one_smaller_enumerates_all() {
        let x = AttrSet::from_indices([1, 4, 6]);
        let subs: Vec<(usize, AttrSet)> = x.proper_subsets_one_smaller().collect();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs[0], (1, AttrSet::from_indices([4, 6])));
        assert_eq!(subs[1], (4, AttrSet::from_indices([1, 6])));
        assert_eq!(subs[2], (6, AttrSet::from_indices([1, 4])));
    }

    #[test]
    fn debug_and_display_formats() {
        let x = AttrSet::from_indices([0, 2]);
        assert_eq!(format!("{x:?}"), "{0,2}");
        assert_eq!(format!("{x}"), "{0,2}");
        let names: Vec<String> = ["A", "B", "C"].iter().map(|s| s.to_string()).collect();
        assert_eq!(format!("{}", x.display_with(&names)), "{A,C}");
        // out-of-range names fall back to the index
        let short: Vec<String> = vec!["A".to_string()];
        assert_eq!(format!("{}", x.display_with(&short)), "{A,#2}");
        assert_eq!(format!("{}", AttrSet::empty().display_with(&names)), "{}");
    }

    #[test]
    fn bits_roundtrip() {
        let x = AttrSet::from_indices([0, 5, 63]);
        assert_eq!(AttrSet::from_bits(x.bits()), x);
    }

    #[test]
    fn ordering_is_total_and_consistent_with_bits() {
        let a = AttrSet::from_indices([0]);
        let b = AttrSet::from_indices([1]);
        assert!(a < b); // bit 0 = 1 < bit 1 = 2
        let mut v = vec![b, a, AttrSet::empty()];
        v.sort();
        assert_eq!(v, vec![AttrSet::empty(), a, b]);
    }
}
