//! Property-based tests for `AttrSet`: the boolean-algebra laws that the
//! lattice search relies on.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_util::AttrSet;

fn attr_set() -> impl Strategy<Value = AttrSet> {
    any::<u64>().prop_map(AttrSet::from_bits)
}

proptest! {
    #[test]
    fn union_is_commutative_and_associative(x in attr_set(), y in attr_set(), z in attr_set()) {
        prop_assert_eq!(x.union(y), y.union(x));
        prop_assert_eq!(x.union(y).union(z), x.union(y.union(z)));
    }

    #[test]
    fn intersection_is_commutative_and_associative(x in attr_set(), y in attr_set(), z in attr_set()) {
        prop_assert_eq!(x.intersect(y), y.intersect(x));
        prop_assert_eq!(x.intersect(y).intersect(z), x.intersect(y.intersect(z)));
    }

    #[test]
    fn distributivity(x in attr_set(), y in attr_set(), z in attr_set()) {
        prop_assert_eq!(x.intersect(y.union(z)), x.intersect(y).union(x.intersect(z)));
        prop_assert_eq!(x.union(y.intersect(z)), x.union(y).intersect(x.union(z)));
    }

    #[test]
    fn difference_laws(x in attr_set(), y in attr_set()) {
        prop_assert!(x.difference(y).is_disjoint(y));
        prop_assert_eq!(x.difference(y).union(x.intersect(y)), x);
        prop_assert_eq!(x.difference(x), AttrSet::empty());
        prop_assert_eq!(x.difference(AttrSet::empty()), x);
    }

    #[test]
    fn subset_iff_union_absorbs(x in attr_set(), y in attr_set()) {
        prop_assert_eq!(x.is_subset_of(y), x.union(y) == y);
        prop_assert_eq!(x.is_subset_of(y), x.intersect(y) == x);
    }

    #[test]
    fn cardinality_inclusion_exclusion(x in attr_set(), y in attr_set()) {
        prop_assert_eq!(
            x.union(y).len() + x.intersect(y).len(),
            x.len() + y.len()
        );
    }

    #[test]
    fn iter_roundtrip(x in attr_set()) {
        let rebuilt: AttrSet = x.iter().collect();
        prop_assert_eq!(rebuilt, x);
        let v: Vec<usize> = x.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(&v, &sorted);
        prop_assert_eq!(v.len(), x.len());
    }

    #[test]
    fn with_without_inverse(x in attr_set(), a in 0usize..64) {
        prop_assert_eq!(x.with(a).without(a), x.without(a));
        prop_assert!(x.with(a).contains(a));
        prop_assert!(!x.without(a).contains(a));
        if x.contains(a) {
            prop_assert_eq!(x.without(a).with(a), x);
        }
    }

    #[test]
    fn one_smaller_subsets_cover_exactly(x in attr_set()) {
        let subs: Vec<(usize, AttrSet)> = x.proper_subsets_one_smaller().collect();
        prop_assert_eq!(subs.len(), x.len());
        for (a, s) in subs {
            prop_assert!(x.contains(a));
            prop_assert_eq!(s.with(a), x);
            prop_assert_eq!(s.len() + 1, x.len());
        }
    }
}
