//! Declarative synthetic relation generator.
//!
//! A [`DatasetSpec`] is a list of [`ColumnSpec`]s plus a row count and a
//! seed; [`generate`] turns it into a dictionary-encoded
//! [`Relation`]. Column kinds:
//!
//! * [`ColumnSpec::Categorical`] — uniform over a fixed domain; the bread
//!   and butter of the UCI emulators.
//! * [`ColumnSpec::Skewed`] — Zipf-like: code `k` has weight `1/(k+1)^s`.
//!   Models age/lab-value columns where a few values dominate.
//! * [`ColumnSpec::Unique`] — row identifier; a planted key.
//! * [`ColumnSpec::Derived`] — a deterministic function (hash) of other
//!   columns, folded into a domain: plants the exact dependency
//!   `parents → column`.
//! * [`ColumnSpec::NoisyDerived`] — derived, but each row is replaced by a
//!   uniform random value with probability `noise`: plants an approximate
//!   dependency with `g3 ≈ noise · (1 − 1/distinct)`.

use tane_relation::{Relation, RelationError, Schema};
use tane_util::SplitMix64;

/// One column of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSpec {
    /// Uniform over `0..distinct`.
    Categorical {
        /// Domain size.
        distinct: u32,
    },
    /// Zipf-like over `0..distinct` with the given exponent (≥ 0; 0 means
    /// uniform).
    Skewed {
        /// Domain size.
        distinct: u32,
        /// Skew exponent `s` in weight `1/(k+1)^s`.
        exponent: f64,
    },
    /// The row index itself: a planted key.
    Unique,
    /// Row `t` gets code `t mod distinct`: exactly `min(rows, distinct)`
    /// distinct values with evenly spread duplicates — models near-key
    /// identifier columns (e.g. the Wisconsin sample ids, 645 distinct over
    /// 699 rows).
    NearUnique {
        /// Number of distinct codes.
        distinct: u32,
    },
    /// Deterministic hash of the listed parent columns, folded into
    /// `0..distinct`: plants `parents → this` exactly.
    Derived {
        /// Indices of parent columns (must be earlier in the spec).
        of: Vec<usize>,
        /// Output domain size.
        distinct: u32,
    },
    /// Like [`ColumnSpec::Derived`], but each row is independently replaced
    /// by a uniform random value with probability `noise`.
    NoisyDerived {
        /// Indices of parent columns (must be earlier in the spec).
        of: Vec<usize>,
        /// Output domain size.
        distinct: u32,
        /// Per-row corruption probability in `[0, 1]`.
        noise: f64,
    },
}

/// A complete synthetic dataset description.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name (also the schema attribute prefix).
    pub name: String,
    /// Number of rows to generate.
    pub rows: usize,
    /// Column definitions, in schema order.
    pub columns: Vec<ColumnSpec>,
    /// RNG seed; the same spec always generates the same relation.
    pub seed: u64,
}

/// Generates the relation described by `spec`.
///
/// # Errors
///
/// Propagates schema construction errors (e.g. more than 64 columns).
///
/// # Panics
///
/// Panics if a derived column references itself or a later column, or if a
/// categorical domain is empty while rows are requested.
pub fn generate(spec: &DatasetSpec) -> Result<Relation, RelationError> {
    let mut rng = SplitMix64::new(spec.seed);
    let n = spec.rows;
    let mut columns: Vec<Vec<u32>> = Vec::with_capacity(spec.columns.len());

    for (idx, col) in spec.columns.iter().enumerate() {
        let data: Vec<u32> = match col {
            ColumnSpec::Categorical { distinct } => {
                assert!(*distinct > 0 || n == 0, "empty domain in column {idx}");
                (0..n).map(|_| rng.u32_below(*distinct)).collect()
            }
            ColumnSpec::Skewed { distinct, exponent } => {
                assert!(*distinct > 0 || n == 0, "empty domain in column {idx}");
                // Cumulative weights + binary search: O(log d) per draw, so
                // wide domains (adult's fnlwgt has 28k values) stay cheap.
                let mut cumulative = Vec::with_capacity(*distinct as usize);
                let mut total = 0.0f64;
                for k in 0..*distinct {
                    total += 1.0 / ((k + 1) as f64).powf(*exponent);
                    cumulative.push(total);
                }
                (0..n)
                    .map(|_| {
                        let pick = rng.f64_unit() * total;
                        cumulative.partition_point(|&c| c <= pick) as u32
                    })
                    .collect()
            }
            ColumnSpec::Unique => (0..n as u32).collect(),
            ColumnSpec::NearUnique { distinct } => {
                assert!(*distinct > 0 || n == 0, "empty domain in column {idx}");
                (0..n as u32).map(|t| t % *distinct).collect()
            }
            ColumnSpec::Derived { of, distinct } => {
                assert!(
                    of.iter().all(|&p| p < idx),
                    "column {idx} derives from a later column"
                );
                (0..n)
                    .map(|t| derive_code(&columns, of, t, *distinct, spec.seed, idx))
                    .collect()
            }
            ColumnSpec::NoisyDerived {
                of,
                distinct,
                noise,
            } => {
                assert!(
                    of.iter().all(|&p| p < idx),
                    "column {idx} derives from a later column"
                );
                (0..n)
                    .map(|t| {
                        if rng.bool_with_p(*noise) {
                            rng.u32_below(*distinct)
                        } else {
                            derive_code(&columns, of, t, *distinct, spec.seed, idx)
                        }
                    })
                    .collect()
            }
        };
        columns.push(data);
    }

    let schema = Schema::anonymous(spec.columns.len())?;
    Relation::from_codes(schema, columns)
}

/// Deterministic hash of the parent codes of row `t`, folded into
/// `0..distinct`. Uses an FxHash-style mix so different columns (via `salt`)
/// derive independent functions.
fn derive_code(
    columns: &[Vec<u32>],
    parents: &[usize],
    t: usize,
    distinct: u32,
    seed: u64,
    salt: usize,
) -> u32 {
    let mut h: u64 = seed ^ (salt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &p in parents {
        h = (h.rotate_left(5) ^ u64::from(columns[p][t])).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    // Final avalanche so low bits are well mixed before the modulo.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    (h % u64::from(distinct.max(1))) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_baselines::{fd_g3_rows, fd_holds};
    use tane_util::AttrSet;

    fn spec(rows: usize, columns: Vec<ColumnSpec>) -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            rows,
            columns,
            seed: 42,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec(
            100,
            vec![
                ColumnSpec::Categorical { distinct: 5 },
                ColumnSpec::Skewed {
                    distinct: 10,
                    exponent: 1.5,
                },
            ],
        );
        let a = generate(&s).unwrap();
        let b = generate(&s).unwrap();
        assert_eq!(a.column_codes(0), b.column_codes(0));
        assert_eq!(a.column_codes(1), b.column_codes(1));
        // Different seed, different data.
        let mut s2 = s.clone();
        s2.seed = 43;
        let c = generate(&s2).unwrap();
        assert_ne!(a.column_codes(0), c.column_codes(0));
    }

    #[test]
    fn categorical_respects_domain() {
        let r = generate(&spec(500, vec![ColumnSpec::Categorical { distinct: 7 }])).unwrap();
        assert_eq!(r.num_rows(), 500);
        assert!(r.column_codes(0).iter().all(|&c| c < 7));
        // With 500 draws over 7 values, all values appear w.h.p.
        assert_eq!(r.cardinality(0), 7);
    }

    #[test]
    fn skewed_prefers_small_codes() {
        let r = generate(&spec(
            2000,
            vec![ColumnSpec::Skewed {
                distinct: 20,
                exponent: 2.0,
            }],
        ))
        .unwrap();
        let codes = r.column_codes(0);
        let zeros = codes.iter().filter(|&&c| c == 0).count();
        let late = codes.iter().filter(|&&c| c >= 10).count();
        assert!(
            zeros > late,
            "zipf head must dominate the tail: {zeros} vs {late}"
        );
    }

    #[test]
    fn unique_is_a_key() {
        let r = generate(&spec(
            50,
            vec![ColumnSpec::Unique, ColumnSpec::Categorical { distinct: 3 }],
        ))
        .unwrap();
        assert_eq!(r.cardinality(0), 50);
        assert!(fd_holds(&r, AttrSet::singleton(0), 1));
    }

    #[test]
    fn derived_plants_exact_fd() {
        let r = generate(&spec(
            300,
            vec![
                ColumnSpec::Categorical { distinct: 6 },
                ColumnSpec::Categorical { distinct: 6 },
                ColumnSpec::Derived {
                    of: vec![0, 1],
                    distinct: 4,
                },
            ],
        ))
        .unwrap();
        assert!(fd_holds(&r, AttrSet::from_indices([0, 1]), 2));
        // The hash genuinely depends on both parents: neither alone works.
        assert!(!fd_holds(&r, AttrSet::singleton(0), 2));
        assert!(!fd_holds(&r, AttrSet::singleton(1), 2));
    }

    #[test]
    fn noisy_derived_plants_approximate_fd() {
        let noise = 0.1;
        let r = generate(&spec(
            2000,
            vec![
                ColumnSpec::Categorical { distinct: 5 },
                ColumnSpec::NoisyDerived {
                    of: vec![0],
                    distinct: 8,
                    noise,
                },
            ],
        ))
        .unwrap();
        let g3 = fd_g3_rows(&r, AttrSet::singleton(0), 1) as f64 / 2000.0;
        assert!(g3 > 0.0, "noise must break exactness");
        // Expected error ≈ noise · (1 − 1/8) ≈ 0.0875; allow generous slack.
        assert!(g3 < 0.2, "g3 = {g3} too large for 10% noise");
    }

    #[test]
    fn zero_rows() {
        let r = generate(&spec(0, vec![ColumnSpec::Categorical { distinct: 3 }])).unwrap();
        assert_eq!(r.num_rows(), 0);
    }

    #[test]
    #[should_panic(expected = "later column")]
    fn derived_forward_reference_panics() {
        let _ = generate(&spec(
            10,
            vec![ColumnSpec::Derived {
                of: vec![1],
                distinct: 2,
            }],
        ));
    }
}
