#![forbid(unsafe_code)]
//! Synthetic datasets emulating the paper's experimental corpus.
//!
//! The paper evaluates on five UCI Machine Learning Repository datasets
//! (Lymphography, Hepatitis, Wisconsin breast cancer, Adult, Chess/KRK)
//! plus `×n` concatenations of the Wisconsin data. Those files are not
//! available in this offline build, so this crate generates **synthetic
//! stand-ins with the same row counts, attribute counts, and per-attribute
//! domain profiles** (see DESIGN.md §4). TANE's and FDEP's costs are driven
//! by exactly those parameters plus the induced dependency structure, so
//! the *shape* of every experiment — who wins, how the curves bend — is
//! preserved even though absolute dependency counts differ from the UCI
//! originals.
//!
//! * [`generator`] — a small declarative dataset generator: categorical,
//!   skewed, unique, derived (plants exact FDs) and noisy-derived (plants
//!   approximate FDs with a known error) columns.
//! * [`uci`] — the five paper datasets as fixed-seed generator specs, plus
//!   the `×n` scaling construction.
//! * [`planted`] — relations with a known dependency structure for tests
//!   and examples.

pub mod generator;
pub mod planted;
pub mod uci;

pub use generator::{generate, ColumnSpec, DatasetSpec};
pub use planted::{planted_relation, PLANTED_NAMES};
pub use uci::{
    adult, by_name, chess_krk, hepatitis, lymphography, scaled_wbc, wisconsin_breast_cancer,
    DATASET_NAMES,
};
