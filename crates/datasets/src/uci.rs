//! Synthetic stand-ins for the UCI datasets of the paper's Section 7.
//!
//! Each function reproduces the published row count, attribute count, and
//! (from the UCI documentation) the per-attribute domain profile of the
//! original, with a fixed seed so every run of the benchmark harness sees
//! identical data. See DESIGN.md §4 for the substitution argument.

use crate::generator::{generate, ColumnSpec, DatasetSpec};
use tane_relation::{Relation, Schema};

/// Names accepted by [`by_name`], in the order of Table 1.
pub const DATASET_NAMES: &[&str] = &["lymphography", "hepatitis", "wbc", "adult", "chess"];

/// Looks a dataset up by its Table 1 name. `wbc` is the Wisconsin breast
/// cancer data; use [`scaled_wbc`] for the `×n` variants.
pub fn by_name(name: &str) -> Option<Relation> {
    match name {
        "lymphography" => Some(lymphography()),
        "hepatitis" => Some(hepatitis()),
        "wbc" => Some(wisconsin_breast_cancer()),
        "adult" => Some(adult()),
        "chess" => Some(chess_krk()),
        _ => None,
    }
}

/// Lymphography: 148 rows × 19 attributes, small categorical domains of
/// 2–8 values (per the UCI documentation), with the symptom correlations of
/// real clinical data modelled by seven noisily-derived columns. Calibrated
/// to the paper's regime: N = 2798 minimal FDs on this generator vs. 2730
/// on the UCI original.
pub fn lymphography() -> Relation {
    let base: [u32; 12] = [4, 4, 2, 2, 2, 2, 2, 2, 2, 3, 4, 8];
    let mut columns: Vec<ColumnSpec> = base
        .into_iter()
        .map(|d| ColumnSpec::Skewed {
            distinct: d,
            exponent: 1.0,
        })
        .collect();
    // Correlated symptom columns: each follows two earlier attributes with
    // a small exception rate.
    for i in 0..7 {
        columns.push(ColumnSpec::NoisyDerived {
            of: vec![i, i + 3],
            distinct: 3,
            noise: 0.02,
        });
    }
    generate(&DatasetSpec {
        name: "lymphography".into(),
        rows: 148,
        columns,
        seed: 1,
    })
    .expect("static spec is valid")
}

/// Hepatitis: 155 rows × 20 attributes — a class column, many binary
/// symptom columns (partially correlated with the class and each other, as
/// in the clinical original), and five lab-value columns with wide, skewed
/// domains (age, bilirubin, alk-phosphate, SGOT, albumin, protime).
/// Calibrated: N = 6554 minimal FDs vs. 8250 on the UCI original.
pub fn hepatitis() -> Relation {
    let mut columns = vec![
        ColumnSpec::Skewed {
            distinct: 2,
            exponent: 1.0,
        }, // class
        ColumnSpec::Skewed {
            distinct: 50,
            exponent: 0.8,
        }, // age
        ColumnSpec::Skewed {
            distinct: 2,
            exponent: 0.7,
        }, // sex
    ];
    // Eight symptom columns: four independent, four following the class and
    // an earlier symptom with a 5% exception rate.
    for i in 0..8usize {
        if i < 4 {
            columns.push(ColumnSpec::Skewed {
                distinct: 2,
                exponent: 1.0,
            });
        } else {
            columns.push(ColumnSpec::NoisyDerived {
                of: vec![0, (i - 4) + 3],
                distinct: 2,
                noise: 0.05,
            });
        }
    }
    // Four more symptoms correlated with symptom pairs.
    for i in 0..4usize {
        columns.push(ColumnSpec::NoisyDerived {
            of: vec![i + 3, i + 4],
            distinct: 2,
            noise: 0.03,
        });
    }
    columns.extend([
        ColumnSpec::Skewed {
            distinct: 35,
            exponent: 0.7,
        }, // bilirubin
        ColumnSpec::Skewed {
            distinct: 85,
            exponent: 0.6,
        }, // alk phosphate
        ColumnSpec::Skewed {
            distinct: 85,
            exponent: 0.6,
        }, // sgot
        ColumnSpec::Skewed {
            distinct: 30,
            exponent: 0.7,
        }, // albumin
        ColumnSpec::Skewed {
            distinct: 45,
            exponent: 0.7,
        }, // protime
    ]);
    generate(&DatasetSpec {
        name: "hepatitis".into(),
        rows: 155,
        columns,
        seed: 2,
    })
    .expect("static spec is valid")
}

/// Wisconsin breast cancer: 699 rows × 11 attributes — a sample-id column
/// that is *almost* a key (the UCI file has 645 distinct ids over 699
/// rows), nine cytology features with domains of 10 but heavily skewed
/// toward benign low values (as in the original, where most cells score 1),
/// and a binary class that largely follows the features. Calibrated:
/// N = 48 minimal FDs vs. 46 on the UCI original.
pub fn wisconsin_breast_cancer() -> Relation {
    let mut columns = vec![ColumnSpec::NearUnique { distinct: 645 }];
    columns.extend(
        std::iter::repeat_with(|| ColumnSpec::Skewed {
            distinct: 10,
            exponent: 3.0,
        })
        .take(9),
    );
    // class follows three features with some noise — a realistic
    // approximate dependency.
    columns.push(ColumnSpec::NoisyDerived {
        of: vec![1, 2, 3],
        distinct: 2,
        noise: 0.05,
    });
    generate(&DatasetSpec {
        name: "wbc".into(),
        rows: 699,
        columns,
        seed: 3,
    })
    .expect("static spec is valid")
}

/// Wisconsin breast cancer `×n`: the paper's scale-up construction —
/// `n` disjoint copies ("all values in each copy were appended with a
/// unique string specific to that copy"), identical dependency structure,
/// `699·n` rows.
///
/// # Panics
///
/// Panics if `n` is 0.
pub fn scaled_wbc(n: usize) -> Relation {
    wisconsin_breast_cancer()
        .concat_disjoint_copies(n)
        .expect("wbc codes are small enough for any practical n")
}

/// Adult (census income): 48842 rows × 15 attributes with the UCI domain
/// profile — a near-continuous `fnlwgt` column, heavily zero-concentrated
/// capital gain/loss columns (≈ 90% of census rows report 0), several
/// mid-size categorical columns, the education ≡ education-num exact FD of
/// the original, and a binary class. Calibrated: N = 75 minimal FDs vs. 85
/// on the UCI original.
pub fn adult() -> Relation {
    let columns = vec![
        ColumnSpec::Skewed {
            distinct: 74,
            exponent: 1.3,
        }, // age
        ColumnSpec::Skewed {
            distinct: 9,
            exponent: 1.2,
        }, // workclass
        ColumnSpec::Skewed {
            distinct: 28000,
            exponent: 0.9,
        }, // fnlwgt
        ColumnSpec::Skewed {
            distinct: 16,
            exponent: 1.0,
        }, // education
        ColumnSpec::Derived {
            of: vec![3],
            distinct: 16,
        }, // education-num ≡ education
        ColumnSpec::Skewed {
            distinct: 7,
            exponent: 0.8,
        }, // marital-status
        ColumnSpec::Skewed {
            distinct: 15,
            exponent: 1.0,
        }, // occupation
        ColumnSpec::Skewed {
            distinct: 6,
            exponent: 0.8,
        }, // relationship
        ColumnSpec::Skewed {
            distinct: 5,
            exponent: 1.5,
        }, // race
        ColumnSpec::Skewed {
            distinct: 2,
            exponent: 0.5,
        }, // sex
        ColumnSpec::Skewed {
            distinct: 120,
            exponent: 3.0,
        }, // capital-gain
        ColumnSpec::Skewed {
            distinct: 99,
            exponent: 3.0,
        }, // capital-loss
        ColumnSpec::Skewed {
            distinct: 96,
            exponent: 1.3,
        }, // hours-per-week
        ColumnSpec::Skewed {
            distinct: 42,
            exponent: 1.6,
        }, // native-country
        ColumnSpec::Skewed {
            distinct: 2,
            exponent: 0.5,
        }, // class
    ];
    generate(&DatasetSpec {
        name: "adult".into(),
        rows: 48842,
        columns,
        seed: 4,
    })
    .expect("static spec is valid")
}

/// Chess (King-Rook vs King endgame): all legal positions of white king,
/// white rook and black king (white king canonicalized to the a1–d4
/// triangle as in the UCI file), 6 board attributes of domain 8 plus an
/// 18-valued depth-of-win class that is a deterministic function of the
/// full position. The UCI original has 28056 rows and exactly **one**
/// minimal FD (the position determines the class); this construction
/// reproduces both properties mechanically.
pub fn chess_krk() -> Relation {
    let mut cols: Vec<Vec<u32>> = vec![Vec::new(); 7];
    // White king restricted to the triangle file ≤ 3, rank ≤ file — the
    // 10-square fundamental domain of the board's symmetry group.
    for wkf in 0u32..4 {
        for wkr in 0..=wkf {
            for wrf in 0u32..8 {
                for wrr in 0u32..8 {
                    if (wrf, wrr) == (wkf, wkr) {
                        continue;
                    }
                    for bkf in 0u32..8 {
                        for bkr in 0u32..8 {
                            if !legal_krk(wkf, wkr, wrf, wrr, bkf, bkr) {
                                continue;
                            }
                            let class = krk_class(wkf, wkr, wrf, wrr, bkf, bkr);
                            for (c, v) in cols.iter_mut().zip([wkf, wkr, wrf, wrr, bkf, bkr, class])
                            {
                                c.push(v);
                            }
                        }
                    }
                }
            }
        }
    }
    let schema =
        Schema::new(["wkf", "wkr", "wrf", "wrr", "bkf", "bkr", "class"]).expect("static names");
    Relation::from_codes(schema, cols).expect("columns are equal length")
}

/// Legality for the KRK endgame with black to move: distinct squares, kings
/// not adjacent, black king not already attacked by the rook.
fn legal_krk(wkf: u32, wkr: u32, wrf: u32, wrr: u32, bkf: u32, bkr: u32) -> bool {
    let same = |af: u32, ar: u32, bf: u32, br: u32| af == bf && ar == br;
    if same(bkf, bkr, wkf, wkr) || same(bkf, bkr, wrf, wrr) {
        return false;
    }
    // Kings may not be adjacent.
    if wkf.abs_diff(bkf) <= 1 && wkr.abs_diff(bkr) <= 1 {
        return false;
    }
    // Black king in check from the rook (with the white king as the only
    // possible blocker) is illegal with black to move... actually it means
    // black is in check and must respond — the UCI data keeps such
    // positions. We exclude only the rook *capturable* square handled above
    // and positions where the rook attacks through nothing. Keep check
    // positions; exclude none further.
    true
}

/// Deterministic pseudo depth-of-win in 18 classes (draw + 0–16 moves),
/// mixing the full position so that no proper subset of the six board
/// attributes determines it.
fn krk_class(wkf: u32, wkr: u32, wrf: u32, wrr: u32, bkf: u32, bkr: u32) -> u32 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in [wkf, wkr, wrf, wrr, bkf, bkr] {
        h = (h.rotate_left(7) ^ u64::from(v)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    h ^= h >> 31;
    (h % 18) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let l = lymphography();
        assert_eq!((l.num_rows(), l.num_attrs()), (148, 19));
        let h = hepatitis();
        assert_eq!((h.num_rows(), h.num_attrs()), (155, 20));
        let w = wisconsin_breast_cancer();
        assert_eq!((w.num_rows(), w.num_attrs()), (699, 11));
    }

    #[test]
    fn adult_shape() {
        let a = adult();
        assert_eq!((a.num_rows(), a.num_attrs()), (48842, 15));
        // education-num mirrors education exactly (a real Adult FD).
        assert!(tane_baselines::fd_holds(
            &a,
            tane_util::AttrSet::singleton(3),
            4
        ));
    }

    #[test]
    fn chess_shape_and_structure() {
        let c = chess_krk();
        assert_eq!(c.num_attrs(), 7);
        // Same order of magnitude as the UCI original's 28056 rows.
        assert!(
            (20000..40000).contains(&c.num_rows()),
            "got {} rows",
            c.num_rows()
        );
        // The full position is a key; class has 18 values.
        assert_eq!(c.cardinality(6), 18);
        assert!(tane_baselines::fd_holds(
            &c,
            tane_util::AttrSet::from_indices(0..6),
            6
        ));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            lymphography().column_codes(5),
            lymphography().column_codes(5)
        );
        assert_eq!(hepatitis().column_codes(1), hepatitis().column_codes(1));
        assert_eq!(
            wisconsin_breast_cancer().column_codes(0),
            wisconsin_breast_cancer().column_codes(0)
        );
    }

    #[test]
    fn scaled_wbc_multiplies_rows_only() {
        let base = wisconsin_breast_cancer();
        let x4 = scaled_wbc(4);
        assert_eq!(x4.num_rows(), 4 * base.num_rows());
        assert_eq!(x4.num_attrs(), base.num_attrs());
    }

    #[test]
    fn by_name_registry() {
        for &name in DATASET_NAMES {
            assert!(by_name(name).is_some(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn wbc_id_is_near_key() {
        let w = wisconsin_breast_cancer();
        let distinct = w.cardinality(0) as usize;
        assert!(distinct > 500 && distinct < 699, "id distinct = {distinct}");
    }
}
