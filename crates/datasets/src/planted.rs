//! Relations with a known, planted dependency structure.
//!
//! Used by examples (data cleaning, schema reverse engineering) and by
//! tests that need to assert *specific* discovered dependencies rather than
//! cross-check algorithms against each other.

use crate::generator::{generate, ColumnSpec, DatasetSpec};
use tane_relation::Relation;

/// Builds a relation shaped like a denormalized order table:
///
/// | # | column        | structure                                     |
/// |---|---------------|-----------------------------------------------|
/// | 0 | order_id      | unique key                                     |
/// | 1 | customer_id   | categorical                                    |
/// | 2 | customer_city | determined by customer_id (exact FD)           |
/// | 3 | product_id    | categorical                                    |
/// | 4 | product_price | determined by product_id, with `noise` errors  |
/// | 5 | quantity      | independent categorical                        |
///
/// With `noise = 0` the planted dependencies are exact; with a small
/// `noise`, `product_id → product_price` becomes an approximate dependency
/// whose exceptions model data-entry errors.
pub fn planted_relation(rows: usize, noise: f64, seed: u64) -> Relation {
    let spec = DatasetSpec {
        name: "orders".into(),
        rows,
        columns: vec![
            ColumnSpec::Unique,                       // order_id
            ColumnSpec::Categorical { distinct: 40 }, // customer_id
            ColumnSpec::Derived {
                of: vec![1],
                distinct: 12,
            }, // customer_city
            ColumnSpec::Categorical { distinct: 25 }, // product_id
            ColumnSpec::NoisyDerived {
                of: vec![3],
                distinct: 30,
                noise,
            }, // product_price
            ColumnSpec::Categorical { distinct: 5 },  // quantity
        ],
        seed,
    };
    generate(&spec).expect("static spec is valid")
}

/// The attribute names for [`planted_relation`], for pretty-printing.
pub const PLANTED_NAMES: [&str; 6] = [
    "order_id",
    "customer_id",
    "customer_city",
    "product_id",
    "product_price",
    "quantity",
];

#[cfg(test)]
mod tests {
    use super::*;
    use tane_baselines::{fd_g3_rows, fd_holds};
    use tane_util::AttrSet;

    #[test]
    fn exact_planted_fds_hold() {
        let r = planted_relation(500, 0.0, 7);
        assert!(fd_holds(&r, AttrSet::singleton(0), 1)); // key → everything
        assert!(fd_holds(&r, AttrSet::singleton(1), 2)); // customer → city
        assert!(fd_holds(&r, AttrSet::singleton(3), 4)); // product → price
        assert!(!fd_holds(&r, AttrSet::singleton(1), 3));
    }

    #[test]
    fn noise_makes_price_approximate() {
        let r = planted_relation(1000, 0.08, 7);
        assert!(
            fd_holds(&r, AttrSet::singleton(1), 2),
            "city FD stays exact"
        );
        let g3 = fd_g3_rows(&r, AttrSet::singleton(3), 4) as f64 / 1000.0;
        assert!(g3 > 0.01 && g3 < 0.2, "g3 = {g3}");
    }

    #[test]
    fn deterministic() {
        let a = planted_relation(100, 0.1, 3);
        let b = planted_relation(100, 0.1, 3);
        assert_eq!(a.column_codes(4), b.column_codes(4));
    }
}
