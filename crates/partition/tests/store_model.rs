//! Model-based test: the disk store (segments, LRU cache, reaping) must be
//! observationally identical to the in-memory store under arbitrary
//! operation sequences.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_partition::{DiskStore, MemoryStore, PartitionStore, StrippedPartition};
use tane_util::AttrSet;

#[derive(Debug, Clone)]
enum Op {
    Put { key: u8, shape: u8 },
    Get { key: u8 },
    Remove { key: u8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(key, shape)| Op::Put {
            key: key % 24,
            shape
        }),
        any::<u8>().prop_map(|key| Op::Get { key: key % 24 }),
        any::<u8>().prop_map(|key| Op::Remove { key: key % 24 }),
    ]
}

/// A deterministic partition for a given shape byte.
fn partition(shape: u8) -> StrippedPartition {
    let extra = usize::from(shape % 13);
    let mut elements = vec![0u32, 1];
    elements.extend(2..(2 + extra as u32 + 2));
    let split = 2 + (extra as u32 + 2) / 2;
    let begins = if split >= 2 && elements.len() as u32 - split >= 2 {
        vec![0, split, elements.len() as u32]
    } else {
        vec![0, elements.len() as u32]
    };
    StrippedPartition::from_parts(64, elements, begins)
}

fn key_of(k: u8) -> AttrSet {
    AttrSet::from_bits(u64::from(k) + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn disk_store_refines_memory_model(ops in proptest::collection::vec(op(), 1..120)) {
        let mut model = MemoryStore::new();
        // A tiny cache budget maximizes eviction/reload traffic.
        let mut disk = DiskStore::new(512).unwrap();
        for op in &ops {
            match *op {
                Op::Put { key, shape } => {
                    let p = partition(shape);
                    model.put(key_of(key), p.clone()).unwrap();
                    disk.put(key_of(key), p).unwrap();
                }
                Op::Get { key } => {
                    let want = model.get(key_of(key));
                    let got = disk.get(key_of(key));
                    match (want, got) {
                        (Ok(w), Ok(g)) => prop_assert_eq!(&*w, &*g),
                        (Err(_), Err(_)) => {}
                        (w, g) => prop_assert!(false, "model {:?} vs disk {:?}", w.is_ok(), g.is_ok()),
                    }
                }
                Op::Remove { key } => {
                    model.remove(key_of(key));
                    disk.remove(key_of(key));
                }
            }
            prop_assert_eq!(model.len(), disk.len());
        }
        // Final sweep: every surviving key must round-trip identically.
        for k in 0u8..24 {
            let want = model.get(key_of(k));
            let got = disk.get(key_of(k));
            match (want, got) {
                (Ok(w), Ok(g)) => prop_assert_eq!(&*w, &*g, "key {}", k),
                (Err(_), Err(_)) => {}
                (w, g) => prop_assert!(false, "key {}: model {:?} vs disk {:?}", k, w.is_ok(), g.is_ok()),
            }
        }
    }
}
