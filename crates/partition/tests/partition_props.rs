//! Property-based tests: the stripped fast paths must agree with the
//! textbook full-partition reference on arbitrary random relations, and the
//! paper's lemmas must hold.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_partition::{
    g3_removed_rows, product, G3Bounds, MemoryStore, Partition, PartitionStore, StrippedPartition,
};
use tane_relation::{Relation, Schema};
use tane_util::AttrSet;

/// Random relation: up to 5 attributes, up to 40 rows, small domains so
/// agreements are frequent.
fn relation() -> impl Strategy<Value = Relation> {
    (1usize..=5, 0usize..=40).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(0u32..4, n_rows..=n_rows),
            n_attrs..=n_attrs,
        )
        .prop_map(move |cols| {
            Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
        })
    })
}

fn subsets(n_attrs: usize) -> impl Iterator<Item = AttrSet> {
    (0u64..(1 << n_attrs)).map(AttrSet::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Stripped and full partitions agree on every attribute subset.
    #[test]
    fn stripped_matches_full(r in relation()) {
        for x in subsets(r.num_attrs()) {
            let full = Partition::from_attr_set(&r, x);
            let stripped = StrippedPartition::from_attr_set(&r, x);
            prop_assert_eq!(full.rank(), stripped.rank(), "rank of {:?}", x);
            prop_assert_eq!(full.to_stripped().canonicalize(), stripped.canonicalize());
        }
    }

    /// Lemma 3: products equal direct computation, for random subset pairs.
    #[test]
    fn lemma3_product(r in relation()) {
        let n = r.num_attrs();
        for x in subsets(n).step_by(3) {
            for y in subsets(n).step_by(2) {
                let px = StrippedPartition::from_attr_set(&r, x);
                let py = StrippedPartition::from_attr_set(&r, y);
                let direct = StrippedPartition::from_attr_set(&r, x.union(y));
                prop_assert_eq!(
                    product(&px, &py).canonicalize(),
                    direct.canonicalize(),
                    "X={:?} Y={:?}", x, y
                );
            }
        }
    }

    /// Lemmas 1 and 2 agree: refinement ⟺ equal rank ⟺ FD holds by brute force.
    #[test]
    fn lemma1_and_lemma2_agree(r in relation()) {
        let n = r.num_attrs();
        for x in subsets(n) {
            for a in 0..n {
                if x.contains(a) {
                    continue;
                }
                // Brute-force FD check on codes.
                let holds = fd_holds_brute_force(&r, x, a);
                let full_x = Partition::from_attr_set(&r, x);
                let full_a = Partition::from_attr_set(&r, AttrSet::singleton(a));
                prop_assert_eq!(full_x.refines(&full_a), holds, "lemma1 X={:?} A={}", x, a);
                let sx = StrippedPartition::from_attr_set(&r, x);
                let sxa = StrippedPartition::from_attr_set(&r, x.with(a));
                prop_assert_eq!(sx.rank() == sxa.rank(), holds, "lemma2 X={:?} A={}", x, a);
                prop_assert_eq!(sx.implies_with(&sxa), holds);
            }
        }
    }

    /// g3 is 0 exactly when the FD holds, and the bounds always sandwich it.
    #[test]
    fn g3_consistency(r in relation()) {
        let n = r.num_attrs();
        for x in subsets(n) {
            for a in 0..n {
                if x.contains(a) {
                    continue;
                }
                let sx = StrippedPartition::from_attr_set(&r, x);
                let sxa = StrippedPartition::from_attr_set(&r, x.with(a));
                let removed = g3_removed_rows(&sx, &sxa);
                let holds = fd_holds_brute_force(&r, x, a);
                prop_assert_eq!(removed == 0, holds, "X={:?} A={}", x, a);
                let bounds = G3Bounds::new(&sx, &sxa);
                prop_assert!(bounds.lower_rows <= removed);
                prop_assert!(removed <= bounds.upper_rows);
                // Removing that many rows must actually suffice: verify via
                // the definitional keep-count.
                prop_assert!(removed <= r.num_rows());
            }
        }
    }

    /// g3 monotonicity: enlarging the LHS never increases the error.
    #[test]
    fn g3_monotone_in_lhs(r in relation()) {
        let n = r.num_attrs();
        if n < 2 {
            return Ok(());
        }
        for x in subsets(n) {
            for b in 0..n {
                if x.contains(b) {
                    continue;
                }
                for a in 0..n {
                    if x.contains(a) || a == b {
                        continue;
                    }
                    let small = g3_removed_rows(
                        &StrippedPartition::from_attr_set(&r, x),
                        &StrippedPartition::from_attr_set(&r, x.with(a)),
                    );
                    let xb = x.with(b);
                    let large = g3_removed_rows(
                        &StrippedPartition::from_attr_set(&r, xb),
                        &StrippedPartition::from_attr_set(&r, xb.with(a)),
                    );
                    prop_assert!(large <= small, "X={:?} B={} A={}", x, b, a);
                }
            }
        }
    }

    /// The memory store returns exactly what was put, for many keys.
    #[test]
    fn memory_store_faithful(r in relation()) {
        let mut store = MemoryStore::new();
        for x in subsets(r.num_attrs()) {
            store.put(x, StrippedPartition::from_attr_set(&r, x)).unwrap();
        }
        for x in subsets(r.num_attrs()) {
            let got = store.get(x).unwrap();
            prop_assert_eq!(
                got.canonicalize(),
                StrippedPartition::from_attr_set(&r, x).canonicalize()
            );
        }
    }
}

/// Reference FD check straight from the definition in Section 1.
fn fd_holds_brute_force(r: &Relation, x: AttrSet, a: usize) -> bool {
    for t in 0..r.num_rows() {
        for u in (t + 1)..r.num_rows() {
            let agree_x = x
                .iter()
                .all(|b| r.column_codes(b)[t] == r.column_codes(b)[u]);
            if agree_x && r.column_codes(a)[t] != r.column_codes(a)[u] {
                return false;
            }
        }
    }
    true
}
