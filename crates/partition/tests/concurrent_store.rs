//! Concurrent-read contract of [`SegmentStore`]: many threads fetching
//! through `&self` must observe byte-identical partitions, and single-flight
//! miss loading must keep the disk-read counters exact — one read per
//! distinct cold key, no matter how many threads race for it.

use std::sync::Arc;
use tane_partition::{PartitionStore, SegmentStore, StrippedPartition};
use tane_util::AttrSet;

/// A distinguishable partition per index: classes {0,1} and {2..i+4}.
fn sample(i: u32) -> StrippedPartition {
    let mut elements = vec![0, 1];
    elements.extend(2..(i + 4));
    let begins = vec![0, 2, elements.len() as u32];
    StrippedPartition::from_parts(4096, elements, begins)
}

fn keys(n: u32) -> Vec<AttrSet> {
    (0..n)
        .map(|i| AttrSet::from_bits(u64::from(i) + 1))
        .collect()
}

/// 8 threads sweep disjoint slices of a sealed, fully evicted level; every
/// partition must come back byte-identical to what was stored.
#[test]
fn concurrent_disjoint_reads_are_byte_identical() {
    const N: u32 = 256;
    const THREADS: usize = 8;
    let mut store = SegmentStore::new(0).unwrap(); // zero budget: all reads cold
    let ks = keys(N);
    for (i, &k) in ks.iter().enumerate() {
        store.put(k, sample(i as u32)).unwrap();
    }
    store.seal_level().unwrap();
    {
        // Drain the level out of the cache so every fetch hits disk.
        let phase = store.begin_read_phase();
        store.end_read_phase(phase);
    }
    assert_eq!(store.resident_bytes(), 0);

    let store = Arc::new(store);
    let phase = store.begin_read_phase();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let ks = &ks;
            scope.spawn(move || {
                for (i, &k) in ks.iter().enumerate().skip(t).step_by(THREADS) {
                    let got = store.get(k).unwrap();
                    assert_eq!(*got, sample(i as u32), "key {i} from thread {t}");
                }
            });
        }
    });
    store.end_read_phase(phase);
    assert_eq!(
        store.disk_reads(),
        u64::from(N),
        "each cold key is read exactly once"
    );
}

/// 8 threads all hammer the SAME small key set inside one read phase:
/// single-flight loading plus phase pinning must coalesce every race to
/// exactly one disk read per distinct key.
#[test]
fn concurrent_shared_key_flood_reads_each_key_once() {
    const N: u32 = 32;
    const THREADS: usize = 8;
    const ROUNDS: usize = 40;
    let mut store = SegmentStore::new(0).unwrap();
    let ks = keys(N);
    for (i, &k) in ks.iter().enumerate() {
        store.put(k, sample(i as u32)).unwrap();
    }
    store.seal_level().unwrap();
    {
        let phase = store.begin_read_phase();
        store.end_read_phase(phase);
    }
    assert_eq!(store.resident_bytes(), 0);

    let store = Arc::new(store);
    let phase = store.begin_read_phase();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            let ks = &ks;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Vary the visit order per thread and round so the
                    // races land on different keys each pass.
                    for j in 0..ks.len() {
                        let i = (j * (t + 1) + round) % ks.len();
                        let got = store.get(ks[i]).unwrap();
                        assert_eq!(*got, sample(i as u32), "key {i} thread {t}");
                    }
                }
            });
        }
    });
    store.end_read_phase(phase);
    assert_eq!(
        store.disk_reads(),
        u64::from(N),
        "{THREADS} threads x {ROUNDS} rounds must coalesce to one read per key"
    );
    assert_eq!(store.snapshot_pins(), u64::from(N));
    assert_eq!(store.resident_bytes(), 0, "phase end evicts to zero budget");
}

/// Repeated phases over the same working set: the read counters are a pure
/// function of the access pattern (per-phase cold sets), not of timing.
#[test]
fn read_counts_are_reproducible_across_runs() {
    const N: u32 = 64;
    let totals: Vec<u64> = (0..3)
        .map(|_| {
            let mut store = SegmentStore::new(0).unwrap();
            let ks = keys(N);
            for (i, &k) in ks.iter().enumerate() {
                store.put(k, sample(i as u32)).unwrap();
            }
            store.seal_level().unwrap();
            {
                let phase = store.begin_read_phase();
                store.end_read_phase(phase);
            }
            let store = Arc::new(store);
            for _ in 0..4 {
                let phase = store.begin_read_phase();
                std::thread::scope(|scope| {
                    for t in 0..4 {
                        let store = Arc::clone(&store);
                        let ks = &ks;
                        scope.spawn(move || {
                            for (i, &k) in ks.iter().enumerate().skip(t).step_by(4) {
                                assert_eq!(*store.get(k).unwrap(), sample(i as u32));
                            }
                        });
                    }
                });
                store.end_read_phase(phase);
            }
            store.disk_reads()
        })
        .collect();
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[1], totals[2]);
    // Zero budget: every phase re-reads its whole working set.
    assert_eq!(totals[0], u64::from(N) * 4);
}
