//! Unstripped partitions: the textbook representation of Section 2.
//!
//! [`Partition`] keeps *every* equivalence class, including singletons, and
//! implements the definitions of the paper directly: refinement (Lemma 1),
//! rank, and product. It is deliberately simple — the production code uses
//! [`StrippedPartition`] — and serves as the
//! reference implementation that the stripped fast paths are property-tested
//! against, as well as the representation used in the didactic examples.

use crate::stripped::StrippedPartition;
use tane_relation::Relation;
use tane_util::{AttrSet, FxHashMap};

/// A full (unstripped) partition `π_X`: every row appears in exactly one
/// equivalence class.
///
/// # Examples
///
/// ```
/// use tane_partition::Partition;
///
/// // π for codes [0,0,1]: classes {0,1} and {2}
/// let p = Partition::from_column(&[0, 0, 1]);
/// assert_eq!(p.rank(), 2);
/// let q = Partition::from_column(&[0, 1, 1]);
/// // Their product distinguishes all three rows.
/// assert_eq!(p.product(&q).rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    n_rows: usize,
    /// Classes in canonical order (sorted internally, ordered by first row).
    classes: Vec<Vec<u32>>,
}

impl Partition {
    /// Builds `π_{A}` from a dictionary-code column.
    pub fn from_column(codes: &[u32]) -> Partition {
        let mut groups: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for (row, &c) in codes.iter().enumerate() {
            groups.entry(c).or_default().push(row as u32);
        }
        // lint:allow(determinism): from_classes canonicalizes — it sorts
        // every class and orders classes by first row, erasing hash order.
        Partition::from_classes(codes.len(), groups.into_values().collect())
    }

    /// Builds `π_X` for an arbitrary attribute set by grouping rows on their
    /// code tuples.
    pub fn from_attr_set(relation: &Relation, x: AttrSet) -> Partition {
        let n = relation.num_rows();
        if x.is_empty() {
            return Partition::from_classes(
                n,
                if n == 0 {
                    vec![]
                } else {
                    vec![(0..n as u32).collect()]
                },
            );
        }
        let mut groups: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
        for row in 0..n {
            let key: Vec<u32> = x.iter().map(|a| relation.column_codes(a)[row]).collect();
            groups.entry(key).or_default().push(row as u32);
        }
        // lint:allow(determinism): from_classes canonicalizes — it sorts
        // every class and orders classes by first row, erasing hash order.
        Partition::from_classes(n, groups.into_values().collect())
    }

    /// Reconstructs the full partition from a stripped one: stripped classes
    /// plus one singleton class per dropped row.
    pub fn from_stripped(stripped: &StrippedPartition) -> Partition {
        let n = stripped.n_rows();
        let mut in_class = vec![false; n];
        let mut classes: Vec<Vec<u32>> = Vec::with_capacity(stripped.rank());
        for c in stripped.classes() {
            for &row in c {
                in_class[row as usize] = true;
            }
            classes.push(c.to_vec());
        }
        for (row, &covered) in in_class.iter().enumerate() {
            if !covered {
                classes.push(vec![row as u32]);
            }
        }
        Partition::from_classes(n, classes)
    }

    /// Drops singleton classes, producing the compact representation.
    pub fn to_stripped(&self) -> StrippedPartition {
        let mut elements = Vec::new();
        let mut begins = vec![0u32];
        for c in &self.classes {
            if c.len() >= 2 {
                elements.extend_from_slice(c);
                begins.push(elements.len() as u32);
            }
        }
        StrippedPartition::from_parts(self.n_rows, elements, begins)
    }

    fn from_classes(n_rows: usize, mut classes: Vec<Vec<u32>>) -> Partition {
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.retain(|c| !c.is_empty());
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { n_rows, classes }
    }

    /// `|r|`.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The rank `|π|`: number of equivalence classes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.classes.len()
    }

    /// The equivalence classes, canonical order.
    #[inline]
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Lemma 1's relation: `self` refines `other` iff every class of `self`
    /// is contained in some class of `other`.
    pub fn refines(&self, other: &Partition) -> bool {
        assert_eq!(
            self.n_rows, other.n_rows,
            "partitions of different relations"
        );
        // class_of[row] = index of row's class in `other`.
        let mut class_of = vec![u32::MAX; self.n_rows];
        for (i, c) in other.classes.iter().enumerate() {
            for &row in c {
                class_of[row as usize] = i as u32;
            }
        }
        self.classes.iter().all(|c| {
            let target = class_of[c[0] as usize];
            c.iter().all(|&row| class_of[row as usize] == target)
        })
    }

    /// The product `π · π'` (Lemma 3): the least refined common refinement.
    pub fn product(&self, other: &Partition) -> Partition {
        assert_eq!(
            self.n_rows, other.n_rows,
            "partitions of different relations"
        );
        let mut class_of = vec![u32::MAX; self.n_rows];
        for (i, c) in other.classes.iter().enumerate() {
            for &row in c {
                class_of[row as usize] = i as u32;
            }
        }
        let mut out = Vec::new();
        let mut buckets: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for c in &self.classes {
            buckets.clear();
            for &row in c {
                buckets.entry(class_of[row as usize]).or_default().push(row);
            }
            // lint:allow(determinism): drain order is erased by the
            // canonicalizing from_classes below.
            out.extend(buckets.drain().map(|(_, v)| v));
        }
        Partition::from_classes(self.n_rows, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn example1_partitions() {
        let r = figure1();
        let pi_a = Partition::from_attr_set(&r, AttrSet::singleton(0));
        assert_eq!(pi_a.classes(), &[vec![0, 1], vec![2, 3, 4], vec![5, 6, 7]]);
        let pi_bc = Partition::from_attr_set(&r, AttrSet::from_indices([1, 2]));
        assert_eq!(pi_bc.rank(), 7);
    }

    #[test]
    fn lemma1_refinement_on_figure1() {
        // {B,C} → A holds: π_{B,C} refines π_{A}. {A} → B does not.
        let r = figure1();
        let pi_a = Partition::from_attr_set(&r, AttrSet::singleton(0));
        let pi_b = Partition::from_attr_set(&r, AttrSet::singleton(1));
        let pi_bc = Partition::from_attr_set(&r, AttrSet::from_indices([1, 2]));
        assert!(pi_bc.refines(&pi_a));
        assert!(!pi_a.refines(&pi_b));
        // Every partition refines itself and the unit partition.
        let unit = Partition::from_attr_set(&r, AttrSet::empty());
        assert!(pi_a.refines(&pi_a));
        assert!(pi_a.refines(&unit));
        assert!(!unit.refines(&pi_a));
    }

    #[test]
    fn product_matches_direct_computation() {
        let r = figure1();
        for x in 0..4usize {
            for y in 0..4usize {
                let px = Partition::from_attr_set(&r, AttrSet::singleton(x));
                let py = Partition::from_attr_set(&r, AttrSet::singleton(y));
                let direct = Partition::from_attr_set(&r, AttrSet::from_indices([x, y]));
                assert_eq!(px.product(&py), direct, "attrs {x},{y}");
            }
        }
    }

    #[test]
    fn stripped_roundtrip() {
        let r = figure1();
        for x in 0..4usize {
            let full = Partition::from_attr_set(&r, AttrSet::singleton(x));
            let stripped = full.to_stripped();
            assert_eq!(Partition::from_stripped(&stripped), full, "attr {x}");
            assert_eq!(stripped.rank(), full.rank());
        }
    }

    #[test]
    fn stripped_and_full_agree_on_attr_sets() {
        let r = figure1();
        for bits in 0u64..16 {
            let x = AttrSet::from_bits(bits);
            let full = Partition::from_attr_set(&r, x);
            let stripped = StrippedPartition::from_attr_set(&r, x);
            assert_eq!(
                full.to_stripped().canonicalize(),
                stripped.canonicalize(),
                "set {x:?}"
            );
            assert_eq!(full.rank(), stripped.rank(), "set {x:?}");
        }
    }

    #[test]
    fn empty_relation_partitions() {
        let schema = Schema::new(["A"]).unwrap();
        let r = Relation::builder(schema).build();
        let p = Partition::from_attr_set(&r, AttrSet::empty());
        assert_eq!(p.rank(), 0);
        let p = Partition::from_attr_set(&r, AttrSet::singleton(0));
        assert_eq!(p.rank(), 0);
    }

    #[test]
    fn refinement_is_a_partial_order() {
        let r = figure1();
        let sets = [
            AttrSet::empty(),
            AttrSet::singleton(0),
            AttrSet::from_indices([0, 1]),
            AttrSet::from_indices([0, 1, 2]),
        ];
        // π_Y refines π_X whenever X ⊆ Y (monotonicity).
        for (i, &x) in sets.iter().enumerate() {
            for &y in &sets[i..] {
                let px = Partition::from_attr_set(&r, x);
                let py = Partition::from_attr_set(&r, y);
                assert!(py.refines(&px), "{y:?} should refine {x:?}");
            }
        }
    }
}
