//! The partition product `π' · π''` (Lemma 3).
//!
//! The product of two partitions is the least refined partition refining
//! both — and by Lemma 3, `π_X · π_Y = π_{X∪Y}`. TANE uses this to compute
//! each level-ℓ partition from two of its level-(ℓ−1) subsets instead of
//! re-grouping the whole relation.
//!
//! The algorithm is the probe-table construction from the extended report
//! \[4\]: mark each row of `π'` with its class id in a table `T`, then walk
//! the classes of `π''`, bucketing rows by their `T` mark; buckets of size
//! ≥ 2 become classes of the product. Running time is
//! O(‖π̂'‖ + ‖π̂''‖) — independent of `|r|` except through the partitions
//! themselves — and the scratch tables are reused across calls so the hot
//! loop performs no allocation.

use crate::stripped::StrippedPartition;

/// Sentinel meaning "row not in any stripped class of π'".
const NONE: u32 = u32::MAX;

/// Reusable scratch space for [`product_with_scratch`].
///
/// One instance per thread; `new` allocates O(|r|) once and every product
/// call reuses it. TANE allocates a single scratch for the whole run.
#[derive(Debug)]
pub struct ProductScratch {
    /// `t[row]` = class id of `row` in π̂' (or NONE), valid only during a call.
    t: Vec<u32>,
    /// One bucket per class of π̂'; `s[i]` collects rows of the current π''
    /// class marked with class `i`.
    s: Vec<Vec<u32>>,
}

impl ProductScratch {
    /// Allocates scratch for relations of up to `n_rows` rows.
    pub fn new(n_rows: usize) -> ProductScratch {
        ProductScratch {
            t: vec![NONE; n_rows],
            s: Vec::new(),
        }
    }

    fn ensure(&mut self, n_rows: usize, n_classes: usize) {
        if self.t.len() < n_rows {
            self.t.resize(n_rows, NONE);
        }
        if self.s.len() < n_classes {
            self.s.resize_with(n_classes, Vec::new);
        }
    }
}

/// Computes `π' · π''`, allocating fresh scratch. Prefer
/// [`product_with_scratch`] in loops.
pub fn product(lhs: &StrippedPartition, rhs: &StrippedPartition) -> StrippedPartition {
    let mut scratch = ProductScratch::new(lhs.n_rows().max(rhs.n_rows()));
    product_with_scratch(lhs, rhs, &mut scratch)
}

/// Computes `π' · π''` using caller-provided scratch tables.
///
/// # Panics
///
/// Panics if the two partitions disagree on `|r|` (they must come from the
/// same relation).
pub fn product_with_scratch(
    lhs: &StrippedPartition,
    rhs: &StrippedPartition,
    scratch: &mut ProductScratch,
) -> StrippedPartition {
    assert_eq!(
        lhs.n_rows(),
        rhs.n_rows(),
        "partitions of different relations"
    );
    let n_rows = lhs.n_rows();
    // Probing the smaller side first touches less memory; the product is
    // commutative so this is purely a performance choice.
    let (a, b) = if lhs.num_elements() <= rhs.num_elements() {
        (lhs, rhs)
    } else {
        (rhs, lhs)
    };

    scratch.ensure(n_rows, a.num_classes());

    // Phase 1: mark rows of π̂_a with their class id.
    for (i, class) in a.classes().enumerate() {
        for &row in class {
            scratch.t[row as usize] = i as u32;
        }
    }

    // Phase 2: walk classes of π̂_b, bucketing by mark.
    let mut elements = Vec::new();
    let mut begins = vec![0u32];
    for class in b.classes() {
        for &row in class {
            let mark = scratch.t[row as usize];
            if mark != NONE {
                scratch.s[mark as usize].push(row);
            }
        }
        for &row in class {
            let mark = scratch.t[row as usize];
            if mark == NONE {
                continue;
            }
            let bucket = &mut scratch.s[mark as usize];
            if bucket.len() >= 2 {
                elements.extend_from_slice(bucket);
                begins.push(elements.len() as u32);
            }
            bucket.clear();
        }
    }

    // Phase 3: clear marks for the next call.
    for class in a.classes() {
        for &row in class {
            scratch.t[row as usize] = NONE;
        }
    }

    StrippedPartition::from_parts(n_rows, elements, begins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Relation, Schema, Value};
    use tane_util::AttrSet;

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    fn singleton(r: &Relation, a: usize) -> StrippedPartition {
        StrippedPartition::from_column(r.column_codes(a))
    }

    #[test]
    fn lemma3_on_figure1() {
        let r = figure1();
        let pi_b = singleton(&r, 1);
        let pi_c = singleton(&r, 2);
        let prod = product(&pi_b, &pi_c);
        let direct = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([1, 2]));
        assert_eq!(prod.canonicalize(), direct.canonicalize());
        // π_{B,C} stripped = {{3,4}} (0-based {2,3})
        assert_eq!(prod.num_classes(), 1);
        assert_eq!(prod.rank(), 7);
    }

    #[test]
    fn product_is_commutative() {
        let r = figure1();
        for x in 0..4 {
            for y in 0..4 {
                let p = product(&singleton(&r, x), &singleton(&r, y));
                let q = product(&singleton(&r, y), &singleton(&r, x));
                assert_eq!(p.canonicalize(), q.canonicalize(), "attrs {x},{y}");
            }
        }
    }

    #[test]
    fn product_is_idempotent() {
        let r = figure1();
        for x in 0..4 {
            let pi = singleton(&r, x);
            let p = product(&pi, &pi);
            assert_eq!(p.canonicalize(), pi.canonicalize(), "attr {x}");
        }
    }

    #[test]
    fn product_with_unit_is_identity() {
        let r = figure1();
        let unit = StrippedPartition::unit(r.num_rows());
        for x in 0..4 {
            let pi = singleton(&r, x);
            let p = product(&pi, &unit);
            assert_eq!(p.canonicalize(), pi.canonicalize(), "attr {x}");
        }
    }

    #[test]
    fn product_with_superkey_is_empty() {
        let key = StrippedPartition::from_column(&[0, 1, 2, 3]);
        let other = StrippedPartition::from_column(&[0, 0, 1, 1]);
        let p = product(&key, &other);
        assert!(p.is_superkey());
        assert_eq!(p.rank(), 4);
    }

    #[test]
    fn three_way_products_associate() {
        let r = figure1();
        let a = singleton(&r, 0);
        let b = singleton(&r, 1);
        let c = singleton(&r, 2);
        let ab_c = product(&product(&a, &b), &c);
        let a_bc = product(&a, &product(&b, &c));
        assert_eq!(ab_c.canonicalize(), a_bc.canonicalize());
        let direct = StrippedPartition::from_attr_set(&r, AttrSet::from_indices([0, 1, 2]));
        assert_eq!(ab_c.canonicalize(), direct.canonicalize());
    }

    #[test]
    fn scratch_reuse_is_clean_across_calls() {
        let r = figure1();
        let mut scratch = ProductScratch::new(r.num_rows());
        let mut results = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                results.push(product_with_scratch(
                    &singleton(&r, x),
                    &singleton(&r, y),
                    &mut scratch,
                ));
            }
        }
        // Recompute with fresh scratch each time; must be identical.
        let mut i = 0;
        for x in 0..4 {
            for y in 0..4 {
                let fresh = product(&singleton(&r, x), &singleton(&r, y));
                assert_eq!(
                    results[i].canonicalize(),
                    fresh.canonicalize(),
                    "pair {x},{y}"
                );
                i += 1;
            }
        }
    }

    #[test]
    fn scratch_grows_on_demand() {
        let mut scratch = ProductScratch::new(0);
        let p = StrippedPartition::from_column(&[0, 0, 1, 1]);
        let q = StrippedPartition::from_column(&[0, 1, 0, 1]);
        let prod = product_with_scratch(&p, &q, &mut scratch);
        assert!(prod.is_superkey());
    }

    #[test]
    #[should_panic(expected = "different relations")]
    fn mismatched_row_counts_panic() {
        let p = StrippedPartition::from_column(&[0, 0]);
        let q = StrippedPartition::from_column(&[0, 0, 0]);
        let _ = product(&p, &q);
    }

    #[test]
    fn product_of_empty_partitions() {
        let p = StrippedPartition::empty(10);
        let q = StrippedPartition::unit(10);
        assert!(product(&p, &q).is_superkey());
        assert!(product(&p, &p).is_superkey());
    }
}
