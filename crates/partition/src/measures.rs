//! The other Kivinen–Mannila error measures: `g1` and `g2`.
//!
//! The paper adopts `g3` (minimum row removals) from Kivinen & Mannila's
//! *Approximate dependency inference from relations*, which defines two
//! further natural measures; all three fall out of the same partition pair
//! `(π_X, π_{X∪{A}})`:
//!
//! * `g1(X → A)` — the fraction of **ordered row pairs** violating the
//!   dependency: `|{(t,u) : t[X]=u[X] ∧ t[A]≠u[A]}| / |r|²`.
//! * `g2(X → A)` — the fraction of **rows involved in** some violation:
//!   `|{t : ∃u. t[X]=u[X] ∧ t[A]≠u[A]}| / |r|`.
//! * `g3(X → A)` — the fraction of rows to **remove** (module [`crate::g3`]).
//!
//! All three are zero exactly when the dependency holds; they order
//! differently in general (`g1 ≤ g2`, `g3 ≤ g2`). Discovery in this
//! workspace uses `g3` like the paper; these functions exist so downstream
//! users can score a discovered dependency under any of the measures.

use crate::stripped::StrippedPartition;

/// Scratch for the measures: `sub_sizes[row]` = size of the row's class in
/// `π̂_{X∪{A}}` (0 for stripped singletons).
#[derive(Debug, Default)]
pub struct MeasureScratch {
    sub_sizes: Vec<u32>,
}

impl MeasureScratch {
    /// Allocates scratch for up to `n_rows` rows.
    pub fn new(n_rows: usize) -> MeasureScratch {
        MeasureScratch {
            sub_sizes: vec![0; n_rows],
        }
    }
}

/// Number of ordered row pairs violating `X → A` (the numerator of `g1`),
/// computed from `π̂_X` and `π̂_{X∪{A}}`.
///
/// For each class `c ∈ π_X`, the violating ordered pairs are
/// `|c|² − Σ_{c' ⊆ c} |c'|²` over its `π_{X∪{A}}` subclasses (singletons
/// included — handled implicitly via the stripped representation).
pub fn g1_violating_pairs(
    pi_x: &StrippedPartition,
    pi_xa: &StrippedPartition,
    scratch: &mut MeasureScratch,
) -> u64 {
    assert_eq!(
        pi_x.n_rows(),
        pi_xa.n_rows(),
        "partitions of different relations"
    );
    let n = pi_x.n_rows();
    if scratch.sub_sizes.len() < n {
        scratch.sub_sizes.resize(n, 0);
    }
    for class in pi_xa.classes() {
        let size = class.len() as u32;
        for &row in class {
            scratch.sub_sizes[row as usize] = size;
        }
    }
    let mut violating = 0u64;
    for class in pi_x.classes() {
        let c = class.len() as u64;
        // Σ |c'|²: every row contributes |its subclass| once, so summing
        // per-row subclass sizes gives the total directly; stripped-away
        // singleton subclasses contribute 1 each.
        let mut sum_sq = 0u64;
        for &row in class {
            let s = scratch.sub_sizes[row as usize];
            sum_sq += u64::from(if s == 0 { 1 } else { s });
        }
        violating += c * c - sum_sq;
    }
    for class in pi_xa.classes() {
        for &row in class {
            scratch.sub_sizes[row as usize] = 0;
        }
    }
    violating
}

/// `g1(X → A)` as a fraction of `|r|²` (0 for an empty relation).
pub fn g1_error(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> f64 {
    let n = pi_x.n_rows() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mut scratch = MeasureScratch::new(pi_x.n_rows());
    g1_violating_pairs(pi_x, pi_xa, &mut scratch) as f64 / (n * n)
}

/// Number of rows involved in some violation of `X → A` (the numerator of
/// `g2`): all rows of every `π_X` class that splits under `A`.
pub fn g2_violating_rows(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> usize {
    assert_eq!(
        pi_x.n_rows(),
        pi_xa.n_rows(),
        "partitions of different relations"
    );
    // A class c splits iff it is not itself a class of π_{X∪{A}} — i.e. its
    // error contribution is non-zero. Compare via per-class subclass check:
    // c splits iff some row of c sits in a subclass smaller than |c|.
    let n = pi_x.n_rows();
    let mut sub_sizes = vec![0u32; n];
    for class in pi_xa.classes() {
        let size = class.len() as u32;
        for &row in class {
            sub_sizes[row as usize] = size;
        }
    }
    let mut violating = 0usize;
    for class in pi_x.classes() {
        let c = class.len() as u32;
        let first = class[0] as usize;
        let first_size = if sub_sizes[first] == 0 {
            1
        } else {
            sub_sizes[first]
        };
        if first_size != c {
            violating += class.len();
        }
    }
    violating
}

/// `g2(X → A)` as a fraction of `|r|` (0 for an empty relation).
pub fn g2_error(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> f64 {
    let n = pi_x.n_rows();
    if n == 0 {
        0.0
    } else {
        g2_violating_rows(pi_x, pi_xa) as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::g3::g3_removed_rows;
    use tane_relation::{Relation, Schema};
    use tane_util::AttrSet;

    fn rel(cols: Vec<Vec<u32>>) -> Relation {
        Relation::from_codes(Schema::anonymous(cols.len()).unwrap(), cols).unwrap()
    }

    fn measures(r: &Relation, x: &[usize], a: usize) -> (f64, f64, f64) {
        let px = StrippedPartition::from_attr_set(r, AttrSet::from_indices(x.iter().copied()));
        let pxa =
            StrippedPartition::from_attr_set(r, AttrSet::from_indices(x.iter().copied()).with(a));
        (
            g1_error(&px, &pxa),
            g2_error(&px, &pxa),
            g3_removed_rows(&px, &pxa) as f64 / r.num_rows() as f64,
        )
    }

    /// Reference implementations straight from the definitions.
    fn reference(r: &Relation, x: &[usize], a: usize) -> (f64, f64) {
        let n = r.num_rows();
        let agree_x = |t: usize, u: usize| {
            x.iter()
                .all(|&b| r.column_codes(b)[t] == r.column_codes(b)[u])
        };
        let mut pairs = 0usize;
        let mut involved = vec![false; n];
        for t in 0..n {
            for u in 0..n {
                if t != u && agree_x(t, u) && r.column_codes(a)[t] != r.column_codes(a)[u] {
                    pairs += 1;
                    involved[t] = true;
                }
            }
        }
        let nf = n as f64;
        (
            pairs as f64 / (nf * nf),
            involved.iter().filter(|&&b| b).count() as f64 / nf,
        )
    }

    #[test]
    fn zero_exactly_when_fd_holds() {
        let r = rel(vec![vec![0, 0, 1, 1], vec![5, 5, 6, 6]]);
        let (g1, g2, g3) = measures(&r, &[0], 1);
        assert_eq!((g1, g2, g3), (0.0, 0.0, 0.0));

        let r = rel(vec![vec![0, 0, 1, 1], vec![5, 9, 6, 6]]);
        let (g1, g2, g3) = measures(&r, &[0], 1);
        assert!(g1 > 0.0 && g2 > 0.0 && g3 > 0.0);
    }

    #[test]
    fn matches_reference_on_exhaustive_small_relations() {
        // All 2-column relations with 4 rows over a domain of 2.
        for mask_a in 0u32..16 {
            for mask_b in 0u32..16 {
                let col_a: Vec<u32> = (0..4).map(|i| (mask_a >> i) & 1).collect();
                let col_b: Vec<u32> = (0..4).map(|i| (mask_b >> i) & 1).collect();
                let r = rel(vec![col_a, col_b]);
                let (g1, g2, _) = measures(&r, &[0], 1);
                let (want_g1, want_g2) = reference(&r, &[0], 1);
                assert!(
                    (g1 - want_g1).abs() < 1e-12,
                    "g1 a={mask_a:04b} b={mask_b:04b}"
                );
                assert!(
                    (g2 - want_g2).abs() < 1e-12,
                    "g2 a={mask_a:04b} b={mask_b:04b}"
                );
            }
        }
    }

    #[test]
    fn known_values_on_a_hand_case() {
        // X-class {0,1,2} with A values 5,5,6: violating ordered pairs
        // (0,2),(2,0),(1,2),(2,1) → g1 = 4/16; all three rows involved →
        // g2 = 3/4; remove one row → g3 = 1/4.
        let r = rel(vec![vec![0, 0, 0, 1], vec![5, 5, 6, 7]]);
        let (g1, g2, g3) = measures(&r, &[0], 1);
        assert!((g1 - 4.0 / 16.0).abs() < 1e-12);
        assert!((g2 - 3.0 / 4.0).abs() < 1e-12);
        assert!((g3 - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn measure_ordering_g3_le_g2_and_g1_le_g2() {
        for seed in 0u32..30 {
            // Deterministic pseudo-random 3-column, 12-row relations.
            let mut s = u64::from(seed).wrapping_mul(0x9e3779b97f4a7c15) + 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 3) as u32
            };
            let cols: Vec<Vec<u32>> = (0..3).map(|_| (0..12).map(|_| next()).collect()).collect();
            let r = rel(cols);
            for a in 0..3 {
                for b in 0..3 {
                    if a == b {
                        continue;
                    }
                    let (g1, g2, g3) = measures(&r, &[a], b);
                    assert!(g1 <= g2 + 1e-12, "seed {seed}: g1={g1} g2={g2}");
                    assert!(g3 <= g2 + 1e-12, "seed {seed}: g3={g3} g2={g2}");
                }
            }
        }
    }

    #[test]
    fn empty_relation_is_zero() {
        let p = StrippedPartition::empty(0);
        assert_eq!(g1_error(&p, &p), 0.0);
        assert_eq!(g2_error(&p, &p), 0.0);
    }
}
