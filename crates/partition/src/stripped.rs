//! Stripped partitions: the compact representation TANE computes with.
//!
//! A *stripped* partition `π̂_X` is `π_X` with all singleton equivalence
//! classes removed (extended report \[4\], referenced from the paper's
//! "Optimizations" paragraph). A row that is alone in its class agrees with
//! no other row on `X`, so it can never witness a violation of any
//! dependency `X → A`; dropping those classes loses nothing and shrinks the
//! representation dramatically on key-like attribute sets.
//!
//! The quantities TANE needs are all O(1) on this representation:
//!
//! * `‖π̂_X‖` — number of rows kept ([`StrippedPartition::num_elements`]);
//! * `|π̂_X|` — number of stripped classes ([`StrippedPartition::num_classes`]);
//! * `|π_X| = |π̂_X| + (|r| − ‖π̂_X‖)` — the rank of the *unstripped*
//!   partition, used by the Lemma 2 validity test
//!   ([`StrippedPartition::rank`]);
//! * `e(X) = (‖π̂_X‖ − |π̂_X|)/|r|` — the fraction of rows that must be
//!   removed to make `X` a superkey ([`StrippedPartition::error`]), used by
//!   key pruning and the `g3` bounds.

use tane_relation::Relation;
use tane_util::AttrSet;

/// A stripped partition `π̂_X`: equivalence classes of size ≥ 2, stored as a
/// flat row-index array plus class offsets.
///
/// # Examples
///
/// The partitions of the paper's Example 1:
///
/// ```
/// use tane_partition::StrippedPartition;
///
/// // π_{A} = {{0,1},{2,3,4},{5,6,7}} (0-based row ids)
/// let codes = [0, 0, 1, 1, 1, 2, 2, 2];
/// let pi_a = StrippedPartition::from_column(&codes);
/// assert_eq!(pi_a.num_classes(), 3);
/// assert_eq!(pi_a.num_elements(), 8);
/// assert_eq!(pi_a.rank(), 3); // |π_A| = 3
///
/// // π_{B,C} = {{1},{2},{3,4},{5},{6},{7},{8}}: only {3,4} survives stripping
/// let codes = [0, 1, 2, 2, 3, 4, 5, 6];
/// let pi_bc = StrippedPartition::from_column(&codes);
/// assert_eq!(pi_bc.num_classes(), 1);
/// assert_eq!(pi_bc.num_elements(), 2);
/// assert_eq!(pi_bc.rank(), 7); // |π_{B,C}| = 7
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrippedPartition {
    /// Total number of rows `|r|` in the underlying relation.
    n_rows: usize,
    /// Row indices, grouped by equivalence class. Within a class, ascending.
    elements: Vec<u32>,
    /// Class boundaries: class `i` is `elements[begins[i]..begins[i+1]]`.
    /// Always has `num_classes + 1` entries (a single `0` when empty).
    begins: Vec<u32>,
}

impl StrippedPartition {
    /// Builds `π̂_X` for a single attribute from its dictionary-code column.
    ///
    /// This is the "compute the partitions `π_{A}` directly from the
    /// database" step (paper, Section 3): a counting pass over the codes.
    /// Runs in O(|r| + cardinality).
    pub fn from_column(codes: &[u32]) -> StrippedPartition {
        let n_rows = codes.len();
        if n_rows == 0 {
            return StrippedPartition::empty(0);
        }
        let max_code = codes.iter().copied().max().unwrap_or(0) as usize;
        // Counting sort by code: count, prefix-sum, scatter.
        let mut counts = vec![0u32; max_code + 1];
        for &c in codes {
            counts[c as usize] += 1;
        }
        let mut kept = 0usize;
        for &cnt in &counts {
            if cnt >= 2 {
                kept += cnt as usize;
            }
        }
        let mut elements = vec![0u32; kept];
        let mut begins = Vec::new();
        // Offsets within `elements`, only for codes with count >= 2.
        let mut offsets = vec![u32::MAX; max_code + 1];
        let mut pos = 0u32;
        for (code, &cnt) in counts.iter().enumerate() {
            if cnt >= 2 {
                begins.push(pos);
                offsets[code] = pos;
                pos += cnt;
            }
        }
        begins.push(pos);
        let mut cursor = offsets;
        for (row, &c) in codes.iter().enumerate() {
            let o = &mut cursor[c as usize];
            if *o != u32::MAX {
                elements[*o as usize] = row as u32;
                *o += 1;
            }
        }
        StrippedPartition {
            n_rows,
            elements,
            begins,
        }
    }

    /// Builds `π̂_X` for an arbitrary attribute set by multiplying singleton
    /// partitions. Convenient for tests and one-off queries; TANE itself
    /// multiplies level-(ℓ−1) partitions instead (Lemma 3).
    pub fn from_attr_set(relation: &Relation, x: AttrSet) -> StrippedPartition {
        let mut attrs = x.iter();
        let first = match attrs.next() {
            Some(a) => a,
            None => return StrippedPartition::unit(relation.num_rows()),
        };
        let mut pi = StrippedPartition::from_column(relation.column_codes(first));
        let mut scratch = crate::product::ProductScratch::new(relation.num_rows());
        for a in attrs {
            let pi_a = StrippedPartition::from_column(relation.column_codes(a));
            pi = crate::product::product_with_scratch(&pi, &pi_a, &mut scratch);
        }
        pi
    }

    /// `π̂_∅`: a single class containing every row (all rows agree on the
    /// empty attribute set). Stripped away entirely when `n_rows < 2`.
    pub fn unit(n_rows: usize) -> StrippedPartition {
        if n_rows < 2 {
            return StrippedPartition::empty(n_rows);
        }
        StrippedPartition {
            n_rows,
            elements: (0..n_rows as u32).collect(),
            begins: vec![0, n_rows as u32],
        }
    }

    /// A partition with no stripped classes (e.g. `π̂_X` when `X` is a
    /// superkey: every class is a singleton).
    pub fn empty(n_rows: usize) -> StrippedPartition {
        StrippedPartition {
            n_rows,
            elements: Vec::new(),
            begins: vec![0],
        }
    }

    /// Constructs from raw parts. `begins` must be a monotone offset array
    /// into `elements` starting at 0 and ending at `elements.len()`, and
    /// every class must have size ≥ 2.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the invariants are violated.
    pub fn from_parts(n_rows: usize, elements: Vec<u32>, begins: Vec<u32>) -> StrippedPartition {
        debug_assert!(!begins.is_empty());
        debug_assert_eq!(*begins.first().unwrap(), 0);
        debug_assert_eq!(*begins.last().unwrap() as usize, elements.len());
        debug_assert!(
            begins.windows(2).all(|w| w[1] - w[0] >= 2),
            "stripped classes must have ≥2 rows"
        );
        debug_assert!(elements.iter().all(|&e| (e as usize) < n_rows));
        StrippedPartition {
            n_rows,
            elements,
            begins,
        }
    }

    /// `|r|`: rows in the underlying relation (not just the kept ones).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// `|π̂_X|`: number of stripped (size ≥ 2) classes.
    #[inline]
    pub fn num_classes(&self) -> usize {
        self.begins.len() - 1
    }

    /// `‖π̂_X‖`: total number of rows kept in stripped classes.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// `|π_X|`: the rank of the unstripped partition (Lemma 2's quantity):
    /// stripped classes plus one singleton class per dropped row.
    #[inline]
    pub fn rank(&self) -> usize {
        self.num_classes() + (self.n_rows - self.num_elements())
    }

    /// The number of rows that must be removed for `X` to become a superkey:
    /// `e(X)·|r| = ‖π̂_X‖ − |π̂_X|` (one representative survives per class).
    #[inline]
    pub fn error_rows(&self) -> usize {
        self.num_elements() - self.num_classes()
    }

    /// `e(X)`: [`error_rows`](Self::error_rows) as a fraction of `|r|`
    /// (0 for an empty relation).
    #[inline]
    pub fn error(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.error_rows() as f64 / self.n_rows as f64
        }
    }

    /// `true` iff `X` is a superkey: no two rows agree on `X`, i.e. every
    /// class is a singleton and nothing survives stripping.
    #[inline]
    pub fn is_superkey(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterates over the stripped classes as row-index slices.
    #[inline]
    pub fn classes(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.begins
            .windows(2)
            .map(move |w| &self.elements[w[0] as usize..w[1] as usize])
    }

    /// The `i`-th stripped class.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_classes()`.
    #[inline]
    pub fn class(&self, i: usize) -> &[u32] {
        &self.elements[self.begins[i] as usize..self.begins[i + 1] as usize]
    }

    /// Approximate heap footprint in bytes (used by the disk store to decide
    /// what to evict, and reported by the harness).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.elements.capacity() * std::mem::size_of::<u32>()
            + self.begins.capacity() * std::mem::size_of::<u32>()
    }

    /// Validity test of Lemma 2 packaged for readability: given `π̂_X` (self)
    /// and `π̂_{X∪{A}}`, the dependency `X → A` holds iff the ranks agree —
    /// equivalently iff the error row counts agree, which is the form TANE
    /// uses.
    #[inline]
    pub fn implies_with(&self, with_a: &StrippedPartition) -> bool {
        debug_assert_eq!(self.n_rows, with_a.n_rows);
        self.error_rows() == with_a.error_rows()
    }

    /// Canonicalizes class order (by first element) and element order within
    /// classes. Products produce deterministic output already; this is for
    /// comparing partitions structurally in tests.
    pub fn canonicalize(&self) -> StrippedPartition {
        let mut classes: Vec<Vec<u32>> = self.classes().map(|c| c.to_vec()).collect();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort_unstable_by_key(|c| c[0]);
        let mut elements = Vec::with_capacity(self.elements.len());
        let mut begins = Vec::with_capacity(self.begins.len());
        begins.push(0u32);
        for c in classes {
            elements.extend_from_slice(&c);
            begins.push(elements.len() as u32);
        }
        StrippedPartition {
            n_rows: self.n_rows,
            elements,
            begins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Relation, Schema, Value};

    pub(crate) fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    fn classes_of(p: &StrippedPartition) -> Vec<Vec<u32>> {
        p.canonicalize().classes().map(|c| c.to_vec()).collect()
    }

    #[test]
    fn example1_partition_a() {
        // π_{A} = {{1,2},{3,4,5},{6,7,8}} in the paper's 1-based ids.
        let r = figure1();
        let p = StrippedPartition::from_column(r.column_codes(0));
        assert_eq!(
            classes_of(&p),
            vec![vec![0, 1], vec![2, 3, 4], vec![5, 6, 7]]
        );
        assert_eq!(p.rank(), 3);
        assert_eq!(p.num_elements(), 8);
        assert_eq!(p.error_rows(), 5);
        assert!(!p.is_superkey());
    }

    #[test]
    fn example1_partition_bc() {
        // π_{B,C} = {{1},{2},{3,4},{5},{6},{7},{8}} → stripped to {{3,4}}.
        let r = figure1();
        let p = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::from_indices([1, 2]));
        assert_eq!(classes_of(&p), vec![vec![2, 3]]);
        assert_eq!(p.rank(), 7);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.num_elements(), 2);
    }

    #[test]
    fn lemma2_on_figure1() {
        // {B,C} → A holds; {A} → B does not (paper Example 2).
        let r = figure1();
        let bc = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::from_indices([1, 2]));
        let abc = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::from_indices([0, 1, 2]));
        assert!(bc.implies_with(&abc));
        assert_eq!(bc.rank(), abc.rank());

        let a = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::singleton(0));
        let ab = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::from_indices([0, 1]));
        assert!(!a.implies_with(&ab));
        assert!(a.rank() < ab.rank());
    }

    #[test]
    fn unit_partition() {
        let p = StrippedPartition::unit(5);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.num_elements(), 5);
        assert_eq!(p.rank(), 1);
        assert_eq!(p.error_rows(), 4);

        // Degenerate sizes strip to nothing.
        assert!(StrippedPartition::unit(1).is_superkey());
        assert!(StrippedPartition::unit(0).is_superkey());
        assert_eq!(StrippedPartition::unit(1).rank(), 1);
        assert_eq!(StrippedPartition::unit(0).rank(), 0);
    }

    #[test]
    fn superkey_detection() {
        let p = StrippedPartition::from_column(&[0, 1, 2, 3]);
        assert!(p.is_superkey());
        assert_eq!(p.rank(), 4);
        assert_eq!(p.error_rows(), 0);
        assert_eq!(p.error(), 0.0);
        assert_eq!(p.num_classes(), 0);
    }

    #[test]
    fn all_equal_column() {
        let p = StrippedPartition::from_column(&[7, 7, 7, 7]);
        assert_eq!(p.num_classes(), 1);
        assert_eq!(p.rank(), 1);
        assert_eq!(p.error_rows(), 3);
        assert_eq!(p.error(), 0.75);
    }

    #[test]
    fn sparse_codes_are_fine() {
        // Codes need not be dense — from_codes relations can have gaps.
        let p = StrippedPartition::from_column(&[100, 5, 100, 1000, 5]);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(classes_of(&p), vec![vec![0, 2], vec![1, 4]]);
        assert_eq!(p.rank(), 3);
    }

    #[test]
    fn empty_and_single_row() {
        let p = StrippedPartition::from_column(&[]);
        assert_eq!(p.n_rows(), 0);
        assert_eq!(p.rank(), 0);
        assert!(p.is_superkey());
        assert_eq!(p.error(), 0.0);

        let p = StrippedPartition::from_column(&[42]);
        assert_eq!(p.n_rows(), 1);
        assert_eq!(p.rank(), 1);
        assert!(p.is_superkey());
    }

    #[test]
    fn empty_attr_set_gives_unit() {
        let r = figure1();
        let p = StrippedPartition::from_attr_set(&r, tane_util::AttrSet::empty());
        assert_eq!(p.rank(), 1);
        assert_eq!(p.num_elements(), 8);
    }

    #[test]
    fn class_accessors() {
        let p = StrippedPartition::from_column(&[0, 1, 0, 1, 2]);
        assert_eq!(p.num_classes(), 2);
        assert_eq!(p.class(0), &[0, 2]);
        assert_eq!(p.class(1), &[1, 3]);
        let all: Vec<&[u32]> = p.classes().collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn size_bytes_reflects_payload() {
        let small = StrippedPartition::from_column(&[0, 0]);
        let big = StrippedPartition::from_column(&vec![0u32; 10_000]);
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn canonicalize_is_idempotent_and_order_insensitive() {
        let p = StrippedPartition::from_parts(6, vec![4, 5, 0, 1, 2], vec![0, 2, 5]);
        let q = StrippedPartition::from_parts(6, vec![0, 1, 2, 4, 5], vec![0, 3, 5]);
        assert_eq!(p.canonicalize(), q.canonicalize());
        assert_eq!(p.canonicalize(), p.canonicalize().canonicalize());
    }

    #[test]
    fn full_attrs_of_figure1_is_key() {
        let r = figure1();
        let p = StrippedPartition::from_attr_set(&r, r.schema().all_attrs());
        assert!(p.is_superkey());
        assert_eq!(p.rank(), 8);
    }
}
