#![forbid(unsafe_code)]
//! Partition engine for TANE.
//!
//! Section 2 of the paper reformulates functional-dependency checking in
//! terms of *partitions*: the rows of a relation, grouped into equivalence
//! classes by their values on an attribute set `X`. The three lemmas that
//! drive the whole algorithm are implemented and tested here:
//!
//! * **Lemma 1** — `X → A` holds iff `π_X` refines `π_{A}`
//!   ([`full::Partition::refines`]).
//! * **Lemma 2** — `X → A` holds iff `|π_X| = |π_{X∪{A}}|`
//!   ([`StrippedPartition::rank`]).
//! * **Lemma 3** — `π_X · π_Y = π_{X∪Y}` ([`product::product`]).
//!
//! Two representations are provided:
//!
//! * [`full::Partition`] — the textbook unstripped partition. Simple and
//!   obviously correct; used as the reference implementation in tests and in
//!   the didactic examples.
//! * [`StrippedPartition`] — the production representation from the paper's
//!   "Optimizations" section (detailed in the extended report \[4\]):
//!   equivalence classes of size one are dropped, since a row alone in its
//!   class can never violate any dependency. All TANE hot paths run on
//!   stripped partitions.
//!
//! On top of these:
//!
//! * [`mod@product`] — the linear-time partition product with reusable scratch
//!   tables ([`product::ProductScratch`]).
//! * [`g3`] — the `g3` approximation error: exact O(‖π̂‖) computation plus
//!   the cheap sandwich bounds from \[4\] that let approximate TANE skip
//!   most exact computations.
//! * [`store`] — partition stores: in-memory, and the disk-spilling store
//!   that the scalable TANE variant uses ("the partitions can be stored on
//!   disk", Section 6).

pub mod full;
pub mod g3;
pub mod measures;
pub mod product;
pub mod store;
pub mod stripped;

pub use full::Partition;
pub use g3::{g3_error, g3_removed_rows, g3_removed_rows_with_scratch, G3Bounds, G3Scratch};
pub use measures::{g1_error, g1_violating_pairs, g2_error, g2_violating_rows, MeasureScratch};
pub use product::{product, product_with_scratch, ProductScratch};
pub use store::{
    failpoint, DiskQuota, DiskStore, MemoryStore, PartitionStore, ReadPhase, SegmentStore,
    StoreError,
};
pub use stripped::StrippedPartition;
