//! The `g3` approximation error and its cheap bounds.
//!
//! `g3(X → A)` is the minimum fraction of rows that must be removed from `r`
//! for `X → A` to hold (Kivinen & Mannila's measure, adopted by the paper in
//! Section 1). Section 2 derives the partition form:
//!
//! ```text
//! g3(X → A) = 1 − Σ_{c ∈ π_X} max{ |c'| : c' ∈ π_{X∪{A}}, c' ⊆ c } / |r|
//! ```
//!
//! [`g3_removed_rows`] implements the O(‖π̂‖) representative-table algorithm
//! from the extended report \[4\]; [`G3Bounds`] implements the quick bound
//! from the same report ("a method to quickly bound the g3 error",
//! paper Section 5) that lets approximate TANE decide most validity tests
//! without running the exact algorithm:
//!
//! * **upper bound** — `g3(X → A) ≤ e(X)`: removing the `e(X)·|r|` rows that
//!   make `X` a superkey certainly makes `X → A` hold.
//! * **lower bound** — `g3(X → A) ≥ e(X) − e(X∪{A})`: if `X → A` holds after
//!   removing a set `S` of rows, then on the remaining rows `π_X` and
//!   `π_{X∪{A}}` coincide, so `e(X) ≤ e(X∪{A}) + |S|/|r|` (each removed row
//!   lowers `e` by at most `1/|r|`).

use crate::stripped::StrippedPartition;

/// Reusable scratch for [`g3_removed_rows`]: `size_of[row]` = size of the
/// row's class in `π̂_{X∪{A}}` (0 when the row is in a singleton class).
#[derive(Debug, Default)]
pub struct G3Scratch {
    size_of: Vec<u32>,
}

impl G3Scratch {
    /// Allocates scratch for up to `n_rows` rows.
    pub fn new(n_rows: usize) -> G3Scratch {
        G3Scratch {
            size_of: vec![0; n_rows],
        }
    }
}

/// Number of rows that must be removed for `X → A` to hold, computed from
/// `π̂_X` and `π̂_{X∪{A}}` with caller-provided scratch.
///
/// # Panics
///
/// Panics if the partitions disagree on `|r|`. For a meaningful result
/// `pi_xa` must be (structurally) the product of `pi_x` with some singleton
/// partition — i.e. refine `pi_x` — which is how TANE always calls it.
pub fn g3_removed_rows_with_scratch(
    pi_x: &StrippedPartition,
    pi_xa: &StrippedPartition,
    scratch: &mut G3Scratch,
) -> usize {
    assert_eq!(
        pi_x.n_rows(),
        pi_xa.n_rows(),
        "partitions of different relations"
    );
    let n = pi_x.n_rows();
    if scratch.size_of.len() < n {
        scratch.size_of.resize(n, 0);
    }

    // Mark each row of π̂_{XA} with the size of its class.
    for class in pi_xa.classes() {
        let size = class.len() as u32;
        for &row in class {
            scratch.size_of[row as usize] = size;
        }
    }

    // For each class c of π̂_X, keep the largest contained subclass.
    let mut removed = 0usize;
    for class in pi_x.classes() {
        let mut largest = 1u32; // stripped-away subclasses have size 1
        for &row in class {
            let s = scratch.size_of[row as usize];
            if s > largest {
                largest = s;
            }
        }
        removed += class.len() - largest as usize;
    }

    // Reset scratch for the next call.
    for class in pi_xa.classes() {
        for &row in class {
            scratch.size_of[row as usize] = 0;
        }
    }
    removed
}

/// [`g3_removed_rows_with_scratch`] with fresh scratch.
pub fn g3_removed_rows(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> usize {
    let mut scratch = G3Scratch::new(pi_x.n_rows());
    g3_removed_rows_with_scratch(pi_x, pi_xa, &mut scratch)
}

/// `g3(X → A)` as a fraction of `|r|` (0 for an empty relation).
pub fn g3_error(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> f64 {
    let n = pi_x.n_rows();
    if n == 0 {
        0.0
    } else {
        g3_removed_rows(pi_x, pi_xa) as f64 / n as f64
    }
}

/// The sandwich bounds on `g3(X → A)` computable in O(1) from the partition
/// summaries, used to skip exact `g3` computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct G3Bounds {
    /// Lower bound in removed rows: `max(0, e(X)·|r| − e(X∪{A})·|r|)`.
    pub lower_rows: usize,
    /// Upper bound in removed rows: `e(X)·|r|`.
    pub upper_rows: usize,
    /// `|r|`.
    pub n_rows: usize,
}

impl G3Bounds {
    /// Computes the bounds from `π̂_X` and `π̂_{X∪{A}}`.
    pub fn new(pi_x: &StrippedPartition, pi_xa: &StrippedPartition) -> G3Bounds {
        assert_eq!(
            pi_x.n_rows(),
            pi_xa.n_rows(),
            "partitions of different relations"
        );
        let e_x = pi_x.error_rows();
        let e_xa = pi_xa.error_rows();
        G3Bounds {
            lower_rows: e_x.saturating_sub(e_xa),
            upper_rows: e_x,
            n_rows: pi_x.n_rows(),
        }
    }

    /// Lower bound as a fraction.
    pub fn lower(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.lower_rows as f64 / self.n_rows as f64
        }
    }

    /// Upper bound as a fraction.
    pub fn upper(&self) -> f64 {
        if self.n_rows == 0 {
            0.0
        } else {
            self.upper_rows as f64 / self.n_rows as f64
        }
    }

    /// Tries to decide `g3 ≤ epsilon` from the bounds alone:
    /// `Some(true)` / `Some(false)` when decidable, `None` when the exact
    /// error must be computed.
    pub fn decide(&self, epsilon: f64) -> Option<bool> {
        if self.upper() <= epsilon {
            Some(true)
        } else if self.lower() > epsilon {
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::product;
    use tane_relation::{Relation, Schema, Value};
    use tane_util::AttrSet;

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    fn pi(r: &Relation, attrs: &[usize]) -> StrippedPartition {
        StrippedPartition::from_attr_set(r, AttrSet::from_indices(attrs.iter().copied()))
    }

    /// Brute-force g3: try removing every subset? Too slow — instead use the
    /// definitional form directly on full partitions.
    fn g3_reference(r: &Relation, x: &[usize], a: usize) -> usize {
        use crate::full::Partition;
        let px = Partition::from_attr_set(r, AttrSet::from_indices(x.iter().copied()));
        let pxa = Partition::from_attr_set(r, AttrSet::from_indices(x.iter().copied()).with(a));
        let mut keep = 0usize;
        for c in px.classes() {
            let best = pxa
                .classes()
                .iter()
                .filter(|c2| c2.iter().all(|t| c.contains(t)))
                .map(|c2| c2.len())
                .max()
                .unwrap_or(0);
            keep += best;
        }
        r.num_rows() - keep
    }

    #[test]
    fn valid_dependency_has_zero_error() {
        // {B,C} → A holds in Figure 1.
        let r = figure1();
        let pi_bc = pi(&r, &[1, 2]);
        let pi_abc = pi(&r, &[0, 1, 2]);
        assert_eq!(g3_removed_rows(&pi_bc, &pi_abc), 0);
        assert_eq!(g3_error(&pi_bc, &pi_abc), 0.0);
    }

    #[test]
    fn invalid_dependency_error_on_figure1() {
        // {A} → B: π_A = {{1,2},{3,4,5},{6,7,8}}, π_AB = {{1},{2},{3,4},{5},{6},{7,8}}.
        // Class {1,2}: largest subclass 1 → remove 1. {3,4,5}: largest {3,4} → remove 1.
        // {6,7,8}: largest {7,8} → remove 1. Total 3 rows, g3 = 3/8.
        let r = figure1();
        let pi_a = pi(&r, &[0]);
        let pi_ab = pi(&r, &[0, 1]);
        assert_eq!(g3_removed_rows(&pi_a, &pi_ab), 3);
        assert!((g3_error(&pi_a, &pi_ab) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn matches_reference_on_all_figure1_pairs() {
        let r = figure1();
        let mut scratch = G3Scratch::new(r.num_rows());
        for bits in 0u64..16 {
            let x = AttrSet::from_bits(bits);
            for a in 0..4usize {
                if x.contains(a) {
                    continue;
                }
                let px = StrippedPartition::from_attr_set(&r, x);
                let pxa = StrippedPartition::from_attr_set(&r, x.with(a));
                let got = g3_removed_rows_with_scratch(&px, &pxa, &mut scratch);
                let xs: Vec<usize> = x.iter().collect();
                let want = g3_reference(&r, &xs, a);
                assert_eq!(got, want, "X={x:?}, A={a}");
            }
        }
    }

    #[test]
    fn empty_lhs_counts_most_common_value() {
        // ∅ → A: keep the largest class of π_A = {3,4,5} (3 rows) → remove 5.
        let r = figure1();
        let unit = StrippedPartition::unit(8);
        let pi_a = pi(&r, &[0]);
        assert_eq!(g3_removed_rows(&unit, &pi_a), 5);
    }

    #[test]
    fn superkey_lhs_zero_error() {
        let r = figure1();
        let key = pi(&r, &[0, 1, 2, 3]);
        let key_d = pi(&r, &[0, 1, 2, 3]); // adding nothing new
        assert_eq!(g3_removed_rows(&key, &key_d), 0);
    }

    #[test]
    fn bounds_sandwich_exact_value_everywhere() {
        let r = figure1();
        for bits in 0u64..16 {
            let x = AttrSet::from_bits(bits);
            for a in 0..4usize {
                if x.contains(a) {
                    continue;
                }
                let px = StrippedPartition::from_attr_set(&r, x);
                let pxa = StrippedPartition::from_attr_set(&r, x.with(a));
                let exact = g3_removed_rows(&px, &pxa);
                let bounds = G3Bounds::new(&px, &pxa);
                assert!(bounds.lower_rows <= exact, "lower X={x:?} A={a}");
                assert!(exact <= bounds.upper_rows, "upper X={x:?} A={a}");
            }
        }
    }

    #[test]
    fn decide_respects_bounds() {
        let b = G3Bounds {
            lower_rows: 2,
            upper_rows: 5,
            n_rows: 10,
        };
        assert_eq!(b.decide(0.6), Some(true)); // upper 0.5 ≤ 0.6
        assert_eq!(b.decide(0.5), Some(true));
        assert_eq!(b.decide(0.1), Some(false)); // lower 0.2 > 0.1
        assert_eq!(b.decide(0.3), None); // in between
        let empty = G3Bounds {
            lower_rows: 0,
            upper_rows: 0,
            n_rows: 0,
        };
        assert_eq!(empty.decide(0.0), Some(true));
    }

    #[test]
    fn g3_with_product_partitions() {
        // Same answers whether π_{XA} comes from a product or directly.
        let r = figure1();
        let pi_a = pi(&r, &[0]);
        let pi_d = pi(&r, &[3]);
        let prod = product(&pi_a, &pi_d);
        let direct = pi(&r, &[0, 3]);
        assert_eq!(
            g3_removed_rows(&pi_a, &prod),
            g3_removed_rows(&pi_a, &direct)
        );
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let r = figure1();
        let mut scratch = G3Scratch::new(r.num_rows());
        let pi_a = pi(&r, &[0]);
        let pi_ab = pi(&r, &[0, 1]);
        let first = g3_removed_rows_with_scratch(&pi_a, &pi_ab, &mut scratch);
        for _ in 0..5 {
            assert_eq!(
                g3_removed_rows_with_scratch(&pi_a, &pi_ab, &mut scratch),
                first
            );
        }
    }

    #[test]
    fn empty_relation_is_zero() {
        let p = StrippedPartition::empty(0);
        assert_eq!(g3_error(&p, &p), 0.0);
        assert_eq!(g3_removed_rows(&p, &p), 0);
    }
}
