//! Partition stores: where level-(ℓ−1) partitions live between levels.
//!
//! The paper ships two implementations (Section 7): **TANE/MEM** keeps every
//! partition in main memory, while the scalable **TANE** "keeps most of the
//! partitions on disk" (Section 6: *O(s) disk accesses of size O(|r|)*,
//! *disk space O(s_max·|r|)*). [`PartitionStore`] abstracts over the two so
//! the search algorithm is written once:
//!
//! * [`MemoryStore`] — a hash map; the TANE/MEM behaviour.
//! * [`SegmentStore`] — a concurrent segment storage engine. The writer
//!   packs a whole lattice level into append-only *segment files* (one
//!   sequential write per partition, many partitions per file) and seals
//!   them at level end; sealed segments are immutable and are read via
//!   positioned `pread` through a bounded file-handle cache, so
//!   [`get`](PartitionStore::get) takes `&self` and any number of worker
//!   threads fetch concurrently. Hot partitions live in a sharded clock
//!   cache with single-flight miss loading; snapshot pins (epoch-tagged,
//!   in the style of an LSM tree's snapshot tracker) let an in-flight
//!   read phase keep a stable view while dead segments are reaped
//!   underneath. A segment file is deleted as soon as all of its
//!   partitions have been removed *and* no snapshot that could observe it
//!   is still open — so disk space tracks the live levels
//!   (`O(s_max·|r|)`), matching the paper's accounting.
//!
//! Partitions are handed out as `Arc<StrippedPartition>` so a cached
//! partition can be used for several products without copies.
//!
//! ## Write/read discipline (DESIGN §13)
//!
//! All mutation — `put`, `remove`, `seal_level` — takes `&mut self` and
//! therefore happens on the serial driver thread, strictly between
//! concurrent read phases (the borrow checker enforces the exclusion).
//! Reads are `&self` and may run from any thread. Eviction runs only at
//! deterministic points (puts, seals, phase ends), never behind a
//! concurrent `get`, which is what keeps the disk-read counters
//! byte-identical across worker counts (see `evict_to_budget`).
//!
//! Lock order (declared in tane-lint's R3 `LOCK_ORDER`): `clock` before
//! `shard` (eviction walks the clock queue and dips into shards), and
//! `shard` before `done` (publishing a loaded partition installs the
//! cache entry and wakes single-flight waiters in one critical section).
//! No other nesting exists; `handles` and `snapshots` are always taken
//! alone.

use crate::stripped::StrippedPartition;
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use tane_util::{AttrSet, FxHashMap};

/// Errors from partition stores (only the disk-backed store can fail).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A spilled partition failed validation when read back.
    Corrupt {
        /// The attribute set whose record is damaged.
        key: AttrSet,
        /// Description of the corruption.
        message: String,
    },
    /// `get` was called for a key that was never `put` (or was removed).
    Missing {
        /// The requested attribute set.
        key: AttrSet,
    },
    /// Writing the partition would push the store past its disk quota.
    QuotaExceeded {
        /// Bytes the rejected write needed.
        need: u64,
        /// Bytes already charged against the quota.
        used: u64,
        /// The quota limit in bytes.
        limit: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "partition store I/O error: {e}"),
            StoreError::Corrupt { key, message } => {
                write!(f, "corrupt partition record for {key:?}: {message}")
            }
            StoreError::Missing { key } => write!(f, "no partition stored for {key:?}"),
            StoreError::QuotaExceeded { need, used, limit } => write!(
                f,
                "disk quota exceeded: record of {need} bytes over a {limit}-byte \
                 quota with {used} bytes used"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Clones a [`StoreError`] for delivery to every single-flight waiter
/// (`io::Error` is not `Clone`, so the I/O case keeps kind + message).
fn clone_error(e: &StoreError) -> StoreError {
    match e {
        StoreError::Io(io) => StoreError::Io(io::Error::new(io.kind(), io.to_string())),
        StoreError::Corrupt { key, message } => StoreError::Corrupt {
            key: *key,
            message: message.clone(),
        },
        StoreError::Missing { key } => StoreError::Missing { key: *key },
        StoreError::QuotaExceeded { need, used, limit } => StoreError::QuotaExceeded {
            need: *need,
            used: *used,
            limit: *limit,
        },
    }
}

/// A shared disk-usage budget, charged by every [`SegmentStore`] that holds
/// a handle to it. The server creates one per dataset, so all searches over
/// a dataset — however many run concurrently — share one cap on spilled
/// partition bytes.
///
/// Charges follow segment files, not logical records: bytes are charged
/// when a record is appended and released when its segment file is deleted
/// (reaped or dropped), so `used` tracks what is actually on disk.
#[derive(Debug, Default)]
pub struct DiskQuota {
    used: AtomicU64,
    limit: u64,
}

impl DiskQuota {
    /// A quota of `limit_bytes` with nothing charged yet.
    pub fn new(limit_bytes: u64) -> DiskQuota {
        DiskQuota {
            used: AtomicU64::new(0),
            limit: limit_bytes,
        }
    }

    /// Bytes currently charged.
    // ORDERING: Relaxed — advisory telemetry snapshot; admission decisions
    // re-read the cell inside try_charge's CAS loop, never through this.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    // ORDERING: Relaxed throughout — the quota cell is self-contained:
    // a successful charge publishes no other memory, so the CAS only
    // needs atomicity of the read-modify-write, not an ordering edge.
    fn try_charge(&self, need: u64) -> Result<(), StoreError> {
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            if used.saturating_add(need) > self.limit {
                return Err(StoreError::QuotaExceeded {
                    need,
                    used,
                    limit: self.limit,
                });
            }
            match self.used.compare_exchange_weak(
                used,
                used + need,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(now) => used = now,
            }
        }
    }

    fn release(&self, bytes: u64) {
        // ORDERING: Relaxed — same self-contained-cell argument as
        // try_charge; an un-charge orders nothing else.
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// Storage for the partitions of one lattice level.
pub trait PartitionStore {
    /// Stores the partition for `key`, replacing any previous one.
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError>;

    /// Retrieves the partition for `key`. Takes `&self`: implementations
    /// must support concurrent retrieval from multiple threads.
    ///
    /// # Errors
    ///
    /// [`StoreError::Missing`] if the key is not present;
    /// [`StoreError::Io`]/[`StoreError::Corrupt`] from the disk store.
    fn get(&self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError>;

    /// Drops the partition for `key` (no-op if absent). Used when a level
    /// has been fully processed and its partitions are no longer needed.
    fn remove(&mut self, key: AttrSet);

    /// Declares the current batch of `put`s complete. The disk store seals
    /// the active segment (making every written record immutable and
    /// readable via `pread`) and releases the level's cache pins; the
    /// memory store does nothing.
    fn seal_level(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    /// The number of elements `‖π̂‖` of the stored partition, without any
    /// I/O — the search's parallel-dispatch gate runs on these estimates
    /// so it never has to prefetch. `None` if the key is absent.
    fn elements_hint(&self, key: AttrSet) -> Option<usize>;

    /// Number of partitions currently stored.
    fn len(&self) -> usize;

    /// `true` iff nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of partition payload currently resident in main memory.
    fn resident_bytes(&self) -> usize;
}

/// The TANE/MEM store: everything in a hash map.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: FxHashMap<AttrSet, Arc<StrippedPartition>>,
    bytes: usize,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl PartitionStore for MemoryStore {
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError> {
        let size = partition.size_bytes();
        if let Some(old) = self.map.insert(key, Arc::new(partition)) {
            self.bytes -= old.size_bytes();
        }
        self.bytes += size;
        Ok(())
    }

    fn get(&self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError> {
        self.map
            .get(&key)
            .cloned()
            .ok_or(StoreError::Missing { key })
    }

    fn remove(&mut self, key: AttrSet) {
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.size_bytes();
        }
    }

    fn elements_hint(&self, key: AttrSet) -> Option<usize> {
        self.map.get(&key).map(|p| p.num_elements())
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn resident_bytes(&self) -> usize {
        self.bytes
    }
}

/// Monotone counter used to give each `SegmentStore` a unique directory.
static STORE_ID: AtomicU64 = AtomicU64::new(0);

/// Rotate to a fresh segment file once the active one exceeds this size.
const SEGMENT_ROTATE_BYTES: u64 = 32 << 20;

/// Shards of the partition cache. A power of two; eight keeps shard
/// contention negligible at the pool's worker counts while keeping the
/// driver-side sweeps (seal, unpin) cheap.
const CACHE_SHARDS: usize = 8;

/// At most this many segment read handles stay open. Handles are plain
/// `File`s shared as `Arc` and read with positioned `pread`, so one handle
/// serves any number of concurrent readers.
const HANDLE_CACHE_CAP: usize = 32;

/// Location of one spilled partition.
#[derive(Debug, Clone, Copy)]
struct EntryLoc {
    segment: u32,
    offset: u64,
    /// Total record length in bytes — one `pread` fetches the whole record.
    len: u32,
    /// `‖π̂‖` of the stored partition, for I/O-free size estimates.
    elements: u32,
}

/// One segment file.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    /// Keys still pointing into this segment; the file is doomed at zero.
    live: usize,
    /// Bytes written into this segment (the quota charge to release).
    bytes: u64,
    /// Sealed segments are immutable and safe for positioned reads.
    sealed: bool,
}

/// A dead segment file whose deletion waits for the snapshots that could
/// still observe it. `epoch` is the tracker's next-epoch value at doom
/// time: every read phase open back then has a smaller epoch, so the file
/// is reaped once the minimum open epoch reaches `epoch` (or none is open).
#[derive(Debug)]
struct Doomed {
    epoch: u64,
    path: PathBuf,
    bytes: u64,
}

/// Epoch source for snapshot pins (the `snapshots` lock).
#[derive(Debug, Default)]
struct SnapshotTracker {
    next_epoch: u64,
    open: std::collections::BTreeSet<u64>,
}

/// An open read phase (snapshot pin), returned by
/// [`SegmentStore::begin_read_phase`]. A plain token, not a borrow — the
/// driver may interleave `&mut` writer calls (e.g. `remove`) while a phase
/// is open; segments doomed in that window stay on disk until the phase
/// ends. Ending the phase is explicit: [`SegmentStore::end_read_phase`].
#[derive(Debug)]
#[must_use = "a read phase pins cache entries until end_read_phase"]
pub struct ReadPhase {
    epoch: u64,
}

/// One resident cache entry.
#[derive(Debug)]
struct Entry {
    part: Arc<StrippedPartition>,
    bytes: usize,
    /// Still part of the unsealed active level: never evicted, enqueued
    /// into the clock at `seal_level`.
    active: bool,
    /// Pinned by the open read phase: never evicted, enqueued at
    /// `end_read_phase`.
    pinned: bool,
    /// Clock reference bit; granted one second chance per sweep.
    accessed: bool,
    /// Already present in the clock queue (prevents duplicates).
    queued: bool,
}

/// Single-flight slot for a partition being loaded from disk: the first
/// missing reader loads, every concurrent reader of the same key waits on
/// `cv` for the published result.
#[derive(Debug)]
struct LoadSlot {
    done: Mutex<Option<Result<Arc<StrippedPartition>, StoreError>>>,
    cv: Condvar,
}

#[derive(Debug)]
enum Slot {
    Ready(Entry),
    Loading(Arc<LoadSlot>),
}

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<AttrSet, Slot>,
}

/// Bounded cache of open segment read handles.
#[derive(Debug, Default)]
struct HandleCache {
    open: FxHashMap<u32, (Arc<fs::File>, u64)>,
    tick: u64,
}

/// The scalable-TANE store: a concurrent segment storage engine. See the
/// module docs for the architecture and DESIGN §13 for the lifecycle and
/// determinism arguments.
///
/// Record format (little-endian): magic `b"TANE"`, `u32 n_rows`,
/// `u32 n_classes`, `u32 n_elements`, the class sizes (`n_classes` × u32),
/// the `elements` array (`n_elements` × u32). Records are self-delimiting,
/// so a segment is just a concatenation of records.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    owns_dir: bool,
    cache_budget: usize,
    quota: Option<Arc<DiskQuota>>,

    // ---- writer state: touched through `&mut self` only ----
    active_id: u32,
    active_writer: Option<io::BufWriter<fs::File>>,
    active_bytes: u64,
    /// Keys written since the last seal, in put order — the deterministic
    /// clock-enqueue order for the level.
    active_keys: Vec<AttrSet>,
    segments: FxHashMap<u32, Segment>,
    index: FxHashMap<AttrSet, EntryLoc>,
    doomed: Vec<Doomed>,
    /// Reusable record buffer for serialization.
    scratch: Vec<u8>,
    writes: u64,
    bytes_written: u64,

    // ---- shared read state: interior mutability behind locks/atomics ----
    shards: Vec<Mutex<Shard>>,
    handles: Mutex<HandleCache>,
    snapshots: Mutex<SnapshotTracker>,
    /// The clock (second-chance FIFO) eviction queue. Entries join in
    /// deterministic driver order: level seals enqueue in put order,
    /// phase ends enqueue the phase's fetches in ascending key order.
    clock: Mutex<VecDeque<AttrSet>>,
    open_phases: AtomicU32,
    cache_bytes: AtomicUsize,
    reads: AtomicU64,
    bytes_read: AtomicU64,
    evictions: AtomicU64,
    pins: AtomicU64,
    oversized: AtomicU64,
}

impl SegmentStore {
    /// Creates a segment store in a fresh temporary directory, keeping at
    /// most `cache_budget_bytes` of partitions resident.
    pub fn new(cache_budget_bytes: usize) -> Result<SegmentStore, StoreError> {
        // ORDERING: Relaxed — ID allocation needs only atomicity of the
        // increment; no other memory rides on it.
        let id = STORE_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tane-partitions-{}-{}", std::process::id(), id));
        Self::create(dir, cache_budget_bytes, true, None)
    }

    /// Creates a segment store in a caller-managed directory (not removed
    /// on drop).
    pub fn in_dir(dir: PathBuf, cache_budget_bytes: usize) -> Result<SegmentStore, StoreError> {
        Self::create(dir, cache_budget_bytes, false, None)
    }

    /// [`SegmentStore::new`] with a shared disk quota: every record write
    /// is charged against `quota` and refused with
    /// [`StoreError::QuotaExceeded`] once the cap is reached.
    pub fn with_quota(
        cache_budget_bytes: usize,
        quota: Arc<DiskQuota>,
    ) -> Result<SegmentStore, StoreError> {
        // ORDERING: Relaxed — unique-ID increment, as in `new`.
        let id = STORE_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tane-partitions-{}-{}", std::process::id(), id));
        Self::create(dir, cache_budget_bytes, true, Some(quota))
    }

    fn create(
        dir: PathBuf,
        cache_budget_bytes: usize,
        owns_dir: bool,
        quota: Option<Arc<DiskQuota>>,
    ) -> Result<SegmentStore, StoreError> {
        fs::create_dir_all(&dir)?;
        Ok(SegmentStore {
            dir,
            owns_dir,
            cache_budget: cache_budget_bytes,
            quota,
            active_id: 0,
            active_writer: None,
            active_bytes: 0,
            active_keys: Vec::new(),
            segments: FxHashMap::default(),
            index: FxHashMap::default(),
            doomed: Vec::new(),
            scratch: Vec::new(),
            writes: 0,
            bytes_written: 0,
            shards: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
            handles: Mutex::default(),
            snapshots: Mutex::default(),
            clock: Mutex::new(VecDeque::new()),
            open_phases: AtomicU32::new(0),
            cache_bytes: AtomicUsize::new(0),
            reads: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            pins: AtomicU64::new(0),
            oversized: AtomicU64::new(0),
        })
    }

    /// Number of partition records read back from disk so far.
    // ORDERING: Acquire — this counter is published into TaneStats;
    // pairs with the Release increments in read_record so a reader that
    // observed the search finish observes every read it performed.
    pub fn disk_reads(&self) -> u64 {
        self.reads.load(Ordering::Acquire)
    }

    /// Number of partition records written so far.
    pub fn disk_writes(&self) -> u64 {
        self.writes
    }

    /// Bytes of partition records read back from disk so far.
    // ORDERING: Acquire — stats-published; pairs with the Release
    // increment in read_record (see disk_reads).
    pub fn disk_bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Acquire)
    }

    /// Bytes of partition records spilled to disk so far.
    pub fn disk_bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Partitions evicted from the resident cache so far.
    // ORDERING: Acquire — stats-published; pairs with the Release
    // increment in evict_to_budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Acquire)
    }

    /// Cache entries pinned by read phases so far (each pin holds one
    /// fetched partition resident until its phase ends).
    // ORDERING: Acquire — stats-published; pairs with the Release
    // increment in load_and_publish.
    pub fn snapshot_pins(&self) -> u64 {
        self.pins.load(Ordering::Acquire)
    }

    /// Times an eviction sweep ended with the resident set still over
    /// budget — every remaining partition was pinned or active (e.g. a
    /// single partition larger than the whole budget).
    // ORDERING: Acquire — stats-published; pairs with the Release
    // increment in evict_to_budget.
    pub fn oversized_resident(&self) -> u64 {
        self.oversized.load(Ordering::Acquire)
    }

    /// Number of live (non-doomed) segment files.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of segment read handles currently open (bounded by the
    /// handle cache).
    pub fn open_handles(&self) -> usize {
        let handles = &self.handles;
        let cache = handles.lock().unwrap_or_else(|e| e.into_inner());
        cache.open.len()
    }

    fn segment_path(&self, id: u32) -> PathBuf {
        self.dir.join(format!("segment-{id:06}.tane"))
    }

    fn shard_for(&self, key: AttrSet) -> &Mutex<Shard> {
        // Avalanche the bits so dense low-bit key populations spread; the
        // exact function is irrelevant to results (the cache is
        // content-addressed), only to contention.
        let h = key.bits().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 56) as usize % CACHE_SHARDS]
    }

    // ---- snapshot pins ------------------------------------------------

    /// Opens a read phase: until the matching [`end_read_phase`], every
    /// partition fetched from disk stays pinned in the cache (so repeated
    /// fetches of one parent cost one read no matter how many workers ask)
    /// and no segment file doomed during the phase is deleted. One phase
    /// at a time per store: phases are driver-side brackets around a
    /// concurrent read section, they do not nest.
    ///
    /// [`end_read_phase`]: SegmentStore::end_read_phase
    pub fn begin_read_phase(&self) -> ReadPhase {
        let snapshots = &self.snapshots;
        let mut tracker = snapshots.lock().unwrap_or_else(|e| e.into_inner());
        let epoch = tracker.next_epoch;
        tracker.next_epoch += 1;
        tracker.open.insert(epoch);
        drop(tracker);
        // ORDERING: Release — publishes the tracker insert above to the
        // Acquire pin-check in load_and_publish: a loader that sees the
        // phase open also sees its epoch registered.
        self.open_phases.fetch_add(1, Ordering::Release);
        ReadPhase { epoch }
    }

    /// Closes a read phase: unpins the phase's fetches (enqueueing them
    /// into the clock in ascending key order — a deterministic order, so
    /// eviction never depends on which worker fetched first) and evicts
    /// back to budget. Segments doomed during the phase become reapable;
    /// the next writer-side call deletes them.
    pub fn end_read_phase(&self, phase: ReadPhase) {
        // ORDERING: Release — everything the phase read happens-before
        // the counter drop; the unpin sweep below re-checks under locks.
        self.open_phases.fetch_sub(1, Ordering::Release);
        let snapshots = &self.snapshots;
        let mut tracker = snapshots.lock().unwrap_or_else(|e| e.into_inner());
        tracker.open.remove(&phase.epoch);
        drop(tracker);

        // Unpin this phase's fetches, shard by shard.
        let mut unpinned: Vec<AttrSet> = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            // lint:allow(determinism): the keys collected here are sorted
            // before they feed the (deterministic) eviction order below.
            for (key, slot) in guard.map.iter_mut() {
                if let Slot::Ready(e) = slot {
                    if e.pinned {
                        e.pinned = false;
                        if !e.queued {
                            e.queued = true;
                            unpinned.push(*key);
                        }
                    }
                }
            }
        }
        unpinned.sort_unstable();
        let clock = &self.clock;
        let mut queue = clock.lock().unwrap_or_else(|e| e.into_inner());
        queue.extend(unpinned);
        drop(queue);
        self.evict_to_budget();
    }

    // ---- cache / eviction ---------------------------------------------

    /// Installs a freshly written partition as an *active* cache entry:
    /// resident and unevictable until the level seals (reads of unsealed
    /// records would need the writer's buffer; keeping the level resident
    /// is what lets the read path assume every indexed record on disk is
    /// sealed and immutable).
    fn insert_active(&self, key: AttrSet, part: Arc<StrippedPartition>) {
        let bytes = part.size_bytes();
        let shard = self.shard_for(key);
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let old = guard.map.insert(
            key,
            Slot::Ready(Entry {
                part,
                bytes,
                active: true,
                pinned: false,
                accessed: true,
                queued: false,
            }),
        );
        drop(guard);
        let freed = match old {
            Some(Slot::Ready(e)) => e.bytes,
            _ => 0,
        };
        // ORDERING: Relaxed — cache accounting only steers eviction; every
        // mutation happens with a shard or clock guard recently held, and
        // the driver-serial sweep re-reads the cell each iteration.
        self.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.cache_bytes.fetch_sub(freed, Ordering::Relaxed); // ORDERING: as above
    }

    /// Evicts idle entries (not active, not pinned) in clock order until
    /// the resident set fits the budget — *exactly*: a single partition
    /// larger than the whole budget is evicted like any other (and
    /// re-read on demand), never silently left pinning the cache over
    /// budget. If the sweep ends still over budget, everything left is
    /// pinned or active and [`oversized_resident`] records it.
    ///
    /// Called only from driver-serial points (put, seal, phase end), with
    /// deterministic queue contents and accessed bits — which worker
    /// fetched an entry first never changes *whether* it was fetched — so
    /// eviction, and with it every disk-read counter, is byte-identical
    /// across worker counts (DESIGN §13).
    ///
    /// [`oversized_resident`]: SegmentStore::oversized_resident
    // ORDERING: cache_bytes reads/writes are Relaxed (driver-serial sweep,
    // advisory accounting — see the comment in publish_entry); the
    // evictions/oversized increments are Release so the Acquire getters
    // that feed TaneStats observe exact totals.
    fn evict_to_budget(&self) {
        let clock = &self.clock;
        // lint:lock-order(clock -> shard): the sweep walks the clock queue
        // and dips into one shard per key; shard guards are dropped before
        // the next key, and no shard-holding path ever takes the clock.
        let mut queue = clock.lock().unwrap_or_else(|e| e.into_inner());
        // Each queued entry is popped at most twice per sweep (one second
        // chance); the bound makes that a hard guarantee.
        let mut budget_left = queue.len() * 2;
        while self.cache_bytes.load(Ordering::Relaxed) > self.cache_budget && budget_left > 0 {
            budget_left -= 1;
            let Some(key) = queue.pop_front() else { break };
            let shard = self.shard_for(key);
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            let Some(Slot::Ready(e)) = guard.map.get_mut(&key) else {
                continue; // removed since it was queued
            };
            if e.active || e.pinned {
                // Re-activated or re-pinned since queueing; it will be
                // re-enqueued when it next becomes idle.
                e.queued = false;
                continue;
            }
            if e.accessed {
                e.accessed = false;
                queue.push_back(key);
                continue;
            }
            let freed = e.bytes;
            guard.map.remove(&key);
            drop(guard);
            self.cache_bytes.fetch_sub(freed, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Release);
        }
        drop(queue);
        if self.cache_bytes.load(Ordering::Relaxed) > self.cache_budget {
            self.oversized.fetch_add(1, Ordering::Release);
        }
    }

    /// Drops a key's cache entry (any state), returning freed bytes.
    fn uncache(&self, key: AttrSet) {
        let shard = self.shard_for(key);
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(Slot::Ready(e)) = guard.map.remove(&key) {
            drop(guard);
            // ORDERING: Relaxed — advisory cache accounting, as above.
            self.cache_bytes.fetch_sub(e.bytes, Ordering::Relaxed);
        }
    }

    // ---- segment lifecycle --------------------------------------------

    fn ensure_active_writer(&mut self) -> Result<(), StoreError> {
        if self.active_writer.is_none() {
            let path = self.segment_path(self.active_id);
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            self.segments.insert(
                self.active_id,
                Segment {
                    path,
                    live: 0,
                    bytes: 0,
                    sealed: false,
                },
            );
            self.active_writer = Some(io::BufWriter::new(file));
            self.active_bytes = 0;
        }
        Ok(())
    }

    /// Seals the active segment file: flushes the writer and marks the
    /// segment immutable. The level's cache entries stay *active* until
    /// [`seal_level`](PartitionStore::seal_level) — rotation is a file
    /// boundary, not a level boundary.
    fn seal_active_segment(&mut self) -> Result<(), StoreError> {
        if let Some(mut w) = self.active_writer.take() {
            w.flush()?;
            if let Some(seg) = self.segments.get_mut(&self.active_id) {
                seg.sealed = true;
            }
            let finished = self.active_id;
            self.active_id += 1;
            self.active_bytes = 0;
            self.doom_or_reap(finished);
        }
        Ok(())
    }

    fn rotate_if_needed(&mut self) -> Result<(), StoreError> {
        if self.active_bytes >= SEGMENT_ROTATE_BYTES {
            self.seal_active_segment()?;
        }
        Ok(())
    }

    /// If segment `id` has no live records, removes it from the live set
    /// and either deletes the file now (no open read phase) or dooms it
    /// until every phase open at this moment has ended.
    fn doom_or_reap(&mut self, id: u32) {
        let dead = match self.segments.get(&id) {
            Some(seg) => seg.live == 0 && seg.sealed,
            None => false,
        };
        if !dead {
            return;
        }
        let seg = self.segments.remove(&id).expect("checked above");
        // Drop our cached read handle; in-flight readers hold their own
        // `Arc<File>` clones, which keep the data readable even past the
        // unlink below (POSIX semantics).
        let handles = &self.handles;
        let mut cache = handles.lock().unwrap_or_else(|e| e.into_inner());
        cache.open.remove(&id);
        drop(cache);

        let snapshots = &self.snapshots;
        let tracker = snapshots.lock().unwrap_or_else(|e| e.into_inner());
        let any_open = !tracker.open.is_empty();
        let doom_epoch = tracker.next_epoch;
        drop(tracker);
        if any_open {
            self.doomed.push(Doomed {
                epoch: doom_epoch,
                path: seg.path,
                bytes: seg.bytes,
            });
        } else {
            let _ = fs::remove_file(&seg.path);
            if let Some(q) = &self.quota {
                q.release(seg.bytes);
            }
        }
    }

    /// Deletes every doomed segment whose dooming phases have all ended.
    fn reap_doomed(&mut self) {
        if self.doomed.is_empty() {
            return;
        }
        let snapshots = &self.snapshots;
        let tracker = snapshots.lock().unwrap_or_else(|e| e.into_inner());
        let min_open = tracker.open.first().copied();
        drop(tracker);
        let quota = self.quota.clone();
        self.doomed.retain(|d| {
            let reapable = match min_open {
                None => true,
                Some(min) => min >= d.epoch,
            };
            if reapable {
                let _ = fs::remove_file(&d.path);
                if let Some(q) = &quota {
                    q.release(d.bytes);
                }
            }
            !reapable
        });
    }

    // ---- record I/O ---------------------------------------------------

    fn serialize_record(scratch: &mut Vec<u8>, partition: &StrippedPartition) {
        scratch.clear();
        scratch.extend_from_slice(b"TANE");
        scratch.extend_from_slice(&(partition.n_rows() as u32).to_le_bytes());
        scratch.extend_from_slice(&(partition.num_classes() as u32).to_le_bytes());
        scratch.extend_from_slice(&(partition.num_elements() as u32).to_le_bytes());
        for class in partition.classes() {
            scratch.extend_from_slice(&(class.len() as u32).to_le_bytes());
        }
        for class in partition.classes() {
            for &row in class {
                scratch.extend_from_slice(&row.to_le_bytes());
            }
        }
    }

    /// Clones (or opens) the read handle for segment `id`. The handle
    /// cache is bounded: past [`HANDLE_CACHE_CAP`] the least-recently
    /// used handle is closed — readers that still hold its `Arc` finish
    /// unaffected, and a later read simply reopens.
    fn handle(&self, id: u32) -> Result<Arc<fs::File>, StoreError> {
        let handles = &self.handles;
        let mut cache = handles.lock().unwrap_or_else(|e| e.into_inner());
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((file, last)) = cache.open.get_mut(&id) {
            *last = tick;
            return Ok(file.clone());
        }
        let path = match self.segments.get(&id) {
            Some(seg) => seg.path.clone(),
            None => {
                return Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("segment {id} is not live"),
                )))
            }
        };
        let file = Arc::new(fs::File::open(path)?);
        if cache.open.len() >= HANDLE_CACHE_CAP {
            // Ticks are unique, so the minimum is well defined and the
            // choice is order-insensitive.
            if let Some(&coldest) = cache
                .open
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
            {
                cache.open.remove(&coldest);
            }
        }
        cache.open.insert(id, (file.clone(), tick));
        Ok(file)
    }

    /// Reads and validates one record with a single positioned read; no
    /// seek state, so any number of threads read the same handle.
    fn read_record(&self, key: AttrSet, loc: EntryLoc) -> Result<StrippedPartition, StoreError> {
        if failpoint::take_corrupt_read() {
            return Err(StoreError::Corrupt {
                key,
                message: "injected read fault".into(),
            });
        }
        let file = self.handle(loc.segment)?;
        let mut buf = vec![0u8; loc.len as usize];
        file.read_exact_at(&mut buf, loc.offset).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                StoreError::Corrupt {
                    key,
                    message: "truncated record".into(),
                }
            } else {
                StoreError::Io(e)
            }
        })?;
        let partition = parse_record(key, &buf)?;
        // ORDERING: Release — pairs with the Acquire loads in the
        // disk_reads/disk_bytes_read getters that feed TaneStats.
        self.reads.fetch_add(1, Ordering::Release);
        self.bytes_read.fetch_add(loc.len as u64, Ordering::Release); // ORDERING: as above
        Ok(partition)
    }

    /// The miss path of [`get`](PartitionStore::get): single-flight loads
    /// the record, publishes the cache entry (pinned if a read phase is
    /// open), and wakes concurrent waiters.
    fn load_and_publish(
        &self,
        key: AttrSet,
        loc: EntryLoc,
        slot: &Arc<LoadSlot>,
    ) -> Result<Arc<StrippedPartition>, StoreError> {
        let result = self.read_record(key, loc).map(Arc::new);
        // ORDERING: Acquire — pairs with the Release in begin_read_phase:
        // seeing the phase open implies seeing its epoch in the tracker,
        // so the pin taken here is always unpinned by that phase's close.
        let pinned = self.open_phases.load(Ordering::Acquire) > 0;
        let shard = self.shard_for(key);
        let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
        match &result {
            Ok(part) => {
                guard.map.insert(
                    key,
                    Slot::Ready(Entry {
                        part: part.clone(),
                        bytes: part.size_bytes(),
                        active: false,
                        pinned,
                        accessed: true,
                        queued: false,
                    }),
                );
                // ORDERING: Relaxed cache accounting (advisory, see
                // publish_entry); the pin counter is Release to pair with
                // the Acquire getter feeding TaneStats.
                self.cache_bytes
                    .fetch_add(part.size_bytes(), Ordering::Relaxed); // ORDERING: as above
                if pinned {
                    self.pins.fetch_add(1, Ordering::Release); // ORDERING: as above
                }
            }
            Err(_) => {
                guard.map.remove(&key);
            }
        }
        // Publish to waiters while still holding the shard lock, so a new
        // reader can never observe the Loading marker after its waiters
        // were already woken.
        // lint:lock-order(shard -> done): single-flight publication takes
        // the slot's done mutex under the shard lock by design; waiters
        // block on `done` only *after* releasing the shard, so the reverse
        // nesting never occurs.
        let mut done = slot.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = Some(match &result {
            Ok(p) => Ok(p.clone()),
            Err(e) => Err(clone_error(e)),
        });
        slot.cv.notify_all();
        drop(done);
        drop(guard);

        // Idle insertions (no phase open) join the clock right away, after
        // both locks are released (the clock is always the outermost lock).
        if result.is_ok() && !pinned {
            let clock = &self.clock;
            let mut queue = clock.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(key);
            let shard = self.shard_for(key);
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(Slot::Ready(e)) = guard.map.get_mut(&key) {
                e.queued = true;
            }
        }
        result
    }
}

/// Parses and validates one serialized record.
fn parse_record(key: AttrSet, buf: &[u8]) -> Result<StrippedPartition, StoreError> {
    let corrupt = |message: &str| StoreError::Corrupt {
        key,
        message: message.into(),
    };
    if buf.len() < 16 {
        return Err(corrupt("truncated record"));
    }
    if &buf[0..4] != b"TANE" {
        return Err(corrupt("bad magic"));
    }
    let n_rows = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")) as usize;
    let n_classes = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let n_elements = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")) as usize;
    let sizes_end = 16usize
        .checked_add(
            n_classes
                .checked_mul(4)
                .ok_or_else(|| corrupt("class count overflow"))?,
        )
        .ok_or_else(|| corrupt("class count overflow"))?;
    if buf.len() < sizes_end {
        return Err(corrupt("truncated record"));
    }
    let mut begins = Vec::with_capacity(n_classes + 1);
    begins.push(0u32);
    let mut acc = 0u32;
    for chunk in buf[16..sizes_end].chunks_exact(4) {
        let size = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
        if size < 2 {
            return Err(corrupt("class of size < 2"));
        }
        acc = acc
            .checked_add(size)
            .ok_or_else(|| corrupt("element count overflow"))?;
        begins.push(acc);
    }
    if acc as usize != n_elements {
        return Err(StoreError::Corrupt {
            key,
            message: format!("class sizes sum to {acc}, header says {n_elements}"),
        });
    }
    let elements_end = sizes_end
        .checked_add(
            n_elements
                .checked_mul(4)
                .ok_or_else(|| corrupt("element count overflow"))?,
        )
        .ok_or_else(|| corrupt("element count overflow"))?;
    if buf.len() < elements_end {
        return Err(corrupt("truncated record"));
    }
    let mut elements = Vec::with_capacity(n_elements);
    for chunk in buf[sizes_end..elements_end].chunks_exact(4) {
        let e = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        if e as usize >= n_rows {
            return Err(corrupt("row index out of range"));
        }
        elements.push(e);
    }
    Ok(StrippedPartition::from_parts(n_rows, elements, begins))
}

impl PartitionStore for SegmentStore {
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError> {
        self.ensure_active_writer()?;
        let mut scratch = std::mem::take(&mut self.scratch);
        Self::serialize_record(&mut scratch, &partition);
        let len = scratch.len() as u64;
        if let Some(q) = &self.quota {
            if let Err(e) = q.try_charge(len) {
                self.scratch = scratch;
                return Err(e);
            }
        }

        // Replacing a key: release its old location first.
        if let Some(old) = self.index.remove(&key) {
            if let Some(seg) = self.segments.get_mut(&old.segment) {
                seg.live -= 1;
            }
            self.doom_or_reap(old.segment);
        }

        let offset = self.active_bytes;
        let writer = self.active_writer.as_mut().expect("ensured above");
        let written = writer.write_all(&scratch);
        self.scratch = scratch;
        if let Err(e) = written {
            if let Some(q) = &self.quota {
                q.release(len);
            }
            return Err(e.into());
        }
        self.active_bytes += len;
        self.bytes_written += len;
        self.writes += 1;

        self.index.insert(
            key,
            EntryLoc {
                segment: self.active_id,
                offset,
                len: len as u32,
                elements: partition.num_elements() as u32,
            },
        );
        let seg = self
            .segments
            .get_mut(&self.active_id)
            .expect("active segment registered");
        seg.live += 1;
        seg.bytes += len;
        self.insert_active(key, Arc::new(partition));
        self.active_keys.push(key);
        self.rotate_if_needed()?;
        self.evict_to_budget();
        self.reap_doomed();
        Ok(())
    }

    fn get(&self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError> {
        let slot = {
            let shard = self.shard_for(key);
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            match guard.map.get_mut(&key) {
                Some(Slot::Ready(e)) => {
                    e.accessed = true;
                    return Ok(e.part.clone());
                }
                Some(Slot::Loading(ls)) => {
                    // Someone is already reading this record: wait for
                    // their published result instead of a duplicate read.
                    let ls = ls.clone();
                    drop(guard);
                    let mut done = ls.done.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        match &*done {
                            Some(Ok(p)) => return Ok(p.clone()),
                            Some(Err(e)) => return Err(clone_error(e)),
                            None => {
                                done = ls.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                            }
                        }
                    }
                }
                None => {
                    let Some(loc) = self.index.get(&key).copied() else {
                        return Err(StoreError::Missing { key });
                    };
                    // Every indexed record a reader can miss on is sealed:
                    // active-level entries stay cache-resident until
                    // seal_level, so a read of an unsealed segment means a
                    // caller broke the seal-on-level-end contract.
                    let sealed = self.segments.get(&loc.segment).is_some_and(|s| s.sealed);
                    assert!(
                        sealed,
                        "read of unsealed segment {}: active-level partitions are \
                         cache-resident until seal_level()",
                        loc.segment
                    );
                    let ls = Arc::new(LoadSlot {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    guard.map.insert(key, Slot::Loading(ls.clone()));
                    (ls, loc)
                }
            }
        };
        let (ls, loc) = slot;
        self.load_and_publish(key, loc, &ls)
    }

    fn remove(&mut self, key: AttrSet) {
        self.uncache(key);
        if let Some(loc) = self.index.remove(&key) {
            if let Some(seg) = self.segments.get_mut(&loc.segment) {
                seg.live -= 1;
            }
            self.doom_or_reap(loc.segment);
        }
        self.reap_doomed();
    }

    /// Seals the level written since the last seal: the active segment
    /// becomes immutable (readable by any worker via `pread`), and the
    /// level's cache entries turn evictable, joining the clock in put
    /// order — so eviction frees grandparent levels first, level at a
    /// time, exactly as the levelwise search stops needing them.
    fn seal_level(&mut self) -> Result<(), StoreError> {
        self.seal_active_segment()?;
        let keys = std::mem::take(&mut self.active_keys);
        for &key in &keys {
            let shard = self.shard_for(key);
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(Slot::Ready(e)) = guard.map.get_mut(&key) {
                e.active = false;
            }
        }
        let clock = &self.clock;
        let mut queue = clock.lock().unwrap_or_else(|e| e.into_inner());
        for key in keys {
            let shard = self.shard_for(key);
            let mut guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(Slot::Ready(e)) = guard.map.get_mut(&key) {
                if !e.queued && !e.active {
                    e.queued = true;
                    drop(guard);
                    queue.push_back(key);
                }
            }
        }
        drop(queue);
        self.evict_to_budget();
        self.reap_doomed();
        Ok(())
    }

    fn elements_hint(&self, key: AttrSet) -> Option<usize> {
        self.index.get(&key).map(|loc| loc.elements as usize)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn resident_bytes(&self) -> usize {
        // ORDERING: Relaxed — advisory cache-size probe for tests and the
        // eviction budget; never flows into results or stats.
        self.cache_bytes.load(Ordering::Relaxed)
    }
}

impl Drop for SegmentStore {
    fn drop(&mut self) {
        self.active_writer = None; // close before deleting
        let mut released = 0u64;
        // lint:allow(determinism): deletion order of doomed temp files
        // is unobservable in any result.
        for seg in self.segments.values() {
            released += seg.bytes;
            if !self.owns_dir {
                let _ = fs::remove_file(&seg.path);
            }
        }
        for d in &self.doomed {
            released += d.bytes;
            if !self.owns_dir {
                let _ = fs::remove_file(&d.path);
            }
        }
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
        if let Some(q) = &self.quota {
            q.release(released);
        }
    }
}

/// The historical name of [`SegmentStore`], kept for external users; the
/// disk backend has been a segment store since its first version, the
/// engine underneath is what changed.
pub type DiskStore = SegmentStore;

/// Test-only fault injection for the read path, armable from integration
/// and end-to-end tests (the server's corruption tests run a real server
/// in-process and arm this to prove a damaged store surfaces as an error
/// response, not a panic). Process-global; disarmed by default and
/// zero-cost beyond one relaxed atomic load per disk read.
pub mod failpoint {
    use std::sync::atomic::{AtomicU64, Ordering};

    static CORRUPT_READS: AtomicU64 = AtomicU64::new(0);

    /// Makes the next `n` disk reads of any store in this process fail
    /// with [`StoreError::Corrupt`](super::StoreError::Corrupt).
    // ORDERING: SeqCst — arming happens on a test thread; total order is
    // the cheapest way to make the fault visible to whichever worker
    // reads next, and this path is cold by definition.
    pub fn arm_corrupt_reads(n: u64) {
        CORRUPT_READS.store(n, Ordering::SeqCst);
    }

    /// Clears any armed faults.
    // ORDERING: SeqCst — symmetric with arm_corrupt_reads.
    pub fn disarm() {
        CORRUPT_READS.store(0, Ordering::SeqCst);
    }

    // ORDERING: Relaxed — the counter is its own synchronization object;
    // the CAS only needs atomicity of the decrement, no payload is
    // published through it.
    pub(crate) fn take_corrupt_read() -> bool {
        let mut n = CORRUPT_READS.load(Ordering::Relaxed);
        loop {
            if n == 0 {
                return false;
            }
            match CORRUPT_READS.compare_exchange_weak(
                n,
                n - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => n = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32) -> StrippedPartition {
        // Distinct partitions: classes {0,1} and {2,3,…,i+3}.
        let mut elements = vec![0, 1];
        elements.extend(2..(i + 4));
        let begins = vec![0, 2, elements.len() as u32];
        StrippedPartition::from_parts(1000, elements, begins)
    }

    #[test]
    fn memory_store_roundtrip() {
        let mut s = MemoryStore::new();
        let key = AttrSet::from_indices([0, 2]);
        s.put(key, sample(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.resident_bytes() > 0);
        assert_eq!(s.elements_hint(key), Some(sample(1).num_elements()));
        let got = s.get(key).unwrap();
        assert_eq!(*got, sample(1));
        assert!(matches!(
            s.get(AttrSet::singleton(5)),
            Err(StoreError::Missing { .. })
        ));
        s.remove(key);
        assert!(s.is_empty());
        assert_eq!(s.resident_bytes(), 0);
        s.remove(key); // double remove is a no-op
    }

    #[test]
    fn memory_store_replace_updates_bytes() {
        let mut s = MemoryStore::new();
        let key = AttrSet::singleton(0);
        s.put(key, sample(100)).unwrap();
        let big = s.resident_bytes();
        s.put(key, sample(1)).unwrap();
        assert!(s.resident_bytes() < big);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disk_store_roundtrip() {
        let mut s = SegmentStore::new(1 << 20).unwrap();
        let key = AttrSet::from_indices([1, 3, 5]);
        let p = sample(7);
        s.put(key, p.clone()).unwrap();
        s.seal_level().unwrap();
        let got = s.get(key).unwrap();
        assert_eq!(*got, p);
        assert_eq!(s.len(), 1);
        assert_eq!(s.elements_hint(key), Some(p.num_elements()));
        s.remove(key);
        assert!(matches!(s.get(key), Err(StoreError::Missing { .. })));
    }

    #[test]
    fn active_level_reads_hit_the_cache() {
        // Before seal_level the level's records are unreadable from disk;
        // gets must be served from the (pinned-resident) cache.
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(4);
        s.put(key, sample(2)).unwrap();
        assert_eq!(*s.get(key).unwrap(), sample(2));
        assert_eq!(s.disk_reads(), 0, "active entries never touch disk");
    }

    #[test]
    fn disk_store_evicts_and_reloads() {
        // Budget fits ~1 partition; sealing the level forces eviction, and
        // get() must transparently reload from disk.
        let one = sample(0).size_bytes();
        let mut s = SegmentStore::new(one + 8).unwrap();
        let keys: Vec<AttrSet> = (0..6).map(AttrSet::singleton).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32)).unwrap();
        }
        s.seal_level().unwrap();
        assert!(
            s.resident_bytes() <= one + 8,
            "sealed level must be evicted to budget exactly: {} > {}",
            s.resident_bytes(),
            one + 8
        );
        assert_eq!(s.disk_writes(), 6);
        assert!(s.evictions() >= 4, "evictions must be counted");
        // All six must still be retrievable, identical to what was stored.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*s.get(k).unwrap(), sample(i as u32), "key {i}");
        }
        assert!(s.disk_reads() >= 4, "cold keys must be read from disk");
    }

    #[test]
    fn eviction_has_no_single_resident_exemption() {
        // Regression: a single partition larger than the whole budget used
        // to stay resident forever (the old `cache.len() > 1` guard),
        // silently pinning the cache over budget with no counter.
        let mut s = SegmentStore::new(8).unwrap(); // smaller than any record
        let key = AttrSet::singleton(0);
        s.put(key, sample(50)).unwrap();
        s.seal_level().unwrap();
        assert_eq!(
            s.resident_bytes(),
            0,
            "an idle oversized partition is evicted like any other"
        );
        assert_eq!(*s.get(key).unwrap(), sample(50), "and re-read on demand");
    }

    #[test]
    fn oversized_resident_is_counted() {
        // With a zero budget the active level cannot be evicted (it must
        // stay resident until sealed); the sweep ends over budget and the
        // stat records it.
        let mut s = SegmentStore::new(0).unwrap();
        s.put(AttrSet::singleton(0), sample(1)).unwrap();
        assert!(s.resident_bytes() > 0, "active level stays resident");
        assert!(s.oversized_resident() >= 1);
        s.seal_level().unwrap();
        assert_eq!(s.resident_bytes(), 0, "sealing makes it evictable");
    }

    #[test]
    fn disk_store_cache_hit_avoids_read() {
        let mut s = SegmentStore::new(1 << 24).unwrap();
        let key = AttrSet::singleton(9);
        s.put(key, sample(3)).unwrap();
        s.seal_level().unwrap();
        let _ = s.get(key).unwrap();
        let _ = s.get(key).unwrap();
        assert_eq!(s.disk_reads(), 0, "hot key must be served from cache");
    }

    #[test]
    fn disk_store_replacing_a_key_keeps_latest() {
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(2);
        s.put(key, sample(1)).unwrap();
        s.put(key, sample(9)).unwrap();
        s.seal_level().unwrap(); // zero budget: the level is fully evicted
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(*s.get(key).unwrap(), sample(9));
        assert_eq!(s.len(), 1);
    }

    /// Seals and evicts everything, so the next get is a real disk read.
    fn flush_all(s: &mut SegmentStore) {
        s.seal_level().unwrap();
        let phase = s.begin_read_phase();
        s.end_read_phase(phase);
    }

    #[test]
    fn disk_store_detects_corruption() {
        let mut s = SegmentStore::new(0).unwrap(); // zero budget: nothing cached
        let key = AttrSet::singleton(1);
        s.put(key, sample(2)).unwrap();
        flush_all(&mut s);
        let path = s.segment_path(0);
        fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(matches!(s.get(key), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn corruption_truncated_record() {
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(1);
        s.put(key, sample(2)).unwrap();
        flush_all(&mut s);
        let path = s.segment_path(0);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..10]).unwrap(); // header cut short
        match s.get(key) {
            Err(StoreError::Corrupt { message, .. }) => {
                assert!(message.contains("truncated"), "{message}")
            }
            other => panic!("want truncated-record corruption, got {other:?}"),
        }
    }

    #[test]
    fn corruption_bad_magic() {
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(1);
        s.put(key, sample(2)).unwrap();
        flush_all(&mut s);
        let path = s.segment_path(0);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0..4].copy_from_slice(b"XXXX");
        fs::write(&path, bytes).unwrap();
        match s.get(key) {
            Err(StoreError::Corrupt { message, .. }) => {
                assert!(message.contains("bad magic"), "{message}")
            }
            other => panic!("want bad-magic corruption, got {other:?}"),
        }
    }

    #[test]
    fn corruption_class_size_overflow() {
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(1);
        s.put(key, sample(2)).unwrap(); // sample() has exactly 2 classes
        flush_all(&mut s);
        let path = s.segment_path(0);
        let mut bytes = fs::read(&path).unwrap();
        // Class sizes live at [16, 24); u32::MAX + u32::MAX overflows the
        // running element count.
        bytes[16..24].copy_from_slice(&[0xFF; 8]);
        fs::write(&path, bytes).unwrap();
        match s.get(key) {
            Err(StoreError::Corrupt { message, .. }) => {
                assert!(message.contains("overflow"), "{message}")
            }
            other => panic!("want overflow corruption, got {other:?}"),
        }
    }

    #[test]
    fn injected_read_fault_surfaces_as_corruption() {
        let mut s = SegmentStore::new(0).unwrap();
        let key = AttrSet::singleton(3);
        s.put(key, sample(1)).unwrap();
        flush_all(&mut s);
        failpoint::arm_corrupt_reads(1);
        assert!(matches!(s.get(key), Err(StoreError::Corrupt { .. })));
        failpoint::disarm();
        assert_eq!(*s.get(key).unwrap(), sample(1), "next read recovers");
    }

    #[test]
    fn disk_store_cleans_up_directory() {
        let dir;
        {
            let mut s = SegmentStore::new(1 << 20).unwrap();
            s.put(AttrSet::singleton(0), sample(0)).unwrap();
            dir = s.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "owned temp dir must be removed on drop");
    }

    #[test]
    fn in_dir_store_keeps_directory_but_reaps_segments() {
        let dir = std::env::temp_dir().join(format!("tane-test-keep-{}", std::process::id()));
        {
            let mut s = SegmentStore::in_dir(dir.clone(), 1 << 20).unwrap();
            s.put(AttrSet::singleton(0), sample(0)).unwrap();
        }
        assert!(dir.exists(), "caller-managed dir must survive");
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "segments must be reaped"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn many_partitions_share_few_segment_files() {
        let mut s = SegmentStore::new(1 << 16).unwrap();
        for i in 0..2000u32 {
            s.put(AttrSet::from_bits(u64::from(i) + 1), sample(i % 50))
                .unwrap();
        }
        s.seal_level().unwrap();
        assert!(s.segment_count() <= 4, "got {} segments", s.segment_count());
        // Spot-check a cold read.
        let phase = s.begin_read_phase();
        s.end_read_phase(phase); // evicts everything idle
        assert_eq!(
            *s.get(AttrSet::from_bits(1500 + 1)).unwrap(),
            sample(1500 % 50)
        );
    }

    #[test]
    fn removing_all_keys_reaps_segments() {
        let mut s = SegmentStore::new(1 << 16).unwrap();
        let keys: Vec<AttrSet> = (0..100u32)
            .map(|i| AttrSet::from_bits(u64::from(i) + 1))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32 % 10)).unwrap();
        }
        s.seal_level().unwrap();
        for &k in &keys {
            s.remove(k);
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.segment_count(), 0, "dead sealed segments are reaped");
    }

    #[test]
    fn snapshot_pin_defers_segment_reaping() {
        let mut s = SegmentStore::new(1 << 20).unwrap();
        let keys: Vec<AttrSet> = (0..4).map(AttrSet::singleton).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32)).unwrap();
        }
        s.seal_level().unwrap();
        let path = s.segment_path(0);

        // A phase is open: removing every key dooms the segment but must
        // not delete the file a concurrent reader could still touch.
        let phase = s.begin_read_phase();
        let pinned = s.get(keys[0]).unwrap();
        for &k in &keys {
            s.remove(k);
        }
        assert!(path.exists(), "doomed segment survives the open phase");
        assert_eq!(s.segment_count(), 0, "but it is no longer live");
        assert_eq!(*pinned, sample(0), "pinned data stays readable");

        // Phase ends: the next writer-side call reaps it.
        s.end_read_phase(phase);
        s.seal_level().unwrap();
        assert!(!path.exists(), "doomed segment reaped after the phase");
    }

    #[test]
    fn read_phase_pins_fetches_until_end() {
        let mut s = SegmentStore::new(0).unwrap(); // zero budget
        let key = AttrSet::singleton(7);
        s.put(key, sample(3)).unwrap();
        flush_all(&mut s);
        assert_eq!(s.resident_bytes(), 0);

        let phase = s.begin_read_phase();
        let _ = s.get(key).unwrap();
        let _ = s.get(key).unwrap();
        assert_eq!(s.disk_reads(), 1, "second fetch hits the pinned entry");
        assert!(s.resident_bytes() > 0, "pinned over a zero budget");
        assert_eq!(s.snapshot_pins(), 1);
        s.end_read_phase(phase);
        assert_eq!(s.resident_bytes(), 0, "phase end evicts to budget");
    }

    #[test]
    fn handle_cache_stays_bounded() {
        let mut s = SegmentStore::new(0).unwrap();
        // One segment per seal: far more segments than handle slots.
        let n = HANDLE_CACHE_CAP + 8;
        let keys: Vec<AttrSet> = (0..n as u32)
            .map(|i| AttrSet::from_bits(u64::from(i) + 1))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32 % 10)).unwrap();
            s.seal_level().unwrap();
        }
        assert_eq!(s.segment_count(), n);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*s.get(k).unwrap(), sample(i as u32 % 10));
        }
        assert!(
            s.open_handles() <= HANDLE_CACHE_CAP,
            "{} handles open",
            s.open_handles()
        );
    }

    #[test]
    fn quota_rejects_writes_past_the_limit() {
        let quota = Arc::new(DiskQuota::new(256));
        let mut s = SegmentStore::with_quota(1 << 20, quota.clone()).unwrap();
        let mut hit_limit = false;
        for i in 0..64u32 {
            match s.put(AttrSet::from_bits(u64::from(i) + 1), sample(i)) {
                Ok(()) => assert!(quota.used() <= quota.limit()),
                Err(StoreError::QuotaExceeded { need, used, limit }) => {
                    assert_eq!(limit, 256);
                    assert!(used + need > limit);
                    hit_limit = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_limit, "a 256-byte quota must reject some write");
        let used_before_drop = quota.used();
        assert!(used_before_drop > 0);
        drop(s);
        assert_eq!(quota.used(), 0, "drop releases every charged byte");
    }

    #[test]
    fn quota_error_display_names_the_quota() {
        let e = StoreError::QuotaExceeded {
            need: 100,
            used: 200,
            limit: 256,
        };
        let text = e.to_string();
        assert!(text.contains("disk quota exceeded"), "{text}");
    }

    #[test]
    fn stores_are_interchangeable_through_the_trait() {
        fn exercise(store: &mut dyn PartitionStore) {
            let k1 = AttrSet::singleton(1);
            let k2 = AttrSet::from_indices([1, 2]);
            store.put(k1, sample(1)).unwrap();
            store.put(k2, sample(2)).unwrap();
            store.seal_level().unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(*store.get(k1).unwrap(), sample(1));
            assert_eq!(*store.get(k2).unwrap(), sample(2));
            assert_eq!(store.elements_hint(k1), Some(sample(1).num_elements()));
            assert_eq!(store.elements_hint(AttrSet::singleton(60)), None);
            store.remove(k1);
            assert_eq!(store.len(), 1);
        }
        exercise(&mut MemoryStore::new());
        exercise(&mut SegmentStore::new(1 << 20).unwrap());
    }

    #[test]
    fn error_display() {
        let e = StoreError::Missing {
            key: AttrSet::singleton(3),
        };
        assert!(e.to_string().contains("{3}"));
        let e = StoreError::Corrupt {
            key: AttrSet::empty(),
            message: "x".into(),
        };
        assert!(e.to_string().contains("corrupt"));
    }
}
