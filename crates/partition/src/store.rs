//! Partition stores: where level-(ℓ−1) partitions live between levels.
//!
//! The paper ships two implementations (Section 7): **TANE/MEM** keeps every
//! partition in main memory, while the scalable **TANE** "keeps most of the
//! partitions on disk" (Section 6: *O(s) disk accesses of size O(|r|)*,
//! *disk space O(s_max·|r|)*). [`PartitionStore`] abstracts over the two so
//! the search algorithm is written once:
//!
//! * [`MemoryStore`] — a hash map; the TANE/MEM behaviour.
//! * [`DiskStore`] — spills partitions into append-only *segment files*
//!   (one sequential write per partition, many partitions per file), keeps
//!   a bounded LRU cache of hot partitions in memory, and deletes a segment
//!   file as soon as all of its partitions have been removed — so disk
//!   space tracks the live levels (`O(s_max·|r|)`), matching the paper's
//!   accounting. A lattice can hold hundreds of thousands of nodes; one
//!   file per partition would drown in filesystem metadata, which is why
//!   segments exist.
//!
//! Partitions are handed out as `Arc<StrippedPartition>` so a cached
//! partition can be used for several products without copies.

use crate::stripped::StrippedPartition;
use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tane_util::{AttrSet, FxHashMap};

/// Errors from partition stores (only the disk store can fail).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A spilled partition failed validation when read back.
    Corrupt {
        /// The attribute set whose record is damaged.
        key: AttrSet,
        /// Description of the corruption.
        message: String,
    },
    /// `get` was called for a key that was never `put` (or was removed).
    Missing {
        /// The requested attribute set.
        key: AttrSet,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "partition store I/O error: {e}"),
            StoreError::Corrupt { key, message } => {
                write!(f, "corrupt partition record for {key:?}: {message}")
            }
            StoreError::Missing { key } => write!(f, "no partition stored for {key:?}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Storage for the partitions of one lattice level.
pub trait PartitionStore {
    /// Stores the partition for `key`, replacing any previous one.
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError>;

    /// Retrieves the partition for `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Missing`] if the key is not present;
    /// [`StoreError::Io`]/[`StoreError::Corrupt`] from the disk store.
    fn get(&mut self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError>;

    /// Drops the partition for `key` (no-op if absent). Used when a level
    /// has been fully processed and its partitions are no longer needed.
    fn remove(&mut self, key: AttrSet);

    /// Number of partitions currently stored.
    fn len(&self) -> usize;

    /// `true` iff nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of partition payload currently resident in main memory.
    fn resident_bytes(&self) -> usize;
}

/// The TANE/MEM store: everything in a hash map.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: FxHashMap<AttrSet, Arc<StrippedPartition>>,
    bytes: usize,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl PartitionStore for MemoryStore {
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError> {
        let size = partition.size_bytes();
        if let Some(old) = self.map.insert(key, Arc::new(partition)) {
            self.bytes -= old.size_bytes();
        }
        self.bytes += size;
        Ok(())
    }

    fn get(&mut self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError> {
        self.map
            .get(&key)
            .cloned()
            .ok_or(StoreError::Missing { key })
    }

    fn remove(&mut self, key: AttrSet) {
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.size_bytes();
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn resident_bytes(&self) -> usize {
        self.bytes
    }
}

/// Monotone counter used to give each `DiskStore` a unique directory.
static DISK_STORE_ID: AtomicU64 = AtomicU64::new(0);

/// Rotate to a fresh segment file once the active one exceeds this size.
const SEGMENT_ROTATE_BYTES: u64 = 32 << 20;

/// Location of one spilled partition.
#[derive(Debug, Clone, Copy)]
struct EntryLoc {
    segment: u32,
    offset: u64,
}

/// One closed or active segment file.
#[derive(Debug)]
struct Segment {
    path: PathBuf,
    /// Keys still pointing into this segment; the file is deleted at zero.
    live: usize,
    /// Lazily opened read handle.
    reader: Option<fs::File>,
}

/// The scalable-TANE store: sequential segment files + bounded LRU cache.
///
/// Record format (little-endian): magic `b"TANE"`, `u32 n_rows`,
/// `u32 n_classes`, `u32 n_elements`, the class sizes (`n_classes` × u32),
/// the `elements` array (`n_elements` × u32). Records are self-delimiting,
/// so a segment is just a concatenation of records.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    owns_dir: bool,
    /// Active segment id; its writer stays open and buffered.
    active_id: u32,
    active_writer: Option<io::BufWriter<fs::File>>,
    active_bytes: u64,
    /// Whether the active writer has unflushed bytes (reads must flush).
    active_dirty: bool,
    segments: FxHashMap<u32, Segment>,
    index: FxHashMap<AttrSet, EntryLoc>,
    /// Hot cache: key → (partition, last-use tick).
    cache: FxHashMap<AttrSet, (Arc<StrippedPartition>, u64)>,
    /// Eviction order: tick → key (ticks are unique).
    lru: std::collections::BTreeMap<u64, AttrSet>,
    cache_bytes: usize,
    cache_budget: usize,
    tick: u64,
    /// Reusable record buffer for serialization.
    scratch: Vec<u8>,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
}

impl DiskStore {
    /// Creates a disk store in a fresh temporary directory, keeping at most
    /// `cache_budget_bytes` of partitions resident.
    pub fn new(cache_budget_bytes: usize) -> Result<DiskStore, StoreError> {
        let id = DISK_STORE_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("tane-partitions-{}-{}", std::process::id(), id));
        Self::create(dir, cache_budget_bytes, true)
    }

    /// Creates a disk store in a caller-managed directory (not removed on
    /// drop).
    pub fn in_dir(dir: PathBuf, cache_budget_bytes: usize) -> Result<DiskStore, StoreError> {
        Self::create(dir, cache_budget_bytes, false)
    }

    fn create(
        dir: PathBuf,
        cache_budget_bytes: usize,
        owns_dir: bool,
    ) -> Result<DiskStore, StoreError> {
        fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            owns_dir,
            active_id: 0,
            active_writer: None,
            active_bytes: 0,
            active_dirty: false,
            segments: FxHashMap::default(),
            index: FxHashMap::default(),
            cache: FxHashMap::default(),
            lru: std::collections::BTreeMap::new(),
            cache_bytes: 0,
            cache_budget: cache_budget_bytes,
            tick: 0,
            scratch: Vec::new(),
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
        })
    }

    /// Number of partition records read back from disk so far.
    pub fn disk_reads(&self) -> u64 {
        self.reads
    }

    /// Number of partition records written so far.
    pub fn disk_writes(&self) -> u64 {
        self.writes
    }

    /// Bytes of partition records read back from disk so far.
    pub fn disk_bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes of partition records spilled to disk so far.
    pub fn disk_bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of segment files currently on disk.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn segment_path(&self, id: u32) -> PathBuf {
        self.dir.join(format!("segment-{id:06}.tane"))
    }

    fn ensure_active_writer(&mut self) -> Result<(), StoreError> {
        if self.active_writer.is_none() {
            let path = self.segment_path(self.active_id);
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            self.segments.insert(
                self.active_id,
                Segment {
                    path,
                    live: 0,
                    reader: None,
                },
            );
            self.active_writer = Some(io::BufWriter::new(file));
            self.active_bytes = 0;
        }
        Ok(())
    }

    fn rotate_if_needed(&mut self) -> Result<(), StoreError> {
        if self.active_bytes >= SEGMENT_ROTATE_BYTES {
            if let Some(mut w) = self.active_writer.take() {
                w.flush()?;
            }
            self.active_dirty = false;
            self.active_id += 1;
            self.active_bytes = 0;
            // If the finished segment already has no live entries, reap it.
            let finished = self.active_id - 1;
            self.reap_if_dead(finished);
        }
        Ok(())
    }

    fn reap_if_dead(&mut self, id: u32) {
        // Never reap the segment the writer is currently appending to.
        if id == self.active_id && self.active_writer.is_some() {
            return;
        }
        if let Some(seg) = self.segments.get(&id) {
            if seg.live == 0 {
                let path = seg.path.clone();
                self.segments.remove(&id);
                let _ = fs::remove_file(path);
            }
        }
    }

    fn touch(&mut self, key: AttrSet) {
        self.tick += 1;
        if let Some(entry) = self.cache.get_mut(&key) {
            self.lru.remove(&entry.1);
            entry.1 = self.tick;
            self.lru.insert(self.tick, key);
        }
    }

    fn insert_cached(&mut self, key: AttrSet, partition: Arc<StrippedPartition>) {
        self.tick += 1;
        let size = partition.size_bytes();
        if let Some((old, old_tick)) = self.cache.insert(key, (partition, self.tick)) {
            self.cache_bytes -= old.size_bytes();
            self.lru.remove(&old_tick);
        }
        self.lru.insert(self.tick, key);
        self.cache_bytes += size;
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.cache_bytes > self.cache_budget && self.cache.len() > 1 {
            let (&tick, &coldest) = self.lru.iter().next().expect("lru tracks the cache");
            self.lru.remove(&tick);
            if let Some((old, _)) = self.cache.remove(&coldest) {
                self.cache_bytes -= old.size_bytes();
            }
        }
    }

    fn serialize_record(scratch: &mut Vec<u8>, partition: &StrippedPartition) {
        scratch.clear();
        scratch.extend_from_slice(b"TANE");
        scratch.extend_from_slice(&(partition.n_rows() as u32).to_le_bytes());
        scratch.extend_from_slice(&(partition.num_classes() as u32).to_le_bytes());
        scratch.extend_from_slice(&(partition.num_elements() as u32).to_le_bytes());
        for class in partition.classes() {
            scratch.extend_from_slice(&(class.len() as u32).to_le_bytes());
        }
        for class in partition.classes() {
            for &row in class {
                scratch.extend_from_slice(&row.to_le_bytes());
            }
        }
    }

    fn read_record(&mut self, key: AttrSet) -> Result<StrippedPartition, StoreError> {
        let loc = *self.index.get(&key).ok_or(StoreError::Missing { key })?;
        // Reads from the active segment must see buffered writes.
        if loc.segment == self.active_id && self.active_dirty {
            if let Some(w) = self.active_writer.as_mut() {
                w.flush()?;
            }
            self.active_dirty = false;
        }
        let seg = self
            .segments
            .get_mut(&loc.segment)
            .ok_or(StoreError::Missing { key })?;
        if seg.reader.is_none() {
            seg.reader = Some(fs::File::open(&seg.path)?);
        }
        let r = seg.reader.as_mut().expect("opened above");
        r.seek(SeekFrom::Start(loc.offset))?;

        let mut header = [0u8; 16];
        r.read_exact(&mut header)?;
        if &header[0..4] != b"TANE" {
            return Err(StoreError::Corrupt {
                key,
                message: "bad magic".into(),
            });
        }
        let n_rows = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let n_classes = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
        let n_elements = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes")) as usize;
        let mut sizes = vec![0u8; n_classes * 4];
        r.read_exact(&mut sizes)?;
        let mut begins = Vec::with_capacity(n_classes + 1);
        begins.push(0u32);
        let mut acc = 0u32;
        for chunk in sizes.chunks_exact(4) {
            let size = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if size < 2 {
                return Err(StoreError::Corrupt {
                    key,
                    message: "class of size < 2".into(),
                });
            }
            acc = acc.checked_add(size).ok_or_else(|| StoreError::Corrupt {
                key,
                message: "element count overflow".into(),
            })?;
            begins.push(acc);
        }
        if acc as usize != n_elements {
            return Err(StoreError::Corrupt {
                key,
                message: format!("class sizes sum to {acc}, header says {n_elements}"),
            });
        }
        let mut raw = vec![0u8; n_elements * 4];
        r.read_exact(&mut raw)?;
        let mut elements = Vec::with_capacity(n_elements);
        for chunk in raw.chunks_exact(4) {
            let e = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
            if e as usize >= n_rows {
                return Err(StoreError::Corrupt {
                    key,
                    message: "row index out of range".into(),
                });
            }
            elements.push(e);
        }
        self.reads += 1;
        self.bytes_read += (16 + sizes.len() + raw.len()) as u64;
        Ok(StrippedPartition::from_parts(n_rows, elements, begins))
    }
}

impl PartitionStore for DiskStore {
    fn put(&mut self, key: AttrSet, partition: StrippedPartition) -> Result<(), StoreError> {
        // Replacing a key: release its old location first.
        if let Some(old) = self.index.remove(&key) {
            if let Some(seg) = self.segments.get_mut(&old.segment) {
                seg.live -= 1;
            }
            self.reap_if_dead(old.segment);
        }

        self.ensure_active_writer()?;
        let mut scratch = std::mem::take(&mut self.scratch);
        Self::serialize_record(&mut scratch, &partition);
        let offset = self.active_bytes;
        let writer = self.active_writer.as_mut().expect("ensured above");
        writer.write_all(&scratch)?;
        self.active_bytes += scratch.len() as u64;
        self.active_dirty = true;
        self.bytes_written += scratch.len() as u64;
        self.scratch = scratch;
        self.writes += 1;

        self.index.insert(
            key,
            EntryLoc {
                segment: self.active_id,
                offset,
            },
        );
        self.segments
            .get_mut(&self.active_id)
            .expect("active segment registered")
            .live += 1;
        self.insert_cached(key, Arc::new(partition));
        self.rotate_if_needed()?;
        Ok(())
    }

    fn get(&mut self, key: AttrSet) -> Result<Arc<StrippedPartition>, StoreError> {
        if self.cache.contains_key(&key) {
            self.touch(key);
            return Ok(self.cache[&key].0.clone());
        }
        if !self.index.contains_key(&key) {
            return Err(StoreError::Missing { key });
        }
        let partition = Arc::new(self.read_record(key)?);
        self.insert_cached(key, partition.clone());
        Ok(partition)
    }

    fn remove(&mut self, key: AttrSet) {
        if let Some((old, tick)) = self.cache.remove(&key) {
            self.cache_bytes -= old.size_bytes();
            self.lru.remove(&tick);
        }
        if let Some(loc) = self.index.remove(&key) {
            if let Some(seg) = self.segments.get_mut(&loc.segment) {
                seg.live -= 1;
            }
            self.reap_if_dead(loc.segment);
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn resident_bytes(&self) -> usize {
        self.cache_bytes
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        self.active_writer = None; // close before deleting
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        } else {
            // Caller-managed directory: still reap our segment files.
            // lint:allow(determinism): deletion order of doomed temp files
            // is unobservable in any result.
            for seg in self.segments.values() {
                let _ = fs::remove_file(&seg.path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32) -> StrippedPartition {
        // Distinct partitions: classes {0,1} and {2,3,…,i+3}.
        let mut elements = vec![0, 1];
        elements.extend(2..(i + 4));
        let begins = vec![0, 2, elements.len() as u32];
        StrippedPartition::from_parts(1000, elements, begins)
    }

    #[test]
    fn memory_store_roundtrip() {
        let mut s = MemoryStore::new();
        let key = AttrSet::from_indices([0, 2]);
        s.put(key, sample(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.resident_bytes() > 0);
        let got = s.get(key).unwrap();
        assert_eq!(*got, sample(1));
        assert!(matches!(
            s.get(AttrSet::singleton(5)),
            Err(StoreError::Missing { .. })
        ));
        s.remove(key);
        assert!(s.is_empty());
        assert_eq!(s.resident_bytes(), 0);
        s.remove(key); // double remove is a no-op
    }

    #[test]
    fn memory_store_replace_updates_bytes() {
        let mut s = MemoryStore::new();
        let key = AttrSet::singleton(0);
        s.put(key, sample(100)).unwrap();
        let big = s.resident_bytes();
        s.put(key, sample(1)).unwrap();
        assert!(s.resident_bytes() < big);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disk_store_roundtrip() {
        let mut s = DiskStore::new(1 << 20).unwrap();
        let key = AttrSet::from_indices([1, 3, 5]);
        let p = sample(7);
        s.put(key, p.clone()).unwrap();
        let got = s.get(key).unwrap();
        assert_eq!(*got, p);
        assert_eq!(s.len(), 1);
        s.remove(key);
        assert!(matches!(s.get(key), Err(StoreError::Missing { .. })));
    }

    #[test]
    fn disk_store_evicts_and_reloads() {
        // Budget fits ~1 partition; storing several forces eviction, and
        // get() must transparently reload from disk.
        let one = sample(0).size_bytes();
        let mut s = DiskStore::new(one + 8).unwrap();
        let keys: Vec<AttrSet> = (0..6).map(AttrSet::singleton).collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32)).unwrap();
        }
        assert!(
            s.resident_bytes() <= 2 * one + 64,
            "cache should stay near budget"
        );
        assert_eq!(s.disk_writes(), 6);
        // All six must still be retrievable, identical to what was stored.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(*s.get(k).unwrap(), sample(i as u32), "key {i}");
        }
        assert!(s.disk_reads() >= 4, "cold keys must be read from disk");
    }

    #[test]
    fn disk_store_cache_hit_avoids_read() {
        let mut s = DiskStore::new(1 << 24).unwrap();
        let key = AttrSet::singleton(9);
        s.put(key, sample(3)).unwrap();
        let _ = s.get(key).unwrap();
        let _ = s.get(key).unwrap();
        assert_eq!(s.disk_reads(), 0, "hot key must be served from cache");
    }

    #[test]
    fn disk_store_replacing_a_key_keeps_latest() {
        let mut s = DiskStore::new(0).unwrap();
        let key = AttrSet::singleton(2);
        s.put(key, sample(1)).unwrap();
        s.put(key, sample(9)).unwrap();
        s.cache.clear();
        s.lru.clear();
        s.cache_bytes = 0;
        assert_eq!(*s.get(key).unwrap(), sample(9));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn disk_store_detects_corruption() {
        let mut s = DiskStore::new(0).unwrap(); // zero budget: minimal caching
        let key = AttrSet::singleton(1);
        s.put(key, sample(2)).unwrap();
        // Purge the cache entry, then stomp the segment file.
        s.cache.clear();
        s.lru.clear();
        s.cache_bytes = 0;
        let path = s.segment_path(s.active_id);
        s.active_writer = None; // close the writer so the stomp wins
        fs::write(&path, vec![0u8; 64]).unwrap();
        assert!(matches!(s.get(key), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn disk_store_cleans_up_directory() {
        let dir;
        {
            let mut s = DiskStore::new(1 << 20).unwrap();
            s.put(AttrSet::singleton(0), sample(0)).unwrap();
            dir = s.dir.clone();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "owned temp dir must be removed on drop");
    }

    #[test]
    fn in_dir_store_keeps_directory_but_reaps_segments() {
        let dir = std::env::temp_dir().join(format!("tane-test-keep-{}", std::process::id()));
        {
            let mut s = DiskStore::in_dir(dir.clone(), 1 << 20).unwrap();
            s.put(AttrSet::singleton(0), sample(0)).unwrap();
        }
        assert!(dir.exists(), "caller-managed dir must survive");
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            0,
            "segments must be reaped"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn many_partitions_share_few_segment_files() {
        let mut s = DiskStore::new(1 << 16).unwrap();
        for i in 0..2000u32 {
            s.put(AttrSet::from_bits(u64::from(i) + 1), sample(i % 50))
                .unwrap();
        }
        assert!(s.segment_count() <= 4, "got {} segments", s.segment_count());
        // Spot-check a cold read.
        s.cache.clear();
        s.lru.clear();
        s.cache_bytes = 0;
        assert_eq!(
            *s.get(AttrSet::from_bits(1500 + 1)).unwrap(),
            sample(1500 % 50)
        );
    }

    #[test]
    fn removing_all_keys_reaps_segments() {
        let mut s = DiskStore::new(1 << 16).unwrap();
        let keys: Vec<AttrSet> = (0..100u32)
            .map(|i| AttrSet::from_bits(u64::from(i) + 1))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            s.put(k, sample(i as u32 % 10)).unwrap();
        }
        for &k in &keys {
            s.remove(k);
        }
        assert_eq!(s.len(), 0);
        // The active segment may linger until rotation; everything else is
        // gone. At most one file remains.
        assert!(s.segment_count() <= 1, "got {} segments", s.segment_count());
    }

    #[test]
    fn stores_are_interchangeable_through_the_trait() {
        fn exercise(store: &mut dyn PartitionStore) {
            let k1 = AttrSet::singleton(1);
            let k2 = AttrSet::from_indices([1, 2]);
            store.put(k1, sample(1)).unwrap();
            store.put(k2, sample(2)).unwrap();
            assert_eq!(store.len(), 2);
            assert_eq!(*store.get(k1).unwrap(), sample(1));
            assert_eq!(*store.get(k2).unwrap(), sample(2));
            store.remove(k1);
            assert_eq!(store.len(), 1);
        }
        exercise(&mut MemoryStore::new());
        exercise(&mut DiskStore::new(1 << 20).unwrap());
    }

    #[test]
    fn error_display() {
        let e = StoreError::Missing {
            key: AttrSet::singleton(3),
        };
        assert!(e.to_string().contains("{3}"));
        let e = StoreError::Corrupt {
            key: AttrSet::empty(),
            message: "x".into(),
        };
        assert!(e.to_string().contains("corrupt"));
    }
}
