#![forbid(unsafe_code)]
//! # Incremental discovery: LSM-style row deltas with merge-and-reverify
//!
//! The batch crates answer "what are the dependencies of *this* relation";
//! this crate answers "the relation just changed — what are they *now*",
//! without paying for a cold search. The design (DESIGN §11) is an LSM
//! analogy:
//!
//! * the **write path** is [`tane_relation::DeltaStore`] — appended rows
//!   and deleted row indices buffered against a checkpoint, with stable
//!   dictionary codes;
//! * the **flush** is tracker synchronization: per-lattice-node label
//!   vectors ([`tracker::NodeTracker`]) absorb the buffered delta in
//!   `O(rows + delta)` per node, bottom-up so parents feed children;
//! * the **read path** is merge-and-reverify ([`DatasetEngine`]): the core
//!   search re-runs on the merged relation, but every lattice node with a
//!   current tracker gets its stripped partition *supplied*
//!   ([`tane_core::ReverifyHooks`]) instead of recomputed via Lemma 3
//!   products — the dominant cost of a TANE run.
//!
//! Results are **byte-identical** to a cold run on the equivalent static
//! relation, at any thread count: supplied partitions equal producted ones
//! as sets of classes, every partition consumer in the core is
//! class-order-insensitive, and the engine syncs and supplies in
//! deterministic lattice order on the driver thread.

pub mod engine;
pub mod tracker;

pub use engine::{DatasetEngine, EngineLimits, PatchError, PatchOutcome};
pub use tracker::NodeTracker;
