//! Incremental partition trackers: label vectors maintained per lattice
//! node across row deltas.
//!
//! A [`NodeTracker`] for an attribute set `X` holds one **label** per
//! current row such that two rows agree on every attribute of `X` iff
//! their labels are equal — the equivalence-class structure of `π_X`
//! without any ordering or class materialization. Labels are *stable*:
//! a row's label never changes while the row lives, and a (parent-label,
//! parent-label) pair always maps to the same label via the memoized
//! `pair_map`. Stability is what makes the two delta operations cheap and
//! deterministic:
//!
//! * **delete** — compact the label vector by the store's survivor map;
//!   surviving rows keep their labels (`O(rows)`).
//! * **append** — classify each new row from its parents' labels with one
//!   hash lookup (`O(delta)`), allocating a fresh label on a never-seen
//!   pair. Parents are updated first (the engine walks trackers in
//!   lattice order), so their labels are already current.
//!
//! [`NodeTracker::to_stripped`] then emits a [`StrippedPartition`] whose
//! *set of classes* equals the Lemma 3 product of the parents — classes
//! appear in first-occurrence order rather than the product's order, but
//! every consumer in `tane-core` (error counts, superkey tests, `g3`,
//! refinement checks, further products) is class-order-insensitive, which
//! is the basis of the byte-identical re-verify guarantee (DESIGN §11).

use tane_partition::StrippedPartition;
use tane_relation::DeltaView;
use tane_util::{AttrSet, FxHashMap};

/// Incremental partition state for one lattice node (see module docs).
#[derive(Debug, Clone)]
pub struct NodeTracker {
    set: AttrSet,
    parent_a: AttrSet,
    parent_b: AttrSet,
    /// One label per current row; equal labels ⇔ rows agree on `set`.
    labels: Vec<u32>,
    /// `(label_a << 32) | label_b` of the parents → this node's label.
    /// Never shrinks; entries for dead pairs are harmless.
    pair_map: FxHashMap<u64, u32>,
    next_label: u32,
}

impl NodeTracker {
    /// Builds a fresh tracker for `set` by composing its parents' current
    /// label vectors (which must be same-generation and equal-length).
    /// Returns `None` on label overflow (more than `u32::MAX` distinct
    /// pairs ever seen — such a node is not worth tracking).
    pub fn compose(
        set: AttrSet,
        parent_a: AttrSet,
        parent_b: AttrSet,
        pa: &[u32],
        pb: &[u32],
    ) -> Option<NodeTracker> {
        debug_assert_eq!(pa.len(), pb.len());
        let mut t = NodeTracker {
            set,
            parent_a,
            parent_b,
            labels: Vec::with_capacity(pa.len()),
            pair_map: FxHashMap::default(),
            next_label: 0,
        };
        for (&la, &lb) in pa.iter().zip(pb) {
            let l = t.classify(la, lb)?;
            t.labels.push(l);
        }
        Some(t)
    }

    /// The tracked attribute set.
    pub fn set(&self) -> AttrSet {
        self.set
    }

    /// The join parents whose labels feed [`update`](NodeTracker::update).
    pub fn parents(&self) -> (AttrSet, AttrSet) {
        (self.parent_a, self.parent_b)
    }

    /// The current label vector (one entry per row).
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Rows currently tracked.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Approximate heap footprint, for the engine's tracking budget.
    pub fn size_bytes(&self) -> usize {
        self.labels.len() * 4 + self.pair_map.len() * 16
    }

    /// Applies the composed delta since the last sync: drops deleted rows
    /// by `view`'s survivor map and classifies appended rows from the
    /// parents' **already-updated** labels `pa`/`pb` (current generation,
    /// one per current row). Returns `false` on label overflow, in which
    /// case the tracker must be discarded.
    pub fn update(&mut self, view: &DeltaView, pa: &[u32], pb: &[u32]) -> bool {
        debug_assert_eq!(self.labels.len(), view.checkpoint_rows);
        debug_assert_eq!(pa.len(), pb.len());
        debug_assert!(view.survivors.len() <= pa.len());
        let mut next = Vec::with_capacity(pa.len());
        for &orig in &view.survivors {
            next.push(self.labels[orig as usize]);
        }
        for i in view.survivors.len()..pa.len() {
            match self.classify(pa[i], pb[i]) {
                Some(l) => next.push(l),
                None => return false,
            }
        }
        self.labels = next;
        true
    }

    /// The stable label for a parent-label pair, allocating on first sight.
    fn classify(&mut self, la: u32, lb: u32) -> Option<u32> {
        let key = (u64::from(la) << 32) | u64::from(lb);
        if let Some(&l) = self.pair_map.get(&key) {
            return Some(l);
        }
        let l = self.next_label;
        self.next_label = self.next_label.checked_add(1)?;
        self.pair_map.insert(key, l);
        Some(l)
    }

    /// Emits the node's stripped partition: classes of size ≥ 2, in
    /// first-occurrence order, rows ascending within each class. Equal as
    /// a set of classes to the Lemma 3 product of the parents' partitions.
    pub fn to_stripped(&self) -> StrippedPartition {
        let n = self.labels.len();
        // Dense class ids in first-occurrence order, plus per-class counts.
        let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
        let mut counts: Vec<u32> = Vec::new();
        let mut ids: Vec<u32> = Vec::with_capacity(n);
        for &l in &self.labels {
            let id = *dense.entry(l).or_insert_with(|| {
                counts.push(0);
                (counts.len() - 1) as u32
            });
            counts[id as usize] += 1;
            ids.push(id);
        }
        // Lay out only the classes of size ≥ 2 (stripping, Section 2).
        let kept: usize = counts
            .iter()
            .map(|&c| if c >= 2 { c as usize } else { 0 })
            .sum();
        let mut begins = Vec::new();
        let mut cursor = vec![u32::MAX; counts.len()];
        let mut pos = 0u32;
        for (id, &c) in counts.iter().enumerate() {
            if c >= 2 {
                begins.push(pos);
                cursor[id] = pos;
                pos += c;
            }
        }
        begins.push(pos);
        let mut elements = vec![0u32; kept];
        for (row, &id) in ids.iter().enumerate() {
            let slot = &mut cursor[id as usize];
            if *slot != u32::MAX {
                elements[*slot as usize] = row as u32;
                *slot += 1;
            }
        }
        StrippedPartition::from_parts(n, elements, begins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical form for comparing partitions as sets of classes.
    fn class_sets(p: &StrippedPartition) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = p.classes().map(|c| c.to_vec()).collect();
        out.sort();
        out
    }

    #[test]
    fn compose_matches_column_product() {
        // Two "columns" as label vectors; the tracker over both must give
        // the intersection partition.
        let a = [0u32, 0, 1, 1, 0, 2];
        let b = [5u32, 5, 5, 9, 9, 9];
        let t = NodeTracker::compose(
            AttrSet::from_indices([0, 1]),
            AttrSet::singleton(0),
            AttrSet::singleton(1),
            &a,
            &b,
        )
        .unwrap();
        // Classes: {0,1} (0/5); rows 2,3,4,5 are singletons.
        assert_eq!(class_sets(&t.to_stripped()), vec![vec![0, 1]]);
    }

    #[test]
    fn update_is_delete_then_append() {
        let a = [0u32, 0, 1, 1];
        let b = [7u32, 7, 7, 7];
        let mut t = NodeTracker::compose(
            AttrSet::from_indices([0, 1]),
            AttrSet::singleton(0),
            AttrSet::singleton(1),
            &a,
            &b,
        )
        .unwrap();
        // Delete row 1; append two rows agreeing with old rows 0 and 2.
        let view = DeltaView {
            survivors: vec![0, 2, 3],
            checkpoint_rows: 4,
        };
        let a2 = [0u32, 1, 1, 0, 1];
        let b2 = [7u32, 7, 7, 7, 7];
        assert!(t.update(&view, &a2, &b2));
        assert_eq!(t.n_rows(), 5);
        // Rows {0,3} share (0,7); rows {1,2,4} share (1,7).
        assert_eq!(
            class_sets(&t.to_stripped()),
            vec![vec![0, 3], vec![1, 2, 4]]
        );
    }

    #[test]
    fn labels_are_stable_across_delete_and_reappend() {
        let a = [3u32, 4, 3];
        let b = [1u32, 1, 1];
        let mut t = NodeTracker::compose(
            AttrSet::from_indices([0, 1]),
            AttrSet::singleton(0),
            AttrSet::singleton(1),
            &a,
            &b,
        )
        .unwrap();
        let label_pair_3_1 = t.labels()[0];
        // Delete every (3,1) row, then append one again.
        let view = DeltaView {
            survivors: vec![1],
            checkpoint_rows: 3,
        };
        assert!(t.update(&view, &[4, 3], &[1, 1]));
        assert_eq!(
            t.labels()[1],
            label_pair_3_1,
            "a re-appended pair maps to its old label via pair_map"
        );
    }

    #[test]
    fn stripped_rows_ascend_within_classes() {
        let a = [0u32, 1, 0, 1, 0];
        let b = [0u32; 5];
        let t = NodeTracker::compose(
            AttrSet::from_indices([0, 1]),
            AttrSet::singleton(0),
            AttrSet::singleton(1),
            &a,
            &b,
        )
        .unwrap();
        let p = t.to_stripped();
        assert_eq!(p.n_rows(), 5);
        for c in p.classes() {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(class_sets(&p), vec![vec![0, 2, 4], vec![1, 3]]);
    }
}
