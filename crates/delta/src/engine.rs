//! The per-dataset incremental discovery engine.
//!
//! A [`DatasetEngine`] owns a [`DeltaStore`] (the mutable row storage, the
//! LSM write path), the materialized merged [`Relation`] of the current
//! generation, and a set of [`NodeTracker`]s — one per lattice node the
//! last discovery run visited. The lifecycle per operation:
//!
//! * **patch** — validate against the per-patch row cap, auto-sync the
//!   trackers when the delta buffer would overflow its bound (the LSM
//!   "flush"), apply the patch to the store, re-materialize the merged
//!   relation. The content hash changes with every effective patch, which
//!   is what drives the server's cache invalidation.
//! * **discover** — sync trackers to the current generation, then run the
//!   core search via [`ReverifyHooks`]: every next-level candidate whose
//!   node has a current tracker gets its partition *supplied* (counted in
//!   [`TaneStats::partitions_supplied`]) instead of producted; only nodes
//!   whose inputs actually changed — appended/deleted rows always touch
//!   every partition, but **new lattice nodes** (first discovery, changed
//!   pruning) — pay the full product. After the run the tracker set is
//!   rebuilt to exactly the visited nodes, in visited (lattice) order,
//!   within the byte budget.
//!
//! Both operations serialize on one mutex: a discovery runs against a
//! coherent generation, and a patch never mutates rows under a running
//! search. Determinism: syncing walks trackers in (level, bits) order,
//! supply happens on the core driver thread in exact candidate order, and
//! supplied partitions equal the producted ones as sets of classes — so
//! incremental output is byte-identical to a cold run on the merged
//! relation at any thread count (proved by `tests/incremental_determinism`).

use std::sync::{Arc, Mutex};

use crate::tracker::NodeTracker;
use tane_core::{
    reverify_approx_fds_with, reverify_fds_with, ApproxTaneConfig, LevelEvent, NextLevelCandidate,
    ReverifyHooks, TaneConfig, TaneError, TaneResult,
};
use tane_partition::StrippedPartition;
use tane_relation::{DeltaStore, NullSemantics, Relation, RelationError, RowPatch};
use tane_util::{AttrSet, FxHashMap, FxHashSet};

/// Bounds on the engine's mutable state.
#[derive(Debug, Clone)]
pub struct EngineLimits {
    /// Most rows (appends + deletes) a single patch may touch; larger
    /// patches are refused (the server maps this to HTTP 413).
    pub max_patch_rows: usize,
    /// Delta-buffer bound: when a patch would push the buffered row count
    /// (appends + deletes since the last sync) past this, the engine
    /// syncs its trackers first, emptying the buffer.
    pub max_buffered_rows: usize,
    /// Approximate byte budget for trackers; once exceeded, further
    /// visited nodes are simply not tracked (they fall back to products).
    pub max_tracked_bytes: usize,
}

impl Default for EngineLimits {
    fn default() -> EngineLimits {
        EngineLimits {
            max_patch_rows: 65_536,
            max_buffered_rows: 262_144,
            max_tracked_bytes: 256 << 20,
        }
    }
}

/// What a successfully applied patch did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchOutcome {
    /// Store generation after the patch (bumped iff the patch was
    /// non-empty).
    pub generation: u64,
    /// Current row count after the patch.
    pub rows: usize,
    /// Rows appended by this patch.
    pub appended: usize,
    /// Distinct rows deleted by this patch.
    pub deleted: usize,
    /// Content hash of the merged relation before the patch.
    pub old_hash: u64,
    /// Content hash after — the server keys caches and jobs on this.
    pub new_hash: u64,
}

/// Why a patch was not applied.
#[derive(Debug)]
pub enum PatchError {
    /// The patch touches more rows than [`EngineLimits::max_patch_rows`].
    TooLarge {
        /// Rows the patch touches.
        rows: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Validation or dictionary failure from the store; the store is
    /// unchanged.
    Relation(RelationError),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::TooLarge { rows, cap } => {
                write!(f, "patch touches {rows} rows; the per-patch cap is {cap}")
            }
            PatchError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PatchError::Relation(e) => Some(e),
            PatchError::TooLarge { .. } => None,
        }
    }
}

struct Inner {
    store: DeltaStore,
    /// The current generation, materialized. Handed out as a snapshot to
    /// jobs; replaced (never mutated) by patches.
    merged: Arc<Relation>,
    /// Trackers for the lattice nodes of the last discovery run, all
    /// synced to the store's checkpoint.
    trackers: FxHashMap<AttrSet, NodeTracker>,
}

/// Mutable, incrementally re-verifiable dataset (see module docs).
pub struct DatasetEngine {
    limits: EngineLimits,
    /// Named `state`, not `inner`: lock identity in the derived lock-order
    /// graph (tane-lint R3/R6) is by field name, and the registry's map
    /// lock is already called `inner` — distinct locks, distinct names.
    state: Mutex<Inner>,
}

impl DatasetEngine {
    /// Wraps `base` for incremental discovery. `nulls` must match the
    /// semantics `base` was ingested with (the server and CLI use
    /// [`NullSemantics::NullsEqual`], the paper behaviour).
    ///
    /// # Errors
    ///
    /// [`RelationError::ValuesUnavailable`] when `base` was built without
    /// value dictionaries ([`Relation::from_codes`]).
    pub fn new(
        base: Arc<Relation>,
        nulls: NullSemantics,
        limits: EngineLimits,
    ) -> Result<DatasetEngine, RelationError> {
        let store = DeltaStore::from_relation(&base, nulls)?;
        Ok(DatasetEngine {
            limits,
            state: Mutex::new(Inner {
                store,
                merged: base,
                trackers: FxHashMap::default(),
            }),
        })
    }

    /// The configured limits.
    pub fn limits(&self) -> &EngineLimits {
        &self.limits
    }

    /// Current store generation (0 until the first effective patch).
    pub fn generation(&self) -> u64 {
        self.lock().store.generation()
    }

    /// Snapshot of the current merged relation. Cheap (`Arc` clone); the
    /// snapshot stays valid and immutable across later patches.
    pub fn merged(&self) -> Arc<Relation> {
        Arc::clone(&self.lock().merged)
    }

    /// Lattice nodes currently tracked (0 before the first discovery).
    pub fn tracked_nodes(&self) -> usize {
        self.lock().trackers.len()
    }

    /// Applies one patch (deletes before appends) and re-materializes the
    /// merged relation. Serializes with discovery: a patch waits for a
    /// running search, and a search sees a coherent generation.
    ///
    /// # Errors
    ///
    /// [`PatchError::TooLarge`] over the per-patch cap (nothing applied);
    /// [`PatchError::Relation`] for invalid rows (store unchanged).
    pub fn patch(&self, patch: &RowPatch) -> Result<PatchOutcome, PatchError> {
        if patch.rows_touched() > self.limits.max_patch_rows {
            return Err(PatchError::TooLarge {
                rows: patch.rows_touched(),
                cap: self.limits.max_patch_rows,
            });
        }
        let mut guard = self.lock();
        let inner = &mut *guard;
        if inner.store.buffered_rows() + patch.rows_touched() > self.limits.max_buffered_rows {
            sync_trackers(inner);
        }
        let old_hash = inner.merged.content_hash();
        inner.store.apply(patch).map_err(PatchError::Relation)?;
        inner.merged = Arc::new(inner.store.materialize().map_err(PatchError::Relation)?);
        let deleted = {
            let mut d = patch.deletes.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        Ok(PatchOutcome {
            generation: inner.store.generation(),
            rows: inner.store.num_rows(),
            appended: patch.appends.len(),
            deleted,
            old_hash,
            new_hash: inner.merged.content_hash(),
        })
    }

    /// Incremental exact discovery on the current generation: identical
    /// output to [`tane_core::discover_fds_with`] on [`merged`], with
    /// tracked nodes supplied instead of producted.
    ///
    /// [`merged`]: DatasetEngine::merged
    ///
    /// # Errors
    ///
    /// Propagates [`TaneError`] from the core search (partition store
    /// failures on the disk backend).
    pub fn discover_exact_with(
        &self,
        config: &TaneConfig,
        on_level: impl FnMut(LevelEvent),
    ) -> Result<TaneResult, TaneError> {
        self.discover_inner(None, |relation, hooks| {
            reverify_fds_with(relation, config, hooks, on_level)
        })
        .expect("unconditional discovery always runs")
    }

    /// [`discover_exact_with`](DatasetEngine::discover_exact_with), but
    /// only if `snapshot` is still the engine's current merged relation —
    /// checked under the engine lock, so no patch can slip between the
    /// check and the search. `None` means the engine moved past the
    /// snapshot; the caller should run a plain (cold) discovery on it so
    /// its result stays coherent with the generation it was asked about.
    ///
    /// # Errors
    ///
    /// Propagates [`TaneError`] from the core search.
    pub fn discover_exact_for(
        &self,
        snapshot: &Arc<Relation>,
        config: &TaneConfig,
        on_level: impl FnMut(LevelEvent),
    ) -> Option<Result<TaneResult, TaneError>> {
        self.discover_inner(Some(snapshot), |relation, hooks| {
            reverify_fds_with(relation, config, hooks, on_level)
        })
    }

    /// Incremental approximate discovery; identical output to
    /// [`tane_core::discover_approx_fds_with`] on the merged relation.
    ///
    /// # Errors
    ///
    /// Propagates [`TaneError`] from the core search.
    pub fn discover_approx_with(
        &self,
        config: &ApproxTaneConfig,
        on_level: impl FnMut(LevelEvent),
    ) -> Result<TaneResult, TaneError> {
        self.discover_inner(None, |relation, hooks| {
            reverify_approx_fds_with(relation, config, hooks, on_level)
        })
        .expect("unconditional discovery always runs")
    }

    /// Snapshot-gated approximate discovery; see
    /// [`discover_exact_for`](DatasetEngine::discover_exact_for).
    ///
    /// # Errors
    ///
    /// Propagates [`TaneError`] from the core search.
    pub fn discover_approx_for(
        &self,
        snapshot: &Arc<Relation>,
        config: &ApproxTaneConfig,
        on_level: impl FnMut(LevelEvent),
    ) -> Option<Result<TaneResult, TaneError>> {
        self.discover_inner(Some(snapshot), |relation, hooks| {
            reverify_approx_fds_with(relation, config, hooks, on_level)
        })
    }

    fn discover_inner(
        &self,
        expected: Option<&Arc<Relation>>,
        run: impl FnOnce(&Relation, &mut ReverifyHooks<'_>) -> Result<TaneResult, TaneError>,
    ) -> Option<Result<TaneResult, TaneError>> {
        let mut guard = self.lock();
        let inner = &mut *guard;
        if let Some(snapshot) = expected {
            if !Arc::ptr_eq(&inner.merged, snapshot) {
                return None;
            }
        }
        sync_trackers(inner);
        let relation = Arc::clone(&inner.merged);
        let mut visited: Vec<NextLevelCandidate> = Vec::new();
        let result = {
            let trackers = &inner.trackers;
            let mut supply = |c: &NextLevelCandidate| -> Option<StrippedPartition> {
                visited.push(*c);
                trackers.get(&c.set).map(NodeTracker::to_stripped)
            };
            let mut hooks = ReverifyHooks {
                supply: &mut supply,
            };
            match run(&relation, &mut hooks) {
                Ok(r) => r,
                Err(e) => return Some(Err(e)),
            }
        };
        rebuild_trackers(inner, &visited, &self.limits);
        Some(Ok(result))
    }

    /// Recovers from a poisoned lock: every guarded structure here is
    /// valid after any panic (patches validate-then-apply, trackers are
    /// rebuilt wholesale), so the poison flag carries no information.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The current-generation label vector for `set`: the stable code column
/// for singletons, a tracker's labels otherwise.
fn labels_of<'a>(
    store: &'a DeltaStore,
    trackers: &'a FxHashMap<AttrSet, NodeTracker>,
    set: AttrSet,
) -> Option<&'a [u32]> {
    if let Some(a) = set.as_singleton() {
        return Some(store.column(a));
    }
    trackers.get(&set).map(NodeTracker::labels)
}

/// Folds the delta buffer into every tracker (the LSM flush), walking the
/// lattice bottom-up so each tracker's parents are already current, then
/// checkpoints the store. Trackers whose parents disappeared (or whose
/// labels overflowed) are dropped — the next discovery re-products them.
fn sync_trackers(inner: &mut Inner) {
    if inner.store.buffered_rows() == 0 {
        return;
    }
    let view = inner.store.delta_view();
    let mut sets: Vec<AttrSet> = inner.trackers.keys().copied().collect();
    sets.sort_unstable_by_key(|s| (s.len(), s.bits()));
    for set in sets {
        let Some(mut t) = inner.trackers.remove(&set) else {
            continue;
        };
        let (pa_set, pb_set) = t.parents();
        let ok = match (
            labels_of(&inner.store, &inner.trackers, pa_set),
            labels_of(&inner.store, &inner.trackers, pb_set),
        ) {
            (Some(pa), Some(pb)) => t.update(&view, pa, pb),
            _ => false,
        };
        if ok {
            inner.trackers.insert(set, t);
        }
    }
    inner.store.checkpoint();
}

/// Reconciles the tracker set with the candidates the search just visited:
/// unvisited trackers are dropped, visited nodes keep their tracker when
/// its parentage still matches, and new (or re-parented) nodes get a fresh
/// tracker composed from their parents' labels — in visited order, so
/// parents are tracked before children — until the byte budget is spent.
fn rebuild_trackers(inner: &mut Inner, visited: &[NextLevelCandidate], limits: &EngineLimits) {
    let mut wanted: FxHashSet<AttrSet> = FxHashSet::default();
    for c in visited {
        wanted.insert(c.set);
    }
    inner.trackers.retain(|set, _| wanted.contains(set));
    let mut bytes: usize = inner.trackers.values().map(NodeTracker::size_bytes).sum();
    for c in visited {
        if let Some(t) = inner.trackers.get(&c.set) {
            if t.parents() == (c.parent_a, c.parent_b) {
                continue;
            }
            // Same node, different join parents (pruning shifted the
            // prefix join): the labels are still valid but updates would
            // mix label spaces, so recompose from the new parents.
            bytes -= t.size_bytes();
            inner.trackers.remove(&c.set);
        }
        if bytes >= limits.max_tracked_bytes {
            continue;
        }
        let composed = match (
            labels_of(&inner.store, &inner.trackers, c.parent_a),
            labels_of(&inner.store, &inner.trackers, c.parent_b),
        ) {
            (Some(pa), Some(pb)) => NodeTracker::compose(c.set, c.parent_a, c.parent_b, pa, pb),
            _ => None,
        };
        if let Some(t) = composed {
            bytes += t.size_bytes();
            inner.trackers.insert(c.set, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Schema, Value};

    fn base() -> Arc<Relation> {
        let mut b = Relation::builder(Schema::new(["A", "B", "C"]).unwrap());
        for row in [
            ["1", "x", "p"],
            ["1", "y", "p"],
            ["2", "x", "q"],
            ["2", "y", "q"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        Arc::new(b.build())
    }

    fn row(vals: [&str; 3]) -> Vec<Value> {
        vals.map(Value::from).to_vec()
    }

    #[test]
    fn patch_bumps_generation_and_hash() {
        let e =
            DatasetEngine::new(base(), NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
        assert_eq!(e.generation(), 0);
        let h0 = e.merged().content_hash();
        let out = e
            .patch(&RowPatch {
                deletes: vec![0],
                appends: vec![row(["3", "z", "r"])],
            })
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!(out.rows, 4);
        assert_eq!((out.appended, out.deleted), (1, 1));
        assert_eq!(out.old_hash, h0);
        assert_ne!(out.new_hash, h0);
        assert_eq!(e.merged().content_hash(), out.new_hash);
    }

    #[test]
    fn oversized_patches_are_refused_untouched() {
        let limits = EngineLimits {
            max_patch_rows: 1,
            ..EngineLimits::default()
        };
        let e = DatasetEngine::new(base(), NullSemantics::NullsEqual, limits).unwrap();
        let err = e
            .patch(&RowPatch {
                deletes: vec![0, 1],
                appends: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, PatchError::TooLarge { rows: 2, cap: 1 }));
        assert_eq!(e.generation(), 0);
        assert_eq!(e.merged().num_rows(), 4);
    }

    #[test]
    fn invalid_rows_surface_relation_errors() {
        let e =
            DatasetEngine::new(base(), NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
        let err = e
            .patch(&RowPatch {
                deletes: vec![99],
                appends: vec![],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PatchError::Relation(RelationError::RowOutOfRange { index: 99, .. })
        ));
    }

    #[test]
    fn discovery_populates_trackers_then_supplies_them() {
        let e =
            DatasetEngine::new(base(), NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
        let cfg = TaneConfig::default();
        let cold = e.discover_exact_with(&cfg, |_| {}).unwrap();
        assert_eq!(cold.stats.partitions_supplied, 0, "nothing tracked yet");
        assert!(e.tracked_nodes() > 0);
        // Same generation again: every visited node is supplied.
        let warm = e.discover_exact_with(&cfg, |_| {}).unwrap();
        assert_eq!(warm.stats.products, 0);
        assert_eq!(
            warm.stats.partitions_supplied, cold.stats.products,
            "supplied count replaces the cold run's products"
        );
        assert_eq!(warm.fds, cold.fds);
        assert_eq!(warm.keys, cold.keys);
    }

    #[test]
    fn zero_tracking_budget_degrades_to_full_products() {
        let limits = EngineLimits {
            max_tracked_bytes: 0,
            ..EngineLimits::default()
        };
        let e = DatasetEngine::new(base(), NullSemantics::NullsEqual, limits).unwrap();
        let cfg = TaneConfig::default();
        let cold = e.discover_exact_with(&cfg, |_| {}).unwrap();
        assert_eq!(e.tracked_nodes(), 0);
        let again = e.discover_exact_with(&cfg, |_| {}).unwrap();
        assert_eq!(again.stats.partitions_supplied, 0);
        assert_eq!(again.stats.products, cold.stats.products);
        assert_eq!(again.fds, cold.fds);
    }

    #[test]
    fn snapshot_gate_refuses_stale_generations() {
        let e =
            DatasetEngine::new(base(), NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
        let cfg = TaneConfig::default();
        let snapshot = e.merged();
        assert!(
            e.discover_exact_for(&snapshot, &cfg, |_| {}).is_some(),
            "current snapshot runs incrementally"
        );
        e.patch(&RowPatch {
            deletes: vec![],
            appends: vec![row(["4", "q", "t"])],
        })
        .unwrap();
        assert!(
            e.discover_exact_for(&snapshot, &cfg, |_| {}).is_none(),
            "a patched-past snapshot must be refused"
        );
        assert!(e.discover_exact_for(&e.merged(), &cfg, |_| {}).is_some());
    }

    #[test]
    fn buffer_overflow_forces_a_sync() {
        let limits = EngineLimits {
            max_buffered_rows: 2,
            ..EngineLimits::default()
        };
        let e = DatasetEngine::new(base(), NullSemantics::NullsEqual, limits).unwrap();
        let cfg = TaneConfig::default();
        e.discover_exact_with(&cfg, |_| {}).unwrap();
        // Each patch touches 2 rows; the second one trips the buffer bound
        // and must sync rather than refuse.
        for i in 0..3 {
            e.patch(&RowPatch {
                deletes: vec![],
                appends: vec![row(["9", "w", "s"]), row([&i.to_string(), "w", "s"])],
            })
            .unwrap();
        }
        let r = e.discover_exact_with(&cfg, |_| {}).unwrap();
        assert!(
            r.stats.partitions_supplied > 0,
            "trackers survived the flushes"
        );
    }
}
