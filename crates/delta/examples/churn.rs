//! Churn benchmark: a patch-then-discover loop comparing the incremental
//! engine's merge-and-reverify against cold full discovery on the same
//! merged relation. Emits a JSON document (BENCH_pr6.json) showing the
//! incremental path doing strictly fewer partition products per round.
//!
//! Run: `cargo run --release -p tane-delta --example churn`

use std::sync::Arc;
use std::time::Instant;

use tane_core::{discover_fds_with, TaneConfig};
use tane_delta::{DatasetEngine, EngineLimits};
use tane_relation::{NullSemantics, Relation, RowPatch, Schema, Value};
use tane_util::SplitMix64;

const BASE_ROWS: usize = 50_000;
const ROUNDS: usize = 6;
const APPENDS_PER_ROUND: usize = 500;
const DELETES_PER_ROUND: usize = 200;

fn synth_row(i: usize, rng: &mut SplitMix64) -> Vec<Value> {
    let a = (rng.next_u64() % 120) as i64;
    let b = (rng.next_u64() % 40) as i64;
    let c = a * 40 + b;
    let d = if rng.next_u64() % 89 == 0 {
        (rng.next_u64() % 10_000) as i64 + 100_000
    } else {
        a * 7
    };
    let e = i as i64;
    let f = (rng.next_u64() % 5) as i64;
    let g = (b % 8) * 100 + f;
    vec![
        Value::Int(a),
        Value::Int(b),
        Value::Int(c),
        Value::Int(d),
        Value::Int(e),
        Value::Int(f),
        Value::Int(g),
    ]
}

fn main() {
    let schema = Schema::new(["A", "B", "C", "D", "E", "F", "G"]).unwrap();
    let mut rng = SplitMix64::new(0xbe_9c4);
    let mut b = Relation::builder(schema);
    for i in 0..BASE_ROWS {
        b.push_row(synth_row(i, &mut rng)).unwrap();
    }
    let base = Arc::new(b.build());
    let engine =
        DatasetEngine::new(base, NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
    let cfg = TaneConfig::default();

    // Warm-up: cold discovery populates the trackers.
    let warm = engine.discover_exact_with(&cfg, |_| {}).unwrap();
    eprintln!(
        "warm-up: {} fds, {} products, {:.3}s",
        warm.count(),
        warm.stats.products,
        warm.stats.elapsed.as_secs_f64()
    );

    println!("{{");
    println!("  \"churn\": [");
    let mut next_row = BASE_ROWS;
    for round in 0..ROUNDS {
        let rows = engine.merged().num_rows();
        let patch = RowPatch {
            deletes: (0..DELETES_PER_ROUND)
                .map(|_| (rng.next_u64() as usize) % rows)
                .collect(),
            appends: (0..APPENDS_PER_ROUND)
                .map(|_| {
                    next_row += 1;
                    synth_row(next_row, &mut rng)
                })
                .collect(),
        };
        engine.patch(&patch).unwrap();

        let t0 = Instant::now();
        let inc = engine.discover_exact_with(&cfg, |_| {}).unwrap();
        let inc_secs = t0.elapsed().as_secs_f64();

        let merged = engine.merged();
        let t1 = Instant::now();
        let cold = discover_fds_with(&merged, &cfg, |_| {}).unwrap();
        let cold_secs = t1.elapsed().as_secs_f64();

        assert_eq!(inc.fds, cold.fds, "round {round}: outputs must agree");
        assert!(
            inc.stats.products < cold.stats.products,
            "round {round}: incremental must do strictly fewer products"
        );

        let sep = if round + 1 == ROUNDS { "" } else { "," };
        println!(
            "    {{\"round\": {}, \"rows\": {}, \"fds\": {}, \
             \"incremental_products\": {}, \"partitions_supplied\": {}, \
             \"full_products\": {}, \"incremental_secs\": {:.6}, \
             \"full_secs\": {:.6}}}{}",
            round + 1,
            merged.num_rows(),
            inc.count(),
            inc.stats.products,
            inc.stats.partitions_supplied,
            cold.stats.products,
            inc_secs,
            cold_secs,
            sep
        );
    }
    println!("  ]");
    println!("}}");
}
