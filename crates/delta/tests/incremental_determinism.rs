//! The incremental engine's headline guarantee: after any sequence of
//! patches, a merge-and-reverify discovery streams and returns **byte
//! for byte** what a cold discovery on the equivalent static relation
//! streams and returns — at any thread count, in exact and approximate
//! mode — while doing strictly fewer partition products.

use std::sync::Arc;

use tane_core::{
    discover_approx_fds_with, discover_fds_with, ApproxTaneConfig, LevelEvent, TaneConfig,
    TaneResult,
};
use tane_delta::{DatasetEngine, EngineLimits};
use tane_relation::{NullSemantics, Relation, RowPatch, Schema, Value};
use tane_util::SplitMix64;

const TOTAL_ROWS: usize = 1000;
const BASE_ROWS: usize = 700;

/// A six-attribute synthetic table with planted structure: `C` derived
/// from `(A, B)` exactly, `D` derived from `A` with ~1% noise (so exact
/// and approximate mode disagree about `A → D`), `E` near-unique, `F`
/// low-cardinality.
fn synth_rows(n: usize) -> Vec<Vec<Value>> {
    let mut rng = SplitMix64::new(0x1ce_de17a);
    (0..n)
        .map(|i| {
            let a = (rng.next_u64() % 41) as i64;
            let b = (rng.next_u64() % 13) as i64;
            let c = a * 13 + b;
            let d = if rng.next_u64() % 97 == 0 {
                (rng.next_u64() % 1000) as i64 + 1000
            } else {
                a * 3
            };
            let e = if rng.next_u64() % 10 == 0 {
                7
            } else {
                i as i64
            };
            let f = (rng.next_u64() % 3) as i64;
            vec![
                Value::Int(a),
                Value::Int(b),
                Value::Int(c),
                Value::Int(d),
                Value::Int(e),
                Value::Int(f),
            ]
        })
        .collect()
}

fn schema() -> Schema {
    Schema::new(["A", "B", "C", "D", "E", "F"]).unwrap()
}

fn relation_from(rows: &[Vec<Value>]) -> Relation {
    let mut b = Relation::builder(schema());
    for row in rows {
        b.push_row(row.clone()).unwrap();
    }
    b.build()
}

/// Builds the engine over the base slice, runs one warm-up discovery to
/// populate the trackers, then applies two churn patches.
fn churned_engine() -> DatasetEngine {
    let rows = synth_rows(TOTAL_ROWS);
    let base = Arc::new(relation_from(&rows[..BASE_ROWS]));
    let engine =
        DatasetEngine::new(base, NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
    engine
        .discover_exact_with(&TaneConfig::default(), |_| {})
        .unwrap();
    engine
        .patch(&RowPatch {
            deletes: vec![3, 10, 11, 500, 501],
            appends: rows[BASE_ROWS..850].to_vec(),
        })
        .unwrap();
    engine
        .patch(&RowPatch {
            deletes: vec![0, 1, 100, 800],
            appends: rows[850..].to_vec(),
        })
        .unwrap();
    assert_eq!(engine.generation(), 2);
    engine
}

/// Everything an observer of a streamed discovery can see, rendered to
/// bytes: the per-level minimal-FD lines in arrival order, then the final
/// cover and keys. Timings and partition-byte gauges are excluded — they
/// are wall-clock, not results.
fn observable(levels: &[LevelEvent], result: &TaneResult, schema: &Schema) -> String {
    let mut out = String::new();
    for ev in levels {
        out.push_str(&format!("level {}:\n", ev.level));
        for fd in &ev.new_minimal_fds {
            out.push_str(&fd.display_with(schema.names()).to_string());
            out.push('\n');
        }
    }
    out.push_str("cover:\n");
    out.push_str(&result.render(schema));
    out.push_str("keys:\n");
    for k in &result.keys {
        out.push_str(&format!("{:?}\n", k.iter().collect::<Vec<_>>()));
    }
    out
}

fn assert_incremental_matches_cold(threads: usize, epsilon: Option<f64>) {
    assert_incremental_matches_cold_on(threads, epsilon, TaneConfig::default());
}

/// The disk-backed variant: a cache budget small enough that the segment
/// store actually spills and reads back, so merge-and-reverify exercises
/// the shared-read snapshot machinery (DESIGN §13) across generation
/// bumps.
fn assert_incremental_matches_cold_on_disk(threads: usize, epsilon: Option<f64>) {
    assert_incremental_matches_cold_on(threads, epsilon, TaneConfig::disk(8 << 10));
}

fn assert_incremental_matches_cold_on(threads: usize, epsilon: Option<f64>, base: TaneConfig) {
    let disk = base.storage != tane_core::Storage::Memory;
    let engine = churned_engine();
    let merged = engine.merged();
    let sch = merged.schema().clone();

    let mut inc_levels = Vec::new();
    let mut cold_levels = Vec::new();
    let (inc, cold) = match epsilon {
        None => {
            let cfg = base.with_threads(threads);
            let inc = engine
                .discover_exact_with(&cfg, |ev| inc_levels.push(ev))
                .unwrap();
            let cold = discover_fds_with(&merged, &cfg, |ev| cold_levels.push(ev)).unwrap();
            (inc, cold)
        }
        Some(eps) => {
            let mut cfg = ApproxTaneConfig::new(eps);
            cfg.base = base.with_threads(threads);
            let inc = engine
                .discover_approx_with(&cfg, |ev| inc_levels.push(ev))
                .unwrap();
            let cold = discover_approx_fds_with(&merged, &cfg, |ev| cold_levels.push(ev)).unwrap();
            (inc, cold)
        }
    };

    assert_eq!(
        observable(&inc_levels, &inc, &sch),
        observable(&cold_levels, &cold, &sch),
        "incremental output must be byte-identical to a cold run \
         (threads={threads}, epsilon={epsilon:?})"
    );
    assert!(
        inc.stats.partitions_supplied > 0,
        "the warm-up run must have left usable trackers"
    );
    assert!(
        inc.stats.products < cold.stats.products,
        "re-verify must do strictly fewer products ({} vs {})",
        inc.stats.products,
        cold.stats.products
    );
    assert_eq!(
        inc.stats.products + inc.stats.partitions_supplied,
        cold.stats.products,
        "every node is either supplied or producted"
    );
    if disk {
        assert!(
            cold.stats.disk_writes > 0 && cold.stats.disk_reads > 0,
            "the tiny cache budget must force real spills and read-backs \
             ({} writes, {} reads)",
            cold.stats.disk_writes,
            cold.stats.disk_reads
        );
    }
}

#[test]
fn exact_single_threaded() {
    assert_incremental_matches_cold(1, None);
}

#[test]
fn exact_eight_threads() {
    assert_incremental_matches_cold(8, None);
}

#[test]
fn approx_single_threaded() {
    assert_incremental_matches_cold(1, Some(0.05));
}

#[test]
fn approx_eight_threads() {
    assert_incremental_matches_cold(8, Some(0.05));
}

#[test]
fn exact_disk_single_threaded() {
    assert_incremental_matches_cold_on_disk(1, None);
}

#[test]
fn exact_disk_eight_threads() {
    assert_incremental_matches_cold_on_disk(8, None);
}

#[test]
fn approx_disk_eight_threads() {
    assert_incremental_matches_cold_on_disk(8, Some(0.05));
}

/// The merged view is the ground truth: discovery through the engine on a
/// patched dataset equals discovery on a relation rebuilt from scratch
/// out of the surviving + appended rows (same values, fresh dictionary).
#[test]
fn merged_view_equals_rebuilt_relation() {
    let rows = synth_rows(TOTAL_ROWS);
    let base = Arc::new(relation_from(&rows[..BASE_ROWS]));
    let engine =
        DatasetEngine::new(base, NullSemantics::NullsEqual, EngineLimits::default()).unwrap();
    engine
        .patch(&RowPatch {
            deletes: vec![2, 5, 600],
            appends: rows[BASE_ROWS..].to_vec(),
        })
        .unwrap();

    // Rebuild the equivalent static relation row by row.
    let mut survivors: Vec<Vec<Value>> = rows[..BASE_ROWS].to_vec();
    for &d in [600usize, 5, 2].iter() {
        survivors.remove(d);
    }
    survivors.extend_from_slice(&rows[BASE_ROWS..]);
    let rebuilt = relation_from(&survivors);

    let cfg = TaneConfig::default();
    let via_engine = engine.discover_exact_with(&cfg, |_| {}).unwrap();
    let via_rebuilt = discover_fds_with(&rebuilt, &cfg, |_| {}).unwrap();
    let sch = schema();
    assert_eq!(via_engine.render(&sch), via_rebuilt.render(&sch));
    assert_eq!(via_engine.keys, via_rebuilt.keys);
}
