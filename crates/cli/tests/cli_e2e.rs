//! End-to-end tests of the `tane` binary: real process, real files.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Command, Stdio};
use std::time::Duration;

fn tane() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tane"))
}

fn write_fixture(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("tane-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

const FIGURE1: &str = "\
A,B,C,D
1,a,$,Flower
1,AA,£,Tulip
2,AA,$,Daffodil
2,AA,$,Flower
2,b,£,Lily
3,b,$,Orchid
3,c,£,Flower
3,c,#,Rose
";

#[test]
fn discover_prints_the_minimal_cover() {
    let path = write_fixture("discover.csv", FIGURE1);
    let out = tane()
        .args(["discover", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("{B,C} -> A"),
        "missing Example 2's FD in:\n{stdout}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("6 minimal dependencies"),
        "stderr: {stderr}"
    );
    std::fs::remove_file(path).unwrap();
}

#[test]
fn algorithms_agree_through_the_cli() {
    let path = write_fixture("algos.csv", FIGURE1);
    let mut outputs = Vec::new();
    for algo in ["tane", "fdep", "naive"] {
        let out = tane()
            .args(["discover", path.to_str().unwrap(), "--algorithm", algo])
            .output()
            .unwrap();
        assert!(out.status.success(), "{algo} failed");
        let mut lines: Vec<String> = String::from_utf8(out.stdout)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        lines.sort();
        outputs.push(lines);
    }
    assert_eq!(outputs[0], outputs[1], "tane vs fdep");
    assert_eq!(outputs[0], outputs[2], "tane vs naive");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn epsilon_and_stats_flags() {
    let path = write_fixture("eps.csv", FIGURE1);
    let out = tane()
        .args([
            "discover",
            path.to_str().unwrap(),
            "--epsilon",
            "0.375",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // {A} -> B holds at g3 = 3/8.
    assert!(stdout.contains("{A} -> B"), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("validity tests"), "{stderr}");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn dataset_roundtrip_through_discover() {
    let csv = std::env::temp_dir().join(format!("tane-cli-test-{}-wbc.csv", std::process::id()));
    let out = tane()
        .args(["dataset", "wbc", "-o", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = tane()
        .args(["discover", csv.to_str().unwrap(), "--max-lhs", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_file(csv).unwrap();
}

#[test]
fn profile_reports_columns() {
    let path = write_fixture("profile.csv", FIGURE1);
    let out = tane()
        .args(["profile", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("rows: 8"));
    assert!(stdout.contains("attributes: 4"));
    assert!(stdout.contains("distinct=6"), "D has 6 values: {stdout}");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn errors_are_reported_not_panicked() {
    // Missing file.
    let out = tane()
        .args(["discover", "/nonexistent/nope.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    // Bad epsilon.
    let path = write_fixture("bad-eps.csv", FIGURE1);
    let out = tane()
        .args(["discover", path.to_str().unwrap(), "--epsilon", "7"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Unknown dataset.
    let out = tane().args(["dataset", "nope"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
    // Unknown command.
    let out = tane().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    std::fs::remove_file(path).unwrap();
}

#[test]
fn serve_answers_discover_and_shuts_down() {
    // `--port 0` binds an ephemeral port; the first stdout line names it.
    let mut child = tane()
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();

    let http = |method: &str, path: &str, body: &[u8]| -> (u16, String) {
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        // `connection: close` so the EOF-terminated read below works
        // against the keep-alive server.
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .unwrap();
        stream.write_all(body).unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let status = raw[9..12].parse().unwrap();
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    };

    let (status, body) = http("GET", "/health", b"");
    assert_eq!(status, 200, "{body}");

    // Discovery over HTTP matches the CLI on the same data: Example 2's FD
    // appears, rendered identically to `tane discover`.
    let (status, _) = http("POST", "/datasets/figure1", FIGURE1.as_bytes());
    assert_eq!(status, 200);
    let (status, body) = http("POST", "/discover", br#"{"dataset":"figure1"}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("{B,C} -> A"), "{body}");
    assert!(body.contains("\"count\":6"), "{body}");

    let (status, body) = http("GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"queue\""), "{body}");
    assert!(body.contains("\"level_times\""), "{body}");

    // Graceful stop: the endpoint answers, then the process exits cleanly.
    let (status, _) = http("POST", "/shutdown", b"");
    assert_eq!(status, 200);
    for _ in 0..100 {
        if let Some(code) = child.try_wait().unwrap() {
            assert!(code.success());
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().ok();
    panic!("server did not exit within 10s of /shutdown");
}

#[test]
fn serve_rejects_bad_flags() {
    let out = tane().args(["serve", "--workers", "0"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one worker"));
    let out = tane()
        .args(["serve", "--port", "notaport"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = tane().args(["serve", "stray"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no positional"));
    let out = tane().args(["serve", "--max-conns", "0"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("connection slot"));
    let out = tane()
        .args(["serve", "--conn-requests", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = tane()
        .args(["serve", "--idle-timeout", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn help_is_printed() {
    let out = tane().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
    let out = tane().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
