#![forbid(unsafe_code)]
//! `tane` — discover functional and approximate dependencies from CSV files.
//!
//! ```text
//! tane discover data.csv                    # all minimal FDs
//! tane discover data.csv --epsilon 0.05     # approximate dependencies
//! tane discover data.csv --algorithm fdep   # use the FDEP baseline
//! tane dataset wbc --copies 4 -o wbc4.csv   # emit a synthetic dataset
//! tane profile data.csv                     # per-column profile
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tane_core::{
    discover_approx_fds_with, discover_fds_with, discover_topk_fds_with, ApproxTaneConfig,
    LevelEvent, TaneConfig, TopKConfig, TopKEvent,
};
use tane_relation::csv::{read_csv, write_csv, CsvOptions};
use tane_relation::{NullSemantics, Relation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("discover") => discover(&args[1..]),
        Some("patch") => patch(&args[1..]),
        Some("dataset") => dataset(&args[1..]),
        Some("profile") => profile(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `tane help`)")),
    }
}

const USAGE: &str = "\
tane — discovery of functional and approximate dependencies (TANE, ICDE 1998)

USAGE:
    tane discover <FILE.csv> [OPTIONS]    discover minimal dependencies
    tane patch <FILE.csv> [OPTIONS]       apply a row delta, re-verify incrementally
    tane dataset <NAME> [OPTIONS]         generate a synthetic benchmark dataset
    tane profile <FILE.csv> [OPTIONS]     print a per-column profile
    tane serve [OPTIONS]                  run the HTTP discovery service
    tane lint [OPTIONS] [PATHS...]        run the workspace static analyzer
    tane help                             show this help

DISCOVER OPTIONS:
    --epsilon <E>        g3 error threshold in [0,1]; 0 = exact FDs (default)
    --top-k <K>          ranked mode (tane only): print the K best
                         non-redundant dependencies by g3 error, best first,
                         each line `FD<TAB>g3`; prunes and exits the lattice
                         walk early once no candidate can enter the top K.
                         Mutually exclusive with --epsilon
    --max-lhs <N>        only consider left-hand sides of at most N attributes
    --algorithm <A>      tane (default) | fdep | naive
    --disk <MB>          spill partitions to disk, keeping an MB-sized cache
    --stream             print each lattice level's dependencies as the
                         search completes it (tane only), instead of all
                         at the end
    --stats              print search statistics after the dependencies
    --no-header          the CSV has no header row (attributes become A0, A1, …)
    --delimiter <C>      field delimiter (default ,)
    --nulls <MODE>       equal (default: ? = ?) | distinct (every ? unique)
    --threads <N>        worker threads for the parallel search runtime
                         (default: available cores; 1 = the paper's serial
                         algorithm — results are identical either way)

PATCH OPTIONS:
    --append <FILE.csv>  rows to append (same schema as the base file; a
                         header row is skipped unless --no-header)
    --delete <I,J,...>   0-based row indices of the base file to delete
    --epsilon <E>        g3 error threshold in [0,1]; 0 = exact FDs (default)
    --threads <N>        worker threads (results identical at any count)
    --stats              print incremental-engine statistics after the FDs
    --no-header / --delimiter / --nulls   as for discover
    Discovers on the base file first (warming the engine's partition
    trackers), applies the delta, then re-verifies incrementally: merged
    partitions come from the trackers instead of new partition products.
    Prints the post-patch dependencies.

DATASET OPTIONS (NAME: lymphography | hepatitis | wbc | adult | chess):
    --copies <N>         concatenate N disjoint copies (the paper's ×n datasets)
    -o, --output <FILE>  write CSV here (default: stdout)

SERVE OPTIONS:
    --port <P>           TCP port on 127.0.0.1 (default 7171; 0 = ephemeral)
    --workers <N>        search worker threads (default: available cores)
    --queue <N>          queued-job capacity before 429 (default 64)
    --cache <N>          cached results kept; eviction drops the cheapest-
                         to-recompute entry first (default 256)
    --timeout <SECS>     per-request job timeout (default 120)
    --max-conns <N>      concurrent connections; excess shed with 503
                         (default 1024)
    --conn-requests <N>  keep-alive requests served per connection before
                         the server closes it (default 1000)
    --idle-timeout <SECS> disconnect idle keep-alive connections (default 10)
    --disk-quota-mb <MB> per-dataset cap on spilled partition bytes for
                         disk-backed searches; exceeding it answers 507
                         (default 4096)

LINT:
    Checks the workspace's own invariants: unsafe-audit, determinism,
    lock-discipline, lock-graph, atomics-audit, error-hygiene. Exits
    non-zero on violations.
    --baseline <FILE>        ratchet mode: only violations not in FILE fail
    --write-baseline <FILE>  record current violations as the baseline
    --symbols <FILE>         dump the workspace symbol graph as JSON
    Suppress a finding with `// lint:allow(<rule>): <reason>`; declare a
    lock nesting with `// lint:lock-order(outer -> inner): <reason>`.
";

struct Opts {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Minimal flag parser: `--name value` for known value-flags, bare `--name`
/// otherwise.
fn parse_opts(args: &[String], value_flags: &[&str]) -> Result<Opts, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
            if value_flags.contains(&name) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?
                    .clone();
                flags.push((name.to_string(), Some(value)));
                i += 2;
            } else {
                flags.push((name.to_string(), None));
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Opts { positional, flags })
}

impl Opts {
    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn csv_options(opts: &Opts) -> Result<CsvOptions, String> {
    let delimiter = match opts.value("delimiter") {
        Some(d) if d.len() == 1 => d.as_bytes()[0],
        Some(d) => return Err(format!("delimiter must be a single byte, got `{d}`")),
        None => b',',
    };
    let nulls = match opts.value("nulls") {
        Some("equal") | None => NullSemantics::NullsEqual,
        Some("distinct") => NullSemantics::NullsDistinct,
        Some(other) => return Err(format!("unknown nulls mode `{other}`")),
    };
    Ok(CsvOptions {
        delimiter,
        has_header: !opts.flag("no-header"),
        infer_types: true,
        nulls,
    })
}

fn load(path: &str, opts: &Opts) -> Result<Relation, String> {
    let options = csv_options(opts)?;
    read_csv(Path::new(path), &options).map_err(|e| format!("reading {path}: {e}"))
}

fn discover(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        &[
            "epsilon",
            "top-k",
            "max-lhs",
            "algorithm",
            "disk",
            "delimiter",
            "nulls",
            "threads",
        ],
    )?;
    let path = opts.positional.first().ok_or("discover needs a CSV file")?;
    let relation = load(path, &opts)?;

    let epsilon: f64 = match opts.value("epsilon") {
        Some(e) => e.parse().map_err(|_| format!("bad epsilon `{e}`"))?,
        None => 0.0,
    };
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(format!("epsilon must be in [0,1], got {epsilon}"));
    }
    let top_k: Option<usize> = match opts.value("top-k") {
        Some(k) => Some(k.parse().map_err(|_| format!("bad top-k `{k}`"))?),
        None => None,
    };
    if top_k.is_some() && opts.value("epsilon").is_some() {
        return Err("--top-k and --epsilon are mutually exclusive".into());
    }
    let max_lhs: Option<usize> = match opts.value("max-lhs") {
        Some(m) => Some(m.parse().map_err(|_| format!("bad max-lhs `{m}`"))?),
        None => None,
    };
    let storage = match opts.value("disk") {
        Some(mb) => {
            let mb: usize = mb.parse().map_err(|_| format!("bad cache size `{mb}`"))?;
            tane_core::Storage::Disk {
                cache_bytes: mb << 20,
            }
        }
        None => tane_core::Storage::Memory,
    };
    let threads: usize = match opts.value("threads") {
        Some(t) => t.parse().map_err(|_| format!("bad thread count `{t}`"))?,
        // Parallelism never changes the output, so default to every core
        // and leave `--threads 1` for paper-faithful serial runs.
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    if threads == 0 {
        return Err("need at least one thread".into());
    }
    let algorithm = opts.value("algorithm").unwrap_or("tane");

    let names = relation.schema().names().to_vec();
    let n_attrs = relation.num_attrs();
    match algorithm {
        "tane" => {
            let base = TaneConfig {
                storage,
                max_lhs,
                threads,
                ..TaneConfig::default()
            };
            let streaming = opts.flag("stream");
            let ranked_mode = top_k.is_some();
            // With --stream, dependencies print per level as the search
            // finishes each one — a level's minimal FDs are final before
            // the next level is even generated, so early lines are safe to
            // act on. Level markers go to stderr so stdout stays a plain
            // FD list either way. Ranked mode holds stdout for the final
            // heap (the ranking is only final at the end) and streams heap
            // improvements as stderr markers instead.
            let on_level = |ev: LevelEvent| {
                if !streaming {
                    return;
                }
                if !ranked_mode {
                    for fd in &ev.new_minimal_fds {
                        println!("{}", fd.display_with(&names));
                    }
                }
                eprintln!(
                    "# level {}: {} new, {:.3}s",
                    ev.level,
                    ev.new_minimal_fds.len(),
                    ev.level_time.as_secs_f64()
                );
            };
            let result = if let Some(k) = top_k {
                let config = TopKConfig { base, k };
                discover_topk_fds_with(&relation, &config, on_level, |ev: TopKEvent| {
                    if streaming {
                        eprintln!(
                            "# level {}: top-k heap improved ({} entries)",
                            ev.level,
                            ev.heap.len()
                        );
                    }
                })
            } else if epsilon > 0.0 {
                let config = ApproxTaneConfig {
                    base,
                    ..ApproxTaneConfig::new(epsilon)
                };
                discover_approx_fds_with(&relation, &config, on_level)
            } else {
                discover_fds_with(&relation, &base, on_level)
            }
            .map_err(|e| e.to_string())?;
            if let Some(heap) = &result.ranked {
                for entry in heap {
                    println!("{}\t{:.6}", entry.fd.display_with(&names), entry.g3());
                }
                eprintln!("# {} ranked dependencies (best first)", heap.len());
            } else {
                if !streaming {
                    for fd in &result.fds {
                        println!("{}", fd.display_with(&names));
                    }
                }
                eprintln!("# {} minimal dependencies", result.fds.len());
            }
            if opts.flag("stats") {
                let s = &result.stats;
                eprintln!("# levels: {}", s.levels);
                eprintln!("# sets processed (s): {}", s.sets_total);
                eprintln!("# largest level (s_max): {}", s.sets_max_level);
                eprintln!("# validity tests (v): {}", s.validity_tests);
                eprintln!("# keys found (k): {}", s.keys_found);
                eprintln!("# partition products: {}", s.products);
                eprintln!("# exact g3 computations: {}", s.g3_exact_computations);
                eprintln!("# tests decided by g3 bounds: {}", s.g3_decided_by_bounds);
                if ranked_mode {
                    eprintln!(
                        "# top-k bound-pruned/dominated: {}/{}",
                        s.topk_bound_pruned, s.topk_dominated
                    );
                    eprintln!("# top-k heap insertions: {}", s.topk_improvements);
                    match s.topk_early_exit_level {
                        Some(l) => eprintln!("# top-k early exit after level {l}"),
                        None => eprintln!("# top-k walked the full lattice"),
                    }
                }
                eprintln!("# disk reads/writes: {}/{}", s.disk_reads, s.disk_writes);
                eprintln!(
                    "# disk bytes read/written: {}/{}",
                    s.disk_bytes_read, s.disk_bytes_written
                );
                eprintln!(
                    "# store evictions/pins/oversized: {}/{}/{}",
                    s.store_evictions, s.store_pins, s.oversized_resident
                );
                eprintln!(
                    "# parallel workers/grains: {}/{}",
                    s.parallel_workers, s.parallel_grains
                );
                eprintln!(
                    "# worker steals/parks: {}/{}",
                    s.worker_steals, s.worker_parks
                );
                eprintln!(
                    "# worker busy / spin / fetch stall: {:.3}s/{:.3}s/{:.3}s",
                    s.worker_busy.as_secs_f64(),
                    s.worker_spin.as_secs_f64(),
                    s.fetch_stall.as_secs_f64()
                );
                eprintln!("# time: {:.3}s", s.elapsed.as_secs_f64());
            }
        }
        "fdep" => {
            if epsilon > 0.0 {
                return Err("FDEP only discovers exact dependencies".into());
            }
            if top_k.is_some() {
                return Err("--top-k requires --algorithm tane".into());
            }
            if opts.flag("stream") {
                return Err("--stream requires --algorithm tane".into());
            }
            let (mut fds, stats) = tane_fdep::fdep_fds(&relation);
            if let Some(m) = max_lhs {
                fds.retain(|fd| fd.lhs.len() <= m);
            }
            for fd in &fds {
                println!("{}", fd.display_with(&names));
            }
            eprintln!("# {} minimal dependencies", fds.len());
            if opts.flag("stats") {
                eprintln!("# row pairs compared: {}", stats.pairs_compared);
                eprintln!("# distinct agree sets: {}", stats.distinct_agree_sets);
                eprintln!("# maximal invalid dependencies: {}", stats.max_invalid_deps);
                eprintln!("# time: {:.3}s", stats.elapsed.as_secs_f64());
            }
        }
        "naive" => {
            if epsilon > 0.0 {
                return Err("the naive baseline only discovers exact dependencies".into());
            }
            if top_k.is_some() {
                return Err("--top-k requires --algorithm tane".into());
            }
            if opts.flag("stream") {
                return Err("--stream requires --algorithm tane".into());
            }
            let m = max_lhs.unwrap_or(n_attrs);
            let (fds, stats) = tane_baselines::naive_levelwise_fds(&relation, m);
            for fd in &fds {
                println!("{}", fd.display_with(&names));
            }
            eprintln!("# {} minimal dependencies", fds.len());
            if opts.flag("stats") {
                eprintln!("# sets visited: {}", stats.sets_visited);
                eprintln!("# validity tests: {}", stats.validity_tests);
            }
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    }
    Ok(())
}

/// `tane patch` — the incremental path, end to end and offline: discover
/// on the base file (warming the engine's partition trackers), apply the
/// row delta, re-verify incrementally, print the post-patch dependencies.
fn patch(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(
        args,
        &[
            "append",
            "delete",
            "epsilon",
            "threads",
            "delimiter",
            "nulls",
        ],
    )?;
    let path = opts
        .positional
        .first()
        .ok_or("patch needs a base CSV file")?;
    let base = load(path, &opts)?;
    let nulls = csv_options(&opts)?.nulls;

    let epsilon: f64 = match opts.value("epsilon") {
        Some(e) => e.parse().map_err(|_| format!("bad epsilon `{e}`"))?,
        None => 0.0,
    };
    if !(0.0..=1.0).contains(&epsilon) {
        return Err(format!("epsilon must be in [0,1], got {epsilon}"));
    }
    let threads: usize = match opts.value("threads") {
        Some(t) => t.parse().map_err(|_| format!("bad thread count `{t}`"))?,
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    if threads == 0 {
        return Err("need at least one thread".into());
    }

    let mut delta = tane_relation::RowPatch::default();
    if let Some(list) = opts.value("delete") {
        for part in list.split(',').filter(|p| !p.is_empty()) {
            let i: usize = part
                .trim()
                .parse()
                .map_err(|_| format!("bad row index `{part}`"))?;
            delta.deletes.push(i);
        }
    }
    if let Some(file) = opts.value("append") {
        let rows = load(file, &opts)?;
        if rows.num_attrs() != base.num_attrs() {
            return Err(format!(
                "{file} has {} attributes, base has {}",
                rows.num_attrs(),
                base.num_attrs()
            ));
        }
        for t in 0..rows.num_rows() {
            let row: Option<Vec<_>> = (0..rows.num_attrs())
                .map(|a| rows.value(t, a).cloned())
                .collect();
            delta
                .appends
                .push(row.ok_or_else(|| format!("{file} carries no cell values"))?);
        }
    }
    if delta.is_empty() {
        return Err("nothing to do: give --append and/or --delete".into());
    }

    let engine = tane_delta::DatasetEngine::new(
        std::sync::Arc::new(base),
        nulls,
        tane_delta::EngineLimits::default(),
    )
    .map_err(|e| format!("base file: {e}"))?;
    let config = TaneConfig {
        threads,
        ..TaneConfig::default()
    };
    let quiet = |_: LevelEvent| {};
    // Warm run on the base rows: this is the "previous" discovery whose
    // partitions the engine keeps.
    let cold = if epsilon > 0.0 {
        let approx = ApproxTaneConfig {
            base: config.clone(),
            ..ApproxTaneConfig::new(epsilon)
        };
        engine.discover_approx_with(&approx, quiet)
    } else {
        engine.discover_exact_with(&config, quiet)
    }
    .map_err(|e| e.to_string())?;

    let outcome = engine.patch(&delta).map_err(|e| e.to_string())?;
    let merged = engine.merged();
    let names = merged.schema().names().to_vec();
    let result = if epsilon > 0.0 {
        let approx = ApproxTaneConfig {
            base: config,
            ..ApproxTaneConfig::new(epsilon)
        };
        engine.discover_approx_with(&approx, quiet)
    } else {
        engine.discover_exact_with(&config, quiet)
    }
    .map_err(|e| e.to_string())?;

    for fd in &result.fds {
        println!("{}", fd.display_with(&names));
    }
    eprintln!(
        "# {} minimal dependencies after the patch ({} rows, generation {})",
        result.fds.len(),
        outcome.rows,
        outcome.generation
    );
    if opts.flag("stats") {
        let s = &result.stats;
        eprintln!(
            "# appended/deleted: {}/{}",
            outcome.appended, outcome.deleted
        );
        eprintln!(
            "# partitions supplied by the engine: {}",
            s.partitions_supplied
        );
        eprintln!(
            "# partition products: {} (base run did {})",
            s.products, cold.stats.products
        );
        eprintln!("# validity tests: {}", s.validity_tests);
        eprintln!("# time: {:.3}s", s.elapsed.as_secs_f64());
    }
    Ok(())
}

fn dataset(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &["copies", "output", "o", "delimiter"])?;
    let name = opts.positional.first().ok_or_else(|| {
        format!(
            "dataset needs a name (one of: {})",
            tane_datasets::DATASET_NAMES.join(", ")
        )
    })?;
    let mut relation = tane_datasets::by_name(name).ok_or_else(|| {
        format!(
            "unknown dataset `{name}` (one of: {})",
            tane_datasets::DATASET_NAMES.join(", ")
        )
    })?;
    if let Some(copies) = opts.value("copies") {
        let copies: usize = copies
            .parse()
            .map_err(|_| format!("bad copies `{copies}`"))?;
        if copies == 0 {
            return Err("copies must be at least 1".into());
        }
        relation = relation
            .concat_disjoint_copies(copies)
            .map_err(|e| e.to_string())?;
    }
    let delimiter = b',';
    match opts.value("output").or_else(|| opts.value("o")) {
        Some(path) => {
            let file = std::fs::File::create(PathBuf::from(path))
                .map_err(|e| format!("creating {path}: {e}"))?;
            write_csv(&relation, file, delimiter).map_err(|e| e.to_string())?;
            eprintln!(
                "# wrote {} rows x {} attributes to {path}",
                relation.num_rows(),
                relation.num_attrs()
            );
        }
        None => {
            let stdout = std::io::stdout();
            write_csv(&relation, stdout.lock(), delimiter).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `tane lint [--json] [--baseline FILE | --write-baseline FILE]
/// [--symbols FILE] [PATHS...]` — the workspace static analyzer.
fn lint(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut baseline: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut symbols: Option<String> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--baseline" | "--write-baseline" | "--symbols" => {
                let v = it
                    .next()
                    .ok_or_else(|| format!("`{a}` needs a file argument"))?
                    .clone();
                match a.as_str() {
                    "--baseline" => baseline = Some(v),
                    "--write-baseline" => write_baseline = Some(v),
                    _ => symbols = Some(v),
                }
            }
            _ if a.starts_with('-') => return Err(format!("unknown lint flag `{a}`")),
            _ => paths.push(a.clone()),
        }
    }
    if baseline.is_some() && write_baseline.is_some() {
        return Err("`--baseline` and `--write-baseline` are mutually exclusive".to_string());
    }
    let cwd = std::env::current_dir().map_err(|e| format!("working directory: {e}"))?;
    let root = tane_lint::find_root(&cwd)
        .ok_or_else(|| format!("no workspace Cargo.toml found above {}", cwd.display()))?;
    let analysis = if paths.is_empty() {
        tane_lint::analyze_workspace(&root)
    } else {
        tane_lint::analyze_explicit(&root, &paths)
    }
    .map_err(|e| format!("lint walk: {e}"))?;
    let report = &analysis.report;
    if let Some(p) = symbols {
        std::fs::write(&p, analysis.graph.render_json())
            .map_err(|e| format!("cannot write symbol graph to {p}: {e}"))?;
    }
    if let Some(p) = write_baseline {
        std::fs::write(&p, tane_lint::baseline::render(report))
            .map_err(|e| format!("cannot write baseline to {p}: {e}"))?;
        eprintln!("baselined {} violation(s) to {p}", report.diagnostics.len());
        return Ok(());
    }
    if let Some(p) = baseline {
        // An unreadable or corrupt baseline is an operational error
        // (exit 2), never an empty set — silently treating it as empty
        // would pass every baselined violation as "new" or, worse, the
        // reverse. Matches the standalone `tane-lint` binary.
        let parsed = std::fs::read_to_string(&p)
            .map_err(|e| format!("cannot read baseline {p}: {e}"))
            .and_then(|text| tane_lint::baseline::parse(&text));
        let set = match parsed {
            Ok(set) => set,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let ratchet = tane_lint::baseline::apply(report, &set);
        let is_new = |d: &tane_lint::diag::Diagnostic| ratchet.new.contains(d);
        if json {
            println!("{}", report.render_json_ratchet(&is_new));
        } else {
            print!("{}", report.render_human_ratchet(&is_new));
        }
        return if ratchet.new.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} new lint violation(s) over the baseline",
                ratchet.new.len()
            ))
        };
    }
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.diagnostics.is_empty() {
        Ok(())
    } else {
        Err(format!("{} lint violation(s)", report.diagnostics.len()))
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    use std::io::Write;
    let opts = parse_opts(
        args,
        &[
            "port",
            "workers",
            "queue",
            "cache",
            "timeout",
            "max-conns",
            "conn-requests",
            "idle-timeout",
            "disk-quota-mb",
        ],
    )?;
    if let Some(extra) = opts.positional.first() {
        return Err(format!(
            "serve takes no positional arguments, got `{extra}`"
        ));
    }
    let port: u16 = match opts.value("port") {
        Some(p) => p.parse().map_err(|_| format!("bad port `{p}`"))?,
        None => 7171,
    };
    let mut config = tane_server::ServerConfig::default();
    if let Some(w) = opts.value("workers") {
        config.workers = w.parse().map_err(|_| format!("bad worker count `{w}`"))?;
        if config.workers == 0 {
            return Err("need at least one worker".into());
        }
    }
    if let Some(q) = opts.value("queue") {
        config.queue_capacity = q.parse().map_err(|_| format!("bad queue capacity `{q}`"))?;
    }
    if let Some(c) = opts.value("cache") {
        config.cache_capacity = c.parse().map_err(|_| format!("bad cache capacity `{c}`"))?;
    }
    if let Some(t) = opts.value("timeout") {
        let secs: u64 = t.parse().map_err(|_| format!("bad timeout `{t}`"))?;
        config.job_timeout = std::time::Duration::from_secs(secs);
    }
    if let Some(c) = opts.value("max-conns") {
        config.max_connections = c.parse().map_err(|_| format!("bad connection cap `{c}`"))?;
        if config.max_connections == 0 {
            return Err("need at least one connection slot".into());
        }
    }
    if let Some(r) = opts.value("conn-requests") {
        config.max_requests_per_conn = r
            .parse()
            .map_err(|_| format!("bad per-connection request cap `{r}`"))?;
        if config.max_requests_per_conn == 0 {
            return Err("need at least one request per connection".into());
        }
    }
    if let Some(t) = opts.value("idle-timeout") {
        let secs: u64 = t.parse().map_err(|_| format!("bad idle timeout `{t}`"))?;
        if secs == 0 {
            return Err("idle timeout must be at least 1 second".into());
        }
        config.idle_timeout = std::time::Duration::from_secs(secs);
    }
    if let Some(q) = opts.value("disk-quota-mb") {
        let mb: u64 = q.parse().map_err(|_| format!("bad disk quota `{q}`"))?;
        if mb == 0 {
            return Err("disk quota must be at least 1 MB".into());
        }
        config.disk_quota_bytes = mb << 20;
    }

    tane_server::install_signal_handlers();
    let workers = config.workers;
    let server = tane_server::Server::start(&format!("127.0.0.1:{port}"), config)
        .map_err(|e| format!("starting server: {e}"))?;
    // The exact line below is what scripts (and the e2e test) parse to find
    // the bound port, so it goes to stdout and is flushed immediately.
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    eprintln!(
        "# {workers} workers; POST /discover, GET /metrics; stop with SIGTERM or POST /shutdown"
    );
    server.wait();
    eprintln!("# server stopped");
    Ok(())
}

fn profile(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args, &["delimiter", "nulls"])?;
    let path = opts.positional.first().ok_or("profile needs a CSV file")?;
    let relation = load(path, &opts)?;
    println!("rows: {}", relation.num_rows());
    println!("attributes: {}", relation.num_attrs());
    for a in 0..relation.num_attrs() {
        let pi = tane_partition::StrippedPartition::from_column(relation.column_codes(a));
        println!(
            "  {:<24} distinct={:<8} e(A)={:.4}{}",
            relation.schema().name(a),
            relation.cardinality(a),
            pi.error(),
            if pi.is_superkey() { "  [key]" } else { "" }
        );
    }
    Ok(())
}
