#![forbid(unsafe_code)]
//! Oracle and baseline algorithms for FD discovery.
//!
//! This crate serves two purposes:
//!
//! 1. **Correctness oracle** ([`brute_force`], [`verify`]) — a direct,
//!    definitional implementation of (approximate) FD discovery with no
//!    pruning or clever data structures. Slow, obviously correct, and used
//!    by the test suites of every other crate to validate TANE and FDEP on
//!    thousands of random relations.
//! 2. **Comparison baselines** ([`levelwise_naive`]) — a levelwise searcher
//!    in the style the paper attributes to Bell & Brockhausen \[1\] and
//!    Schlimmer \[18\]: same lattice traversal as TANE, but validity is
//!    tested by re-grouping rows from scratch (no partition products, no
//!    rhs⁺ candidate sets, no key pruning). Used by the ablation benches to
//!    quantify how much each TANE ingredient buys.

pub mod brute_force;
pub mod levelwise_naive;
pub mod verify;

pub use brute_force::{brute_force_approx_fds, brute_force_fds, fd_g3_rows, fd_holds};
pub use levelwise_naive::{naive_levelwise_fds, NaiveStats};
pub use verify::{verify_minimal_cover, CoverIssue};
