//! Validation of discovered dependency sets.
//!
//! [`verify_minimal_cover`] checks the three properties the paper's problem
//! statement demands of an algorithm's output (Section 1): every reported
//! dependency **holds**, every reported dependency is **minimal**, and the
//! output is **complete** (no minimal dependency is missing). Completeness
//! is checked against the brute-force oracle, so this is only meant for
//! test-sized relations.

use crate::brute_force::{brute_force_approx_fds, brute_force_fds, fd_g3_rows, fd_holds};
use tane_relation::Relation;
use tane_util::{canonical_fds, Fd};

/// A defect found in a claimed minimal cover.
#[derive(Debug, Clone, PartialEq)]
pub enum CoverIssue {
    /// A reported dependency does not hold (or exceeds the `g3` threshold).
    NotValid(Fd),
    /// A reported dependency is trivial (`A ∈ X`).
    Trivial(Fd),
    /// A reported dependency is not minimal: the contained witness subset is
    /// also valid.
    NotMinimal(Fd, Fd),
    /// A minimal dependency is missing from the output.
    Missing(Fd),
    /// The same dependency was reported more than once.
    Duplicate(Fd),
}

impl std::fmt::Display for CoverIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoverIssue::NotValid(fd) => write!(f, "reported dependency {fd} does not hold"),
            CoverIssue::Trivial(fd) => write!(f, "reported dependency {fd} is trivial"),
            CoverIssue::NotMinimal(fd, witness) => {
                write!(
                    f,
                    "reported dependency {fd} is not minimal ({witness} also holds)"
                )
            }
            CoverIssue::Missing(fd) => write!(f, "minimal dependency {fd} is missing"),
            CoverIssue::Duplicate(fd) => write!(f, "dependency {fd} reported twice"),
        }
    }
}

/// Checks that `claimed` is exactly the set of minimal non-trivial
/// (approximate) dependencies of `relation` with LHS size ≤ `max_lhs`.
/// `epsilon = 0.0` checks exact FDs. Returns all defects found (empty =
/// perfect).
pub fn verify_minimal_cover(
    relation: &Relation,
    claimed: &[Fd],
    max_lhs: usize,
    epsilon: f64,
) -> Vec<CoverIssue> {
    let mut issues = Vec::new();
    let n = relation.num_rows();
    let valid = |fd: &Fd| -> bool {
        if epsilon == 0.0 {
            fd_holds(relation, fd.lhs, fd.rhs)
        } else if n == 0 {
            true
        } else {
            (fd_g3_rows(relation, fd.lhs, fd.rhs) as f64 / n as f64) <= epsilon
        }
    };

    let canon = canonical_fds(claimed.to_vec());
    if canon.len() != claimed.len() {
        // Find one duplicated fd for the report.
        let mut seen = std::collections::BTreeSet::new();
        for fd in claimed {
            if !seen.insert(*fd) {
                issues.push(CoverIssue::Duplicate(*fd));
            }
        }
    }

    for fd in &canon {
        if fd.is_trivial() {
            issues.push(CoverIssue::Trivial(*fd));
            continue;
        }
        if !valid(fd) {
            issues.push(CoverIssue::NotValid(*fd));
            continue;
        }
        for (_, sub) in fd.lhs.proper_subsets_one_smaller() {
            let witness = Fd::new(sub, fd.rhs);
            if valid(&witness) {
                issues.push(CoverIssue::NotMinimal(*fd, witness));
                break;
            }
        }
    }

    let expected = if epsilon == 0.0 {
        brute_force_fds(relation, max_lhs)
    } else {
        brute_force_approx_fds(relation, max_lhs, epsilon)
    };
    for fd in &expected {
        if !canon.contains(fd) {
            issues.push(CoverIssue::Missing(*fd));
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::Schema;
    use tane_util::AttrSet;

    fn two_col() -> Relation {
        // A determines B; B is a key for nothing (B has duplicates).
        let schema = Schema::new(["A", "B"]).unwrap();
        Relation::from_codes(schema, vec![vec![0, 0, 1, 2], vec![5, 5, 6, 5]]).unwrap()
    }

    #[test]
    fn perfect_cover_passes() {
        let r = two_col();
        let expected = brute_force_fds(&r, 2);
        assert!(verify_minimal_cover(&r, &expected, 2, 0.0).is_empty());
    }

    #[test]
    fn missing_dependency_detected() {
        let r = two_col();
        let mut fds = brute_force_fds(&r, 2);
        let dropped = fds.pop().unwrap();
        let issues = verify_minimal_cover(&r, &fds, 2, 0.0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CoverIssue::Missing(fd) if *fd == dropped)));
    }

    #[test]
    fn invalid_dependency_detected() {
        let r = two_col();
        let mut fds = brute_force_fds(&r, 2);
        fds.push(Fd::new(AttrSet::singleton(1), 0)); // {B} → A does not hold
        let issues = verify_minimal_cover(&r, &fds, 2, 0.0);
        assert!(issues.iter().any(|i| matches!(i, CoverIssue::NotValid(_))));
    }

    #[test]
    fn non_minimal_dependency_detected() {
        let r = two_col();
        let mut fds = brute_force_fds(&r, 2);
        fds.push(Fd::new(AttrSet::from_indices([0, 1]), 1)); // trivial
        let issues = verify_minimal_cover(&r, &fds, 2, 0.0);
        assert!(issues.iter().any(|i| matches!(i, CoverIssue::Trivial(_))));

        // {A,B} → … with A → B already valid: non-minimal and trivially
        // constructed on a 3-column relation.
        let schema = Schema::new(["A", "B", "C"]).unwrap();
        let r3 = Relation::from_codes(schema, vec![vec![0, 1, 2], vec![0, 0, 1], vec![0, 1, 0]])
            .unwrap();
        let mut fds = brute_force_fds(&r3, 3);
        fds.push(Fd::new(AttrSet::from_indices([0, 1]), 2)); // A alone is a key
        let issues = verify_minimal_cover(&r3, &fds, 3, 0.0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CoverIssue::NotMinimal(..))));
    }

    #[test]
    fn duplicate_detected() {
        let r = two_col();
        let mut fds = brute_force_fds(&r, 2);
        let dup = fds[0];
        fds.push(dup);
        let issues = verify_minimal_cover(&r, &fds, 2, 0.0);
        assert!(issues
            .iter()
            .any(|i| matches!(i, CoverIssue::Duplicate(fd) if *fd == dup)));
    }

    #[test]
    fn approximate_cover_verified_against_threshold() {
        let r = two_col();
        let eps = 0.25;
        let expected = brute_force_approx_fds(&r, 2, eps);
        assert!(verify_minimal_cover(&r, &expected, 2, eps).is_empty());
        // The exact cover is generally *wrong* for ε > 0 (missing approx FDs
        // or including now-non-minimal ones).
        let exact = brute_force_fds(&r, 2);
        if exact != expected {
            assert!(!verify_minimal_cover(&r, &exact, 2, eps).is_empty());
        }
    }

    #[test]
    fn issue_messages_render() {
        let fd = Fd::new(AttrSet::singleton(0), 1);
        assert!(CoverIssue::NotValid(fd)
            .to_string()
            .contains("does not hold"));
        assert!(CoverIssue::Missing(fd).to_string().contains("missing"));
        assert!(CoverIssue::Duplicate(fd).to_string().contains("twice"));
        assert!(CoverIssue::Trivial(fd).to_string().contains("trivial"));
        assert!(CoverIssue::NotMinimal(fd, fd)
            .to_string()
            .contains("not minimal"));
    }
}
