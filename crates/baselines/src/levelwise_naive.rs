//! A naive levelwise searcher: the pre-TANE baseline.
//!
//! This is the algorithm family the paper attributes to Bell & Brockhausen
//! \[1\] and (modulo the decision-tree validity test) Schlimmer \[18\]:
//! the same breadth-first walk over the set-containment lattice as TANE,
//! with minimality bookkeeping via plain rhs-candidate sets `C(X)` — but
//!
//! * validity of `X → A` is tested by **re-grouping the rows on `X` from
//!   scratch** (hashing the projected tuples), instead of maintaining
//!   partitions and multiplying them, and
//! * there is **no rhs⁺ pruning and no key pruning**, so the searched part
//!   of the lattice is strictly larger.
//!
//! The ablation benches run this against TANE on the same datasets to show
//! where the paper's speedups come from.

use tane_relation::Relation;
use tane_util::{canonical_fds, AttrSet, Fd, FxHashMap};

/// Search statistics reported alongside the result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Attribute sets visited (the paper's `s`).
    pub sets_visited: usize,
    /// Validity tests performed, each a full O(|r|) grouping pass.
    pub validity_tests: usize,
    /// Deepest lattice level reached.
    pub levels: usize,
}

/// Discovers all minimal non-trivial FDs with LHS size ≤ `max_lhs` using the
/// naive levelwise strategy. Returns the dependencies and search statistics.
pub fn naive_levelwise_fds(relation: &Relation, max_lhs: usize) -> (Vec<Fd>, NaiveStats) {
    let n_attrs = relation.num_attrs();
    let r_all = AttrSet::full(n_attrs);
    let mut stats = NaiveStats::default();
    let mut found: Vec<Fd> = Vec::new();

    // C(X) per current-level set: A ∈ C(X) iff X\{A} → A does not hold
    // (for A ∈ X) plus all of R \ X.
    let mut level: Vec<AttrSet> = vec![AttrSet::empty()];
    let mut cands: FxHashMap<AttrSet, AttrSet> = FxHashMap::default();
    cands.insert(AttrSet::empty(), r_all);

    let mut depth = 0usize;
    while !level.is_empty() && depth <= max_lhs {
        // Generate next level; level 1 (singletons) is seeded directly since
        // the prefix join cannot produce it from the empty set.
        let next: Vec<AttrSet> = if depth == 0 {
            (0..n_attrs).map(AttrSet::singleton).collect()
        } else {
            generate_next(&level)
        };
        depth += 1;
        let mut next_cands: FxHashMap<AttrSet, AttrSet> = FxHashMap::default();
        for &x in &next {
            stats.sets_visited += 1;
            // C(X) starts from the intersection of parents' candidates.
            let mut cx = r_all;
            for (_, parent) in x.proper_subsets_one_smaller() {
                match cands.get(&parent) {
                    Some(&c) => cx &= c,
                    None => {
                        cx = AttrSet::empty();
                        break;
                    }
                }
            }
            let mut cx_out = cx;
            for a in x.intersect(cx).iter() {
                stats.validity_tests += 1;
                if grouping_fd_holds(relation, x.without(a), a) {
                    found.push(Fd::new(x.without(a), a));
                    cx_out.remove(a);
                }
            }
            // Plain C(X) keeps R \ X (no rhs⁺ narrowing — that is TANE's
            // line 8 improvement).
            next_cands.insert(x, cx_out);
        }
        // Keep only sets whose candidate set is non-empty: supersets of a
        // set with C(X) = ∅ can never yield minimal dependencies (paper,
        // Section 4, first pruning rule — even the naive baseline needs this
        // to terminate the lattice early enough to be runnable).
        level = next
            .into_iter()
            .filter(|x| !next_cands.get(x).copied().unwrap_or_default().is_empty())
            .collect();
        cands = next_cands;
        stats.levels = depth;
    }
    (canonical_fds(found), stats)
}

/// Apriori candidate generation: all (ℓ+1)-sets whose ℓ-subsets are all in
/// the current level.
fn generate_next(level: &[AttrSet]) -> Vec<AttrSet> {
    use std::collections::BTreeSet;
    let present: BTreeSet<AttrSet> = level.iter().copied().collect();
    let mut out = BTreeSet::new();
    if level.first().is_some_and(|x| x.is_empty()) {
        // Level 0 → singletons over all attributes mentioned anywhere; the
        // caller seeds with the empty set, so synthesize singletons from the
        // candidate map instead: handled by the caller passing level 0 only
        // once. Here we simply enumerate all singletons of the widest set
        // seen so far, which for level 0 is every attribute.
        return Vec::new();
    }
    for (i, &x) in level.iter().enumerate() {
        for &y in &level[i + 1..] {
            // Prefix join: differ only in their maximum attribute.
            let mx = x.max_attr().unwrap();
            let my = y.max_attr().unwrap();
            if x.without(mx) != y.without(my) || mx == my {
                continue;
            }
            let candidate = x.union(y);
            if candidate
                .proper_subsets_one_smaller()
                .all(|(_, sub)| present.contains(&sub))
            {
                out.insert(candidate);
            }
        }
    }
    out.into_iter().collect()
}

/// Validity by full re-grouping — the expensive part of the baseline.
#[allow(clippy::needless_range_loop)] // rows index several columns at once
fn grouping_fd_holds(relation: &Relation, lhs: AttrSet, rhs: usize) -> bool {
    let mut witness: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let rhs_codes = relation.column_codes(rhs);
    for t in 0..relation.num_rows() {
        let key: Vec<u32> = lhs.iter().map(|a| relation.column_codes(a)[t]).collect();
        match witness.get(&key) {
            Some(&w) => {
                if w != rhs_codes[t] {
                    return false;
                }
            }
            None => {
                witness.insert(key, rhs_codes[t]);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::brute_force_fds;
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn level1_is_generated_from_empty_set() {
        // generate_next on [∅] returns empty by design; the driver must seed
        // singletons itself. This test pins that contract.
        assert!(generate_next(&[AttrSet::empty()]).is_empty());
    }

    #[test]
    fn matches_brute_force_on_figure1() {
        let r = figure1();
        let (fds, stats) = naive_levelwise_fds(&r, 4);
        assert_eq!(fds, brute_force_fds(&r, 4));
        assert!(stats.sets_visited > 0);
        assert!(stats.validity_tests > 0);
    }

    #[test]
    fn respects_max_lhs() {
        let r = figure1();
        let (fds, _) = naive_levelwise_fds(&r, 1);
        assert!(fds.iter().all(|fd| fd.lhs.len() <= 1));
        assert_eq!(fds, brute_force_fds(&r, 1));
    }

    #[test]
    fn empty_relation() {
        let r = Relation::builder(Schema::new(["A", "B"]).unwrap()).build();
        let (fds, _) = naive_levelwise_fds(&r, 2);
        assert_eq!(fds, brute_force_fds(&r, 2));
    }

    #[test]
    fn single_attribute() {
        let schema = Schema::new(["A"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![0, 0, 0]]).unwrap();
        let (fds, _) = naive_levelwise_fds(&r, 1);
        assert_eq!(fds, vec![Fd::new(AttrSet::empty(), 0)]);
    }
}
