//! Definitional FD discovery: the oracle.
//!
//! Everything here follows Section 1 of the paper verbatim, with no pruning
//! beyond minimality itself. Complexity is exponential in `|R|` and
//! quadratic-ish in `|r|`, which is fine for the ≤ 10-attribute random
//! relations the test suites use.

use tane_relation::Relation;
use tane_util::{canonical_fds, AttrSet, Fd, FxHashMap};

/// `true` iff `X → A` holds in `r`: all row pairs agreeing on `X` agree on
/// `A`. Implemented by grouping rows on their `X`-projection.
#[allow(clippy::needless_range_loop)] // rows index several columns at once
pub fn fd_holds(relation: &Relation, lhs: AttrSet, rhs: usize) -> bool {
    let mut witness: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let rhs_codes = relation.column_codes(rhs);
    for t in 0..relation.num_rows() {
        let key: Vec<u32> = lhs.iter().map(|a| relation.column_codes(a)[t]).collect();
        match witness.get(&key) {
            Some(&a_code) => {
                if a_code != rhs_codes[t] {
                    return false;
                }
            }
            None => {
                witness.insert(key, rhs_codes[t]);
            }
        }
    }
    true
}

/// `g3(X → A) · |r|`: the minimum number of rows to remove for the
/// dependency to hold, computed from the definition (group on `X`, keep the
/// plurality `A`-value in each group).
#[allow(clippy::needless_range_loop)] // rows index several columns at once
pub fn fd_g3_rows(relation: &Relation, lhs: AttrSet, rhs: usize) -> usize {
    // group key → (group size, per-A-code counts)
    let mut groups: FxHashMap<Vec<u32>, FxHashMap<u32, usize>> = FxHashMap::default();
    let rhs_codes = relation.column_codes(rhs);
    for t in 0..relation.num_rows() {
        let key: Vec<u32> = lhs.iter().map(|a| relation.column_codes(a)[t]).collect();
        *groups
            .entry(key)
            .or_default()
            .entry(rhs_codes[t])
            .or_insert(0) += 1;
    }
    let mut removed = 0usize;
    for counts in groups.values() {
        let total: usize = counts.values().sum();
        let keep = counts.values().copied().max().unwrap_or(0);
        removed += total - keep;
    }
    removed
}

/// All minimal non-trivial functional dependencies of `r`, by exhaustive
/// search in increasing LHS size. `max_lhs` caps the LHS size (use
/// `relation.num_attrs()` for no cap, matching the paper's unrestricted
/// runs).
pub fn brute_force_fds(relation: &Relation, max_lhs: usize) -> Vec<Fd> {
    brute_force_generic(relation, max_lhs, fd_holds)
}

/// All minimal non-trivial approximate dependencies with
/// `g3(X → A) ≤ epsilon` (paper, Section 1).
pub fn brute_force_approx_fds(relation: &Relation, max_lhs: usize, epsilon: f64) -> Vec<Fd> {
    let n = relation.num_rows();
    brute_force_generic(relation, max_lhs, move |r, lhs, rhs| {
        if n == 0 {
            true
        } else {
            (fd_g3_rows(r, lhs, rhs) as f64 / n as f64) <= epsilon
        }
    })
}

#[allow(clippy::needless_range_loop)] // rhs sweeps every attribute per lhs
fn brute_force_generic<F>(relation: &Relation, max_lhs: usize, valid: F) -> Vec<Fd>
where
    F: Fn(&Relation, AttrSet, usize) -> bool,
{
    let n_attrs = relation.num_attrs();
    let mut found: Vec<Fd> = Vec::new();
    // For each rhs, the valid minimal LHSs discovered so far (for the
    // minimality filter).
    let mut minimal_lhs: Vec<Vec<AttrSet>> = vec![Vec::new(); n_attrs];

    for size in 0..=max_lhs.min(n_attrs.saturating_sub(1)) {
        for lhs in subsets_of_size(n_attrs, size) {
            for rhs in 0..n_attrs {
                if lhs.contains(rhs) {
                    continue;
                }
                if minimal_lhs[rhs].iter().any(|&m| m.is_subset_of(lhs)) {
                    continue; // not minimal
                }
                if valid(relation, lhs, rhs) {
                    minimal_lhs[rhs].push(lhs);
                    found.push(Fd::new(lhs, rhs));
                }
            }
        }
    }
    canonical_fds(found)
}

/// All subsets of `{0..n_attrs}` with exactly `size` members, ascending.
fn subsets_of_size(n_attrs: usize, size: usize) -> Vec<AttrSet> {
    let mut out = Vec::new();
    let mut current = AttrSet::empty();
    fn rec(out: &mut Vec<AttrSet>, current: &mut AttrSet, next: usize, n: usize, left: usize) {
        if left == 0 {
            out.push(*current);
            return;
        }
        if n - next < left {
            return;
        }
        for a in next..n {
            current.insert(a);
            rec(out, current, a + 1, n, left - 1);
            current.remove(a);
        }
    }
    rec(&mut out, &mut current, 0, n_attrs, size);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{Schema, Value};

    fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn fd_holds_on_figure1() {
        let r = figure1();
        // {B,C} → A holds (paper Example 2); {A} → B does not.
        assert!(fd_holds(&r, AttrSet::from_indices([1, 2]), 0));
        assert!(!fd_holds(&r, AttrSet::singleton(0), 1));
        // D is almost a key: {D} → A fails only via the Flower duplicates.
        assert!(!fd_holds(&r, AttrSet::singleton(3), 0));
    }

    #[test]
    fn g3_rows_on_figure1() {
        let r = figure1();
        // {A} → B needs 3 removals (one per A-class).
        assert_eq!(fd_g3_rows(&r, AttrSet::singleton(0), 1), 3);
        // A valid FD needs none.
        assert_eq!(fd_g3_rows(&r, AttrSet::from_indices([1, 2]), 0), 0);
        // ∅ → A keeps the plurality value of A (3 rows of '2'|'3'): removes 5.
        assert_eq!(fd_g3_rows(&r, AttrSet::empty(), 0), 5);
    }

    #[test]
    fn minimal_fds_of_figure1_are_minimal_and_valid() {
        let r = figure1();
        let fds = brute_force_fds(&r, 4);
        assert!(!fds.is_empty());
        for fd in &fds {
            assert!(!fd.is_trivial());
            assert!(fd_holds(&r, fd.lhs, fd.rhs), "{fd} must hold");
            for (_, sub) in fd.lhs.proper_subsets_one_smaller() {
                assert!(!fd_holds(&r, sub, fd.rhs), "{fd} must be minimal");
            }
        }
        // {B,C} → A is among them.
        assert!(fds.contains(&Fd::new(AttrSet::from_indices([1, 2]), 0)));
        // And no non-minimal variant is.
        assert!(!fds.contains(&Fd::new(AttrSet::from_indices([1, 2, 3]), 0)));
    }

    #[test]
    fn approx_fds_grow_with_epsilon_at_small_thresholds() {
        let r = figure1();
        let exact = brute_force_fds(&r, 4);
        let eps0 = brute_force_approx_fds(&r, 4, 0.0);
        assert_eq!(exact, eps0);
        // ε = 3/8 admits {A} → B, which needs 3 of 8 rows removed.
        let eps = brute_force_approx_fds(&r, 4, 3.0 / 8.0);
        assert!(eps.contains(&Fd::new(AttrSet::singleton(0), 1)));
    }

    #[test]
    fn max_lhs_limits_output() {
        let r = figure1();
        let all = brute_force_fds(&r, 4);
        let limited = brute_force_fds(&r, 1);
        assert!(limited.iter().all(|fd| fd.lhs.len() <= 1));
        assert!(limited.len() <= all.len());
        // Every size-≤1 FD in the full output appears in the limited one.
        for fd in all.iter().filter(|fd| fd.lhs.len() <= 1) {
            assert!(limited.contains(fd));
        }
    }

    #[test]
    fn empty_relation_every_fd_holds_vacuously() {
        let r = Relation::builder(Schema::new(["A", "B"]).unwrap()).build();
        let fds = brute_force_fds(&r, 2);
        // ∅ → A and ∅ → B hold vacuously and are the minimal cover.
        assert_eq!(
            fds,
            vec![Fd::new(AttrSet::empty(), 0), Fd::new(AttrSet::empty(), 1)]
        );
    }

    #[test]
    fn constant_column_is_determined_by_empty_set() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![7, 7, 7], vec![0, 1, 2]]).unwrap();
        let fds = brute_force_fds(&r, 2);
        assert!(fds.contains(&Fd::new(AttrSet::empty(), 0)));
        // B is a key, so {B} → A would hold but is shadowed by ∅ → A;
        // and A is constant so {A} → B cannot hold (B varies).
        assert!(!fds.iter().any(|fd| fd.rhs == 0 && !fd.lhs.is_empty()));
    }

    #[test]
    fn subsets_of_size_enumeration() {
        assert_eq!(subsets_of_size(4, 0), vec![AttrSet::empty()]);
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(4, 4).len(), 1);
        assert_eq!(subsets_of_size(3, 5).len(), 0);
        // All distinct, all the right size.
        let s = subsets_of_size(6, 3);
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|x| x.len() == 3));
    }

    #[test]
    fn single_attribute_relation_has_constant_or_no_fds() {
        let schema = Schema::new(["A"]).unwrap();
        let constant = Relation::from_codes(schema.clone(), vec![vec![1, 1]]).unwrap();
        assert_eq!(
            brute_force_fds(&constant, 1),
            vec![Fd::new(AttrSet::empty(), 0)]
        );
        let varying = Relation::from_codes(schema, vec![vec![1, 2]]).unwrap();
        assert!(brute_force_fds(&varying, 1).is_empty());
    }
}
