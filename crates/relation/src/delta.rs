//! Mutable row storage for incremental discovery: the write path of the
//! LSM-style delta engine (`tane-delta`).
//!
//! A [`DeltaStore`] wraps a dictionary-encoded base relation and absorbs
//! [`RowPatch`]es — appended rows and deleted row indices — while keeping
//! the dictionary codes **stable**: a value that ever received a code keeps
//! it for the lifetime of the store, across any number of deletes and
//! re-appends. Stability is the property the incremental partition trackers
//! in `tane-delta` rely on: a singleton attribute's current code column *is*
//! a valid label vector for its partition in every generation, so appended
//! rows can be classified in O(1) against memoized label pairs instead of
//! re-partitioning the relation (see DESIGN §11).
//!
//! The store also tracks the delta since the last *checkpoint* (the last
//! time a consumer synchronized with it) as a survivor map plus an appended
//! suffix, which is exactly the shape the partition trackers need to update
//! themselves in O(|rows| + |delta|).

use crate::error::RelationError;
use crate::relation::{NullSemantics, Relation};
use crate::schema::Schema;
use crate::value::Value;
use tane_util::FxHashMap;

/// One batch of row mutations. Deletes refer to **pre-patch** current row
/// indices and are applied before the appends.
#[derive(Debug, Clone, Default)]
pub struct RowPatch {
    /// Current (0-based) row indices to remove.
    pub deletes: Vec<usize>,
    /// Rows to append, each matching the schema's arity.
    pub appends: Vec<Vec<Value>>,
}

impl RowPatch {
    /// `true` when the patch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.deletes.is_empty() && self.appends.is_empty()
    }

    /// Rows touched — the size measure bounded by the server's patch cap.
    pub fn rows_touched(&self) -> usize {
        self.deletes.len() + self.appends.len()
    }
}

/// The composed delta since the last [`DeltaStore::checkpoint`]: current
/// rows `0..survivors.len()` are checkpoint rows (`survivors[i]` is row
/// `i`'s index *at the checkpoint*), and every current row from
/// `survivors.len()` on was appended since.
#[derive(Debug, Clone)]
pub struct DeltaView {
    /// For each surviving checkpoint row, its index at checkpoint time,
    /// in (preserved) row order.
    pub survivors: Vec<u32>,
    /// Total rows at the checkpoint.
    pub checkpoint_rows: usize,
}

impl DeltaView {
    /// `true` when nothing changed since the checkpoint — every checkpoint
    /// row survived (in place) and nothing was appended yet. The appended
    /// count lives with the store (`current_rows - survivors.len()`).
    pub fn no_deletes(&self) -> bool {
        self.survivors.len() == self.checkpoint_rows
    }
}

/// Mutable, dictionary-encoded row storage with stable codes.
///
/// Built from a base [`Relation`] that retains its value dictionaries
/// (i.e. one built row-wise from [`Value`]s — CSV uploads qualify,
/// [`Relation::from_codes`] relations do not).
pub struct DeltaStore {
    schema: Schema,
    nulls: NullSemantics,
    /// Per attribute: value → stable code. Never shrinks.
    dicts: Vec<FxHashMap<Value, u32>>,
    /// Per attribute: the next never-used code.
    next_code: Vec<u32>,
    /// Per attribute: the stable codes of the *current* rows.
    columns: Vec<Vec<u32>>,
    /// Checkpoint-relative survivor map (see [`DeltaView`]).
    survivors: Vec<u32>,
    checkpoint_rows: usize,
    generation: u64,
}

impl DeltaStore {
    /// Wraps `base` for mutation. `nulls` must match the semantics the base
    /// was built with (the server and CLI both ingest CSV with
    /// [`NullSemantics::NullsEqual`]).
    ///
    /// # Errors
    ///
    /// [`RelationError::ValuesUnavailable`] when the base relation carries
    /// no value dictionaries (built via [`Relation::from_codes`]).
    pub fn from_relation(
        base: &Relation,
        nulls: NullSemantics,
    ) -> Result<DeltaStore, RelationError> {
        let n_attrs = base.num_attrs();
        let n_rows = base.num_rows();
        let mut dicts: Vec<FxHashMap<Value, u32>> = vec![FxHashMap::default(); n_attrs];
        let mut next_code = vec![0u32; n_attrs];
        let mut columns = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            let codes = base.column_codes(a).to_vec();
            for (t, &code) in codes.iter().enumerate() {
                let value = base
                    .value(t, a)
                    .ok_or(RelationError::ValuesUnavailable)?
                    .clone();
                next_code[a] = next_code[a].max(code.saturating_add(1));
                // Under NullsDistinct every missing cell already has its own
                // code; keeping them out of the dictionary preserves that for
                // appended nulls (each gets a fresh code below).
                if matches!(value, Value::Missing) && nulls == NullSemantics::NullsDistinct {
                    continue;
                }
                dicts[a].entry(value).or_insert(code);
            }
            columns.push(codes);
        }
        Ok(DeltaStore {
            schema: base.schema().clone(),
            nulls,
            dicts,
            next_code,
            columns,
            survivors: (0..n_rows as u32).collect(),
            checkpoint_rows: n_rows,
            generation: 0,
        })
    }

    /// Current row count.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Attribute count (fixed — patches never change the schema).
    pub fn num_attrs(&self) -> usize {
        self.schema.len()
    }

    /// The (immutable) schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Bumped by every non-empty applied patch.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The current stable-code column of attribute `a` — a valid partition
    /// label vector for the singleton `{a}` in this generation.
    pub fn column(&self, a: usize) -> &[u32] {
        &self.columns[a]
    }

    /// Rows the delta buffer currently holds against the checkpoint:
    /// appended rows plus deleted checkpoint rows.
    pub fn buffered_rows(&self) -> usize {
        let appended = self.num_rows() - self.survivors.len();
        let deleted = self.checkpoint_rows - self.survivors.len();
        appended + deleted
    }

    /// The composed delta since the last checkpoint.
    pub fn delta_view(&self) -> DeltaView {
        DeltaView {
            survivors: self.survivors.clone(),
            checkpoint_rows: self.checkpoint_rows,
        }
    }

    /// Declares the current state synchronized: subsequent [`delta_view`]s
    /// are relative to now. Called by the engine after its trackers caught
    /// up (the LSM "flush" of the delta buffer into the levels).
    ///
    /// [`delta_view`]: DeltaStore::delta_view
    pub fn checkpoint(&mut self) {
        self.survivors = (0..self.num_rows() as u32).collect();
        self.checkpoint_rows = self.num_rows();
    }

    /// Applies one patch: deletes first (pre-patch indices), then appends.
    /// The whole patch is validated before any mutation, so an `Err` leaves
    /// the store unchanged.
    ///
    /// # Errors
    ///
    /// [`RelationError::RowOutOfRange`] for a delete index past the current
    /// rows, [`RelationError::ArityMismatch`] for an appended row of the
    /// wrong width, [`RelationError::DictionaryOverflow`] when a column
    /// exhausts `u32` codes.
    pub fn apply(&mut self, patch: &RowPatch) -> Result<(), RelationError> {
        let n = self.num_rows();
        for &d in &patch.deletes {
            if d >= n {
                return Err(RelationError::RowOutOfRange { index: d, rows: n });
            }
        }
        for (i, row) in patch.appends.iter().enumerate() {
            if row.len() != self.num_attrs() {
                return Err(RelationError::ArityMismatch {
                    row: i,
                    expected: self.num_attrs(),
                    got: row.len(),
                });
            }
        }
        if patch.is_empty() {
            return Ok(());
        }

        if !patch.deletes.is_empty() {
            let mut deleted = vec![false; n];
            for &d in &patch.deletes {
                deleted[d] = true;
            }
            for col in &mut self.columns {
                let mut w = 0usize;
                for r in 0..n {
                    if !deleted[r] {
                        col[w] = col[r];
                        w += 1;
                    }
                }
                col.truncate(w);
            }
            // Row order is preserved, so surviving checkpoint rows stay a
            // prefix and the appended suffix stays a suffix.
            let mut kept = Vec::with_capacity(self.survivors.len());
            for (r, &orig) in self.survivors.iter().enumerate() {
                if !deleted[r] {
                    kept.push(orig);
                }
            }
            self.survivors = kept;
        }

        for row in &patch.appends {
            for (a, value) in row.iter().enumerate() {
                let code = self.encode(a, value)?;
                self.columns[a].push(code);
            }
        }
        self.generation += 1;
        Ok(())
    }

    /// The stable code for `value` in column `a`, allocating a fresh one on
    /// first sight (and for every missing cell under `NullsDistinct`).
    fn encode(&mut self, a: usize, value: &Value) -> Result<u32, RelationError> {
        let fresh = matches!(value, Value::Missing) && self.nulls == NullSemantics::NullsDistinct;
        if !fresh {
            if let Some(&code) = self.dicts[a].get(value) {
                return Ok(code);
            }
        }
        let code = self.next_code[a];
        self.next_code[a] =
            code.checked_add(1)
                .ok_or_else(|| RelationError::DictionaryOverflow {
                    attribute: self.schema.name(a).to_string(),
                })?;
        if !fresh {
            self.dicts[a].insert(value.clone(), code);
        }
        Ok(code)
    }

    /// Materializes the current generation as an immutable [`Relation`]
    /// (stable, possibly non-dense codes — [`Relation::from_codes`] accepts
    /// that). Agreement structure, and therefore every discovered
    /// dependency, is identical to re-ingesting the merged rows from
    /// scratch; the content hash differs because the codes do.
    pub fn materialize(&self) -> Result<Relation, RelationError> {
        Relation::from_codes(self.schema.clone(), self.columns.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Relation {
        let mut b = Relation::builder(Schema::new(["A", "B"]).unwrap());
        for row in [["x", "1"], ["y", "2"], ["x", "2"]] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn codes_stay_stable_across_delete_and_reappend() {
        let r = base();
        let mut s = DeltaStore::from_relation(&r, NullSemantics::NullsEqual).unwrap();
        let code_x = s.column(0)[0];
        // Delete every row holding "x", then append "x" again: same code.
        s.apply(&RowPatch {
            deletes: vec![0, 2],
            appends: vec![vec![Value::from("x"), Value::from("3")]],
        })
        .unwrap();
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.column(0)[1], code_x, "re-appended value keeps its code");
        // A brand-new value gets a code above everything seen before.
        s.apply(&RowPatch {
            deletes: vec![],
            appends: vec![vec![Value::from("z"), Value::from("1")]],
        })
        .unwrap();
        let code_z = *s.column(0).last().unwrap();
        assert!(code_z >= 2, "fresh codes never collide with old ones");
    }

    #[test]
    fn delta_view_composes_across_patches() {
        let r = base();
        let mut s = DeltaStore::from_relation(&r, NullSemantics::NullsEqual).unwrap();
        assert!(s.delta_view().no_deletes());
        assert_eq!(s.buffered_rows(), 0);
        s.apply(&RowPatch {
            deletes: vec![1],
            appends: vec![vec![Value::from("w"), Value::from("9")]],
        })
        .unwrap();
        // Patch 2 deletes the row appended by patch 1 (current index 2).
        s.apply(&RowPatch {
            deletes: vec![2],
            appends: vec![vec![Value::from("v"), Value::from("8")]],
        })
        .unwrap();
        let view = s.delta_view();
        assert_eq!(view.checkpoint_rows, 3);
        assert_eq!(view.survivors, vec![0, 2], "rows 0 and 2 survived");
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.buffered_rows(), 2, "one append + one delete pending");
        s.checkpoint();
        assert!(s.delta_view().no_deletes());
        assert_eq!(s.buffered_rows(), 0);
    }

    #[test]
    fn invalid_patches_leave_the_store_unchanged() {
        let r = base();
        let mut s = DeltaStore::from_relation(&r, NullSemantics::NullsEqual).unwrap();
        let err = s
            .apply(&RowPatch {
                deletes: vec![7],
                appends: vec![],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            RelationError::RowOutOfRange { index: 7, rows: 3 }
        ));
        let err = s
            .apply(&RowPatch {
                deletes: vec![0],
                appends: vec![vec![Value::from("only-one-field")]],
            })
            .unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        assert_eq!(s.num_rows(), 3, "failed patches must not partially apply");
        assert_eq!(s.generation(), 0);
    }

    #[test]
    fn materialized_relation_matches_a_rebuilt_one_on_agreement() {
        let r = base();
        let mut s = DeltaStore::from_relation(&r, NullSemantics::NullsEqual).unwrap();
        s.apply(&RowPatch {
            deletes: vec![0],
            appends: vec![vec![Value::from("y"), Value::from("1")]],
        })
        .unwrap();
        let merged = s.materialize().unwrap();
        // Equivalent relation built from scratch: same agreement sets.
        let mut b = Relation::builder(Schema::new(["A", "B"]).unwrap());
        for row in [["y", "2"], ["x", "2"], ["y", "1"]] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        let rebuilt = b.build();
        assert_eq!(merged.num_rows(), rebuilt.num_rows());
        for t in 0..merged.num_rows() {
            for u in (t + 1)..merged.num_rows() {
                assert_eq!(merged.agree_set(t, u), rebuilt.agree_set(t, u));
            }
        }
    }

    #[test]
    fn from_codes_relations_are_refused() {
        let r = Relation::from_codes(Schema::new(["A"]).unwrap(), vec![vec![0, 1, 0]]).unwrap();
        assert!(matches!(
            DeltaStore::from_relation(&r, NullSemantics::NullsEqual),
            Err(RelationError::ValuesUnavailable)
        ));
    }

    #[test]
    fn nulls_distinct_appends_never_agree() {
        let mut b = Relation::builder(Schema::new(["A"]).unwrap())
            .null_semantics(NullSemantics::NullsDistinct);
        for v in ["?", "x", "?"] {
            b.push_row([Value::parse(v)]).unwrap();
        }
        let r = b.build();
        let mut s = DeltaStore::from_relation(&r, NullSemantics::NullsDistinct).unwrap();
        s.apply(&RowPatch {
            deletes: vec![],
            appends: vec![vec![Value::Missing], vec![Value::Missing]],
        })
        .unwrap();
        let col = s.column(0);
        assert_ne!(col[3], col[4], "distinct nulls stay distinct when appended");
        assert_ne!(col[3], col[0]);
    }
}
