//! Dependency-free CSV reading and writing.
//!
//! The paper's implementations read flat files with "specialized access
//! methods" (Section 7); this module is the equivalent ingestion path for the
//! Rust suite. It implements the RFC 4180 dialect — quoted fields, doubled
//! quote escapes, CR/LF tolerance — plus a configurable delimiter, optional
//! header row, and [`Value::parse`] type inference.

use crate::error::RelationError;
use crate::relation::{NullSemantics, Relation};
use crate::schema::Schema;
use crate::value::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Options for [`read_csv`] / [`read_csv_from`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Whether the first record is a header naming the attributes
    /// (default `true`). Without a header, attributes are named `A0, A1, …`.
    pub has_header: bool,
    /// Whether to run [`Value::parse`] type inference (default `true`).
    /// When `false`, every field becomes a [`Value::Str`] verbatim (except
    /// `?`/empty, which still become [`Value::Missing`]).
    pub infer_types: bool,
    /// Missing-value semantics passed through to the relation builder.
    pub nulls: NullSemantics,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: b',',
            has_header: true,
            infer_types: true,
            nulls: NullSemantics::NullsEqual,
        }
    }
}

/// Reads a CSV file from disk into a [`Relation`].
///
/// # Errors
///
/// I/O errors, CSV syntax errors (unterminated quotes, stray quotes inside
/// unquoted fields), arity mismatches, and schema errors are all reported as
/// [`RelationError`].
pub fn read_csv(path: &Path, options: &CsvOptions) -> Result<Relation, RelationError> {
    let file = std::fs::File::open(path)?;
    read_csv_from(BufReader::new(file), options)
}

/// Reads CSV from any reader into a [`Relation`].
pub fn read_csv_from<R: Read>(reader: R, options: &CsvOptions) -> Result<Relation, RelationError> {
    let mut records = RecordReader::new(BufReader::new(reader), options.delimiter);

    let first = match records.next_record()? {
        Some(r) => r,
        None => {
            // Entirely empty input: empty schema, zero rows.
            return Ok(Relation::builder(Schema::new(Vec::<String>::new())?).build());
        }
    };

    let (schema, mut pending) = if options.has_header {
        (Schema::new(first)?, None)
    } else {
        (Schema::anonymous(first.len())?, Some(first))
    };

    let mut builder = Relation::builder(schema).null_semantics(options.nulls);
    loop {
        let record = match pending.take() {
            Some(r) => r,
            None => match records.next_record()? {
                Some(r) => r,
                None => break,
            },
        };
        builder.push_row(record.iter().map(|f| parse_field(f, options.infer_types)))?;
    }
    Ok(builder.build())
}

fn parse_field(field: &str, infer: bool) -> Value {
    if infer {
        Value::parse(field)
    } else {
        let t = field.trim();
        if t.is_empty() || t == "?" {
            Value::Missing
        } else {
            Value::Str(field.to_string())
        }
    }
}

/// Writes a relation to CSV (header + rows). Fields containing the
/// delimiter, quotes, or newlines are quoted with doubled-quote escaping.
pub fn write_csv<W: Write>(
    relation: &Relation,
    writer: W,
    delimiter: u8,
) -> Result<(), RelationError> {
    let mut w = std::io::BufWriter::new(writer);
    let delim = delimiter as char;
    let quote_field = |f: &str| -> String {
        if f.contains(delim) || f.contains('"') || f.contains('\n') || f.contains('\r') {
            format!("\"{}\"", f.replace('"', "\"\""))
        } else {
            f.to_string()
        }
    };
    let header: Vec<String> = relation
        .schema()
        .names()
        .iter()
        .map(|n| quote_field(n))
        .collect();
    writeln!(w, "{}", header.join(&delim.to_string()))?;
    for t in 0..relation.num_rows() {
        let row: Vec<String> = relation
            .render_row(t)
            .iter()
            .map(|f| quote_field(f))
            .collect();
        writeln!(w, "{}", row.join(&delim.to_string()))?;
    }
    w.flush()?;
    Ok(())
}

/// Streaming RFC 4180 record reader.
struct RecordReader<R: BufRead> {
    reader: R,
    delimiter: u8,
    line: usize,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R, delimiter: u8) -> Self {
        RecordReader {
            reader,
            delimiter,
            line: 0,
        }
    }

    /// Reads one logical record (which may span physical lines when fields
    /// are quoted). Returns `None` at end of input. Blank lines are skipped.
    fn next_record(&mut self) -> Result<Option<Vec<String>>, RelationError> {
        let mut raw = String::new();
        loop {
            raw.clear();
            self.line += 1;
            if self.reader.read_line(&mut raw)? == 0 {
                return Ok(None);
            }
            // Keep reading physical lines while inside an open quote.
            while quote_open(&raw) {
                let mut cont = String::new();
                self.line += 1;
                if self.reader.read_line(&mut cont)? == 0 {
                    return Err(RelationError::Csv {
                        line: self.line,
                        message: "unterminated quoted field at end of input".into(),
                    });
                }
                raw.push_str(&cont);
            }
            let trimmed = raw.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue; // skip blank lines
            }
            return Ok(Some(self.split_record(trimmed)?));
        }
    }

    fn split_record(&self, record: &str) -> Result<Vec<String>, RelationError> {
        let bytes = record.as_bytes();
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut i = 0;
        let mut in_quotes = false;
        let mut was_quoted = false;
        while i < bytes.len() {
            let b = bytes[i];
            if in_quotes {
                if b == b'"' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'"' {
                        field.push('"');
                        i += 2;
                        continue;
                    }
                    in_quotes = false;
                    i += 1;
                } else {
                    // Copy one UTF-8 scalar.
                    let ch_len = utf8_len(b);
                    field.push_str(&record[i..i + ch_len]);
                    i += ch_len;
                }
            } else if b == b'"' {
                if field.is_empty() && !was_quoted {
                    in_quotes = true;
                    was_quoted = true;
                    i += 1;
                } else {
                    return Err(RelationError::Csv {
                        line: self.line,
                        message: "quote inside unquoted field".into(),
                    });
                }
            } else if b == self.delimiter {
                fields.push(std::mem::take(&mut field));
                was_quoted = false;
                i += 1;
            } else {
                let ch_len = utf8_len(b);
                field.push_str(&record[i..i + ch_len]);
                i += ch_len;
            }
        }
        if in_quotes {
            return Err(RelationError::Csv {
                line: self.line,
                message: "unterminated quoted field".into(),
            });
        }
        fields.push(field);
        Ok(fields)
    }
}

#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// `true` if the accumulated raw text ends inside an open quoted field.
fn quote_open(raw: &str) -> bool {
    let mut in_quotes = false;
    let mut prev_quote = false;
    for b in raw.bytes() {
        if b == b'"' {
            if in_quotes && !prev_quote {
                prev_quote = true; // might be closing or first of a doubled pair
            } else if prev_quote {
                prev_quote = false; // doubled quote inside quotes
            } else {
                in_quotes = true;
            }
        } else if prev_quote {
            in_quotes = false;
            prev_quote = false;
        }
    }
    if prev_quote {
        in_quotes = false;
    }
    in_quotes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_str(s: &str, options: &CsvOptions) -> Result<Relation, RelationError> {
        read_csv_from(s.as_bytes(), options)
    }

    #[test]
    fn basic_with_header() {
        let r = read_str("a,b\n1,x\n2,y\n1,x\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.schema().name(0), "a");
        assert_eq!(r.cardinality(0), 2);
        assert_eq!(r.value(0, 0), Some(&Value::Int(1)));
        assert_eq!(r.value(1, 1), Some(&Value::from("y")));
    }

    #[test]
    fn no_header_anonymous_names() {
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let r = read_str("1,2\n3,4\n", &opts).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.schema().name(0), "A0");
        assert_eq!(r.schema().name(1), "A1");
    }

    #[test]
    fn custom_delimiter() {
        let opts = CsvOptions {
            delimiter: b';',
            ..Default::default()
        };
        let r = read_str("a;b\n1;2\n", &opts).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 1), Some(&Value::Int(2)));
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let r = read_str(
            "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(r.value(0, 0), Some(&Value::from("x,y")));
        assert_eq!(r.value(0, 1), Some(&Value::from("he said \"hi\"")));
    }

    #[test]
    fn quoted_field_with_embedded_newline() {
        let r = read_str("a,b\n\"line1\nline2\",2\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 1);
        assert_eq!(r.value(0, 0), Some(&Value::from("line1\nline2")));
    }

    #[test]
    fn crlf_and_blank_lines() {
        let r = read_str("a,b\r\n1,2\r\n\r\n\n3,4\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(1, 0), Some(&Value::Int(3)));
    }

    #[test]
    fn missing_values() {
        let r = read_str("a,b\n?,2\n1,\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.value(0, 0), Some(&Value::Missing));
        assert_eq!(r.value(1, 1), Some(&Value::Missing));
    }

    #[test]
    fn no_type_inference() {
        let opts = CsvOptions {
            infer_types: false,
            ..Default::default()
        };
        let r = read_str("a\n42\n?\n", &opts).unwrap();
        assert_eq!(r.value(0, 0), Some(&Value::from("42")));
        assert_eq!(r.value(1, 0), Some(&Value::Missing));
    }

    #[test]
    fn unicode_fields() {
        let r = read_str("a,b\n£,日本語\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.value(0, 0), Some(&Value::from("£")));
        assert_eq!(r.value(0, 1), Some(&Value::from("日本語")));
    }

    #[test]
    fn empty_input() {
        let r = read_str("", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.num_attrs(), 0);
    }

    #[test]
    fn header_only() {
        let r = read_str("a,b,c\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.num_attrs(), 3);
    }

    #[test]
    fn arity_mismatch_reported() {
        let err = read_str("a,b\n1,2,3\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        let err = read_str("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn unterminated_quote_reported() {
        let err = read_str("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Csv { .. }));
    }

    #[test]
    fn stray_quote_reported() {
        let err = read_str("a,b\nx\"y,2\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Csv { .. }));
    }

    #[test]
    fn roundtrip_write_read() {
        let r = read_str(
            "name,qty\n\"comma, inc\",3\nplain,4\n\"quote\"\"d\",?\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf, b',').unwrap();
        let r2 = read_str(std::str::from_utf8(&buf).unwrap(), &CsvOptions::default()).unwrap();
        assert_eq!(r2.num_rows(), r.num_rows());
        for t in 0..r.num_rows() {
            for a in 0..r.num_attrs() {
                assert_eq!(r.value(t, a), r2.value(t, a), "cell ({t},{a})");
            }
        }
    }

    #[test]
    fn trailing_empty_field() {
        let r = read_str("a,b\n1,\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.value(0, 1), Some(&Value::Missing));
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = read_str("a,a\n1,2\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }
}
