//! Error types for relation construction and I/O.

use std::fmt;
use std::io;

/// Errors produced while building relations or reading/writing CSV files.
#[derive(Debug)]
pub enum RelationError {
    /// The schema has more attributes than [`tane_util::MAX_ATTRS`] (64).
    TooManyAttributes {
        /// Number of attributes requested.
        got: usize,
    },
    /// A row was added whose arity does not match the schema.
    ArityMismatch {
        /// 0-based index of the offending row.
        row: usize,
        /// Arity the schema expects.
        expected: usize,
        /// Arity the row actually had.
        got: usize,
    },
    /// A column exceeded `u32` distinct values (dictionary overflow).
    DictionaryOverflow {
        /// Attribute whose dictionary overflowed.
        attribute: String,
    },
    /// Two attribute names in a schema collide.
    DuplicateAttribute {
        /// The duplicated name.
        name: String,
    },
    /// CSV syntax error.
    Csv {
        /// 1-based line where the error was detected.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A row patch referenced a row index past the current rows.
    RowOutOfRange {
        /// The offending 0-based row index.
        index: usize,
        /// Current row count.
        rows: usize,
    },
    /// The operation needs the relation's value dictionaries, but this
    /// relation was built without them ([`crate::Relation::from_codes`]).
    ValuesUnavailable,
    /// Underlying I/O error.
    Io(io::Error),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::TooManyAttributes { got } => {
                write!(
                    f,
                    "relation has {got} attributes; at most {} are supported",
                    tane_util::MAX_ATTRS
                )
            }
            RelationError::ArityMismatch { row, expected, got } => {
                write!(
                    f,
                    "row {row} has {got} fields but the schema has {expected} attributes"
                )
            }
            RelationError::DictionaryOverflow { attribute } => {
                write!(
                    f,
                    "attribute `{attribute}` has more than u32::MAX distinct values"
                )
            }
            RelationError::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute name `{name}` in schema")
            }
            RelationError::Csv { line, message } => {
                write!(f, "CSV error at line {line}: {message}")
            }
            RelationError::RowOutOfRange { index, rows } => {
                write!(
                    f,
                    "row index {index} is out of range (relation has {rows} rows)"
                )
            }
            RelationError::ValuesUnavailable => {
                write!(
                    f,
                    "relation carries no value dictionaries (built from raw codes)"
                )
            }
            RelationError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for RelationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelationError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RelationError {
    fn from(e: io::Error) -> Self {
        RelationError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::TooManyAttributes { got: 99 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));

        let e = RelationError::ArityMismatch {
            row: 3,
            expected: 5,
            got: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("row 3") && msg.contains('5') && msg.contains('4'));

        let e = RelationError::DictionaryOverflow {
            attribute: "A".into(),
        };
        assert!(e.to_string().contains("`A`"));

        let e = RelationError::DuplicateAttribute { name: "B".into() };
        assert!(e.to_string().contains("`B`"));

        let e = RelationError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));

        let e = RelationError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = RelationError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = RelationError::DuplicateAttribute { name: "A".into() };
        assert!(e.source().is_none());
    }
}
