//! Typed cell values at the ingestion boundary.
//!
//! FD discovery only needs value *equality*, so [`Value`] implements `Eq` and
//! `Hash` for every variant — including floats, which are compared by bit
//! pattern (with all NaNs collapsed to one canonical NaN) so they can live in
//! a dictionary. Missing values (`?` or empty cells in the UCI files the
//! paper uses) are first-class: see
//! [`NullSemantics`](crate::relation::NullSemantics) for how they enter the
//! encoding.

use std::borrow::Cow;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
///
/// # Examples
///
/// ```
/// use tane_relation::Value;
///
/// assert_eq!(Value::parse("42"), Value::Int(42));
/// assert_eq!(Value::parse("4.5"), Value::Float(4.5));
/// assert_eq!(Value::parse("?"), Value::Missing);
/// assert_eq!(Value::parse("tulip"), Value::from("tulip"));
/// ```
#[derive(Debug, Clone)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. Equality is bitwise with NaN canonicalized, so
    /// `Float(NaN) == Float(NaN)` and `Float(0.0) != Float(-0.0)`.
    Float(f64),
    /// A string.
    Str(String),
    /// A missing value (`?` or an empty cell in UCI-style files).
    Missing,
}

impl Value {
    /// Parses a raw text field with type inference: `?`/empty → [`Missing`],
    /// integers → [`Int`], other numerics → [`Float`], anything else →
    /// [`Str`]. Leading/trailing whitespace is trimmed before inference.
    ///
    /// [`Missing`]: Value::Missing
    /// [`Int`]: Value::Int
    /// [`Float`]: Value::Float
    /// [`Str`]: Value::Str
    pub fn parse(field: &str) -> Value {
        let t = field.trim();
        if t.is_empty() || t == "?" {
            return Value::Missing;
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(t.to_string())
    }

    /// `true` iff the value is [`Value::Missing`].
    #[inline]
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Canonical bit pattern for float hashing/equality: all NaNs collapse.
    #[inline]
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else {
            f.to_bits()
        }
    }

    /// Renders the value the way [`csv`](crate::csv) writes it.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Float(f) => Cow::Owned(format!("{f}")),
            Value::Str(s) => Cow::Borrowed(s.as_str()),
            Value::Missing => Cow::Borrowed("?"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Missing, Value::Missing) => true,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(1);
                Self::float_bits(*f).hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Missing => state.write_u8(3),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn parse_inference() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("-7"), Value::Int(-7));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("1e3"), Value::Float(1000.0));
        assert_eq!(Value::parse("abc"), Value::Str("abc".into()));
        assert_eq!(Value::parse("?"), Value::Missing);
        assert_eq!(Value::parse(""), Value::Missing);
        assert_eq!(Value::parse("  12  "), Value::Int(12));
        assert_eq!(Value::parse(" x "), Value::Str("x".into()));
    }

    #[test]
    fn parse_numeric_looking_strings() {
        // Overflowing integers fall back to float, then to string.
        assert_eq!(
            Value::parse("99999999999999999999999999999999999999999999"),
            Value::Float(1e44)
        );
        assert_eq!(Value::parse("12abc"), Value::Str("12abc".into()));
    }

    #[test]
    fn equality_across_variants_is_false() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Int(1), Value::Str("1".into()));
        assert_ne!(Value::Missing, Value::Str("?".into()));
    }

    #[test]
    fn nan_equals_nan_but_zero_signs_differ() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn hash_consistent_with_eq() {
        let pairs = [
            (Value::Int(5), Value::Int(5)),
            (Value::Float(2.5), Value::Float(2.5)),
            (Value::Str("x".into()), Value::Str("x".into())),
            (Value::Missing, Value::Missing),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn render_and_display() {
        assert_eq!(Value::Int(3).render(), "3");
        assert_eq!(Value::Float(2.5).render(), "2.5");
        assert_eq!(Value::Str("hi".into()).render(), "hi");
        assert_eq!(Value::Missing.render(), "?");
        assert_eq!(format!("{}", Value::Int(3)), "3");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(String::from("s")), Value::Str("s".into()));
    }

    #[test]
    fn is_missing() {
        assert!(Value::Missing.is_missing());
        assert!(!Value::Int(0).is_missing());
    }
}
