//! Dictionary-encoded relations.
//!
//! A [`Relation`] stores one `u32` code per row per attribute; codes are
//! assigned per column in first-occurrence order. Two rows *agree* on an
//! attribute (in the sense of the paper's Section 1) iff their codes are
//! equal, so every downstream algorithm — partitions, TANE, FDEP — works on
//! codes alone and never touches the original values.

use crate::error::RelationError;
use crate::schema::Schema;
use crate::value::Value;
use tane_util::{AttrSet, FxHashMap};

/// How missing values ([`Value::Missing`]) are encoded.
///
/// The paper (and the UCI files it uses) treats `?` as just another value:
/// two missing cells agree with each other. That is [`NullSemantics::NullsEqual`],
/// the default. [`NullSemantics::NullsDistinct`] instead gives every missing
/// cell a fresh code, so no row agrees with any other row on a missing cell —
/// the "null ≠ null" interpretation used by some later FD-discovery systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NullSemantics {
    /// `? = ?`: missing is an ordinary value (paper behaviour).
    #[default]
    NullsEqual,
    /// `? ≠ ?`: each missing cell is unique.
    NullsDistinct,
}

#[derive(Debug, Clone)]
struct Column {
    /// One dictionary code per row.
    codes: Vec<u32>,
    /// Number of distinct codes (`|π_{A}|` before stripping).
    cardinality: u32,
    /// Decoded values, present when the relation was built from [`Value`]s.
    values: Option<Vec<Value>>,
}

/// An immutable, column-wise, dictionary-encoded relation instance `r`.
///
/// # Examples
///
/// Building the example relation of the paper's Figure 1:
///
/// ```
/// use tane_relation::{Relation, Schema, Value};
///
/// let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
/// let mut b = Relation::builder(schema);
/// for row in [
///     ["1", "a", "$", "Flower"],
///     ["1", "A", "L", "Tulip"],
///     ["2", "A", "$", "Daffodil"],
///     ["2", "A", "$", "Flower"],
///     ["2", "b", "L", "Lily"],
///     ["3", "b", "$", "Orchid"],
///     ["3", "c", "L", "Flower"],
///     ["3", "c", "#", "Rose"],
/// ] {
///     b.push_row(row.map(Value::from)).unwrap();
/// }
/// let r = b.build();
/// assert_eq!(r.num_rows(), 8);
/// assert_eq!(r.num_attrs(), 4);
/// assert_eq!(r.cardinality(0), 3); // attribute A has values {1,2,3}
/// ```
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    n_rows: usize,
    columns: Vec<Column>,
}

impl Relation {
    /// Starts building a relation row by row.
    pub fn builder(schema: Schema) -> RelationBuilder {
        RelationBuilder::new(schema)
    }

    /// Constructs a relation directly from pre-encoded code columns.
    ///
    /// Used by the synthetic dataset generators, which produce codes
    /// directly. Codes need not be dense; cardinality is the number of
    /// distinct codes actually present.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::ArityMismatch`] if columns have unequal
    /// lengths, or [`RelationError::TooManyAttributes`] if there are more
    /// columns than the schema (or more than 64).
    pub fn from_codes(schema: Schema, columns: Vec<Vec<u32>>) -> Result<Relation, RelationError> {
        if columns.len() != schema.len() {
            return Err(RelationError::ArityMismatch {
                row: 0,
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != n_rows {
                return Err(RelationError::ArityMismatch {
                    row: i,
                    expected: n_rows,
                    got: c.len(),
                });
            }
        }
        let columns = columns
            .into_iter()
            .map(|codes| {
                let mut seen: Vec<u32> = codes.clone();
                seen.sort_unstable();
                seen.dedup();
                Column {
                    codes,
                    cardinality: seen.len() as u32,
                    values: None,
                }
            })
            .collect();
        Ok(Relation {
            schema,
            n_rows,
            columns,
        })
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows, `|r|` in the paper.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes, `|R|` in the paper.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.schema.len()
    }

    /// The code column for attribute `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn column_codes(&self, a: usize) -> &[u32] {
        &self.columns[a].codes
    }

    /// Number of distinct values in attribute `a` — the rank `|π_{A}|` of the
    /// unstripped singleton partition.
    #[inline]
    pub fn cardinality(&self, a: usize) -> u32 {
        self.columns[a].cardinality
    }

    /// The decoded value at (`row`, `attr`), when the relation was built from
    /// values (not raw codes).
    pub fn value(&self, row: usize, attr: usize) -> Option<&Value> {
        self.columns[attr].values.as_ref().map(|v| &v[row])
    }

    /// A deterministic fingerprint of the relation's discovery-relevant
    /// content: schema names, dimensions, and every code column. Two
    /// relations with equal fingerprints produce identical dependency
    /// covers (codes determine all partitions), so the hash is a safe cache
    /// key for discovery results. Not cryptographic — collisions are
    /// astronomically unlikely, not impossible.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = tane_util::FxHasher::default();
        h.write_usize(self.num_attrs());
        h.write_usize(self.n_rows);
        for name in self.schema.names() {
            h.write(name.as_bytes());
            h.write_u8(0xff); // separator: ["ab","c"] ≠ ["a","bc"]
        }
        for col in &self.columns {
            for &code in &col.codes {
                h.write_u32(code);
            }
        }
        h.finish()
    }

    /// The agree set of rows `t` and `u`: all attributes on which the two
    /// rows have equal values. This is the primitive FDEP's negative-cover
    /// construction is built on.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `u` is out of range.
    pub fn agree_set(&self, t: usize, u: usize) -> AttrSet {
        let mut s = AttrSet::empty();
        for (a, col) in self.columns.iter().enumerate() {
            if col.codes[t] == col.codes[u] {
                s.insert(a);
            }
        }
        s
    }

    /// Projects the relation onto the given attributes (in ascending index
    /// order), keeping codes as-is.
    pub fn project(&self, attrs: AttrSet) -> Result<Relation, RelationError> {
        let names: Vec<String> = attrs
            .iter()
            .map(|a| self.schema.name(a).to_string())
            .collect();
        let schema = Schema::new(names)?;
        let columns = attrs.iter().map(|a| self.columns[a].clone()).collect();
        Ok(Relation {
            schema,
            n_rows: self.n_rows,
            columns,
        })
    }

    /// Returns a relation containing only the first `n` rows (all rows if
    /// `n >= num_rows`). Column cardinalities are recomputed.
    pub fn head(&self, n: usize) -> Relation {
        let n = n.min(self.n_rows);
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let codes: Vec<u32> = c.codes[..n].to_vec();
                let mut seen = codes.clone();
                seen.sort_unstable();
                seen.dedup();
                Column {
                    codes,
                    cardinality: seen.len() as u32,
                    values: c.values.as_ref().map(|v| v[..n].to_vec()),
                }
            })
            .collect();
        Relation {
            schema: self.schema.clone(),
            n_rows: n,
            columns,
        }
    }

    /// The paper's scale-up construction ("Wisconsin breast cancer `×n`"):
    /// concatenates `n` copies of the relation, appending "a unique string
    /// specific to that copy" to every value so that rows from different
    /// copies never agree on anything. In code space this is
    /// `new_code = old_code · n + copy_id`, which keeps the set of functional
    /// dependencies exactly the same while multiplying `|r|` by `n`.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DictionaryOverflow`] if the recoding would
    /// exceed `u32`.
    pub fn concat_disjoint_copies(&self, n: usize) -> Result<Relation, RelationError> {
        assert!(n >= 1, "need at least one copy");
        let n32 = u32::try_from(n).map_err(|_| RelationError::DictionaryOverflow {
            attribute: "<copies>".to_string(),
        })?;
        let columns = self
            .columns
            .iter()
            .enumerate()
            .map(|(a, c)| {
                // max new code = max_old * n + (n-1); verify it fits.
                let max_old = c.codes.iter().copied().max().unwrap_or(0) as u64;
                if max_old * n as u64 + (n as u64 - 1) > u32::MAX as u64 {
                    return Err(RelationError::DictionaryOverflow {
                        attribute: self.schema.name(a).to_string(),
                    });
                }
                let mut codes = Vec::with_capacity(c.codes.len() * n);
                for copy in 0..n32 {
                    codes.extend(c.codes.iter().map(|&v| v * n32 + copy));
                }
                Ok(Column {
                    codes,
                    cardinality: c.cardinality * n32,
                    values: None,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Relation {
            schema: self.schema.clone(),
            n_rows: self.n_rows * n,
            columns,
        })
    }

    /// Decodes row `t` for display/debugging. Attributes built from raw codes
    /// render as their code.
    pub fn render_row(&self, t: usize) -> Vec<String> {
        (0..self.num_attrs())
            .map(|a| match self.value(t, a) {
                Some(v) => v.to_string(),
                None => self.columns[a].codes[t].to_string(),
            })
            .collect()
    }
}

/// Incremental, row-at-a-time relation builder with dictionary encoding.
#[derive(Debug)]
pub struct RelationBuilder {
    schema: Schema,
    nulls: NullSemantics,
    dicts: Vec<FxHashMap<Value, u32>>,
    columns: Vec<Vec<u32>>,
    values: Vec<Vec<Value>>,
    n_rows: usize,
    /// Counter used to mint fresh codes for NullsDistinct missing cells.
    next_null_code: Vec<u32>,
}

impl RelationBuilder {
    fn new(schema: Schema) -> RelationBuilder {
        let n = schema.len();
        RelationBuilder {
            schema,
            nulls: NullSemantics::default(),
            dicts: (0..n).map(|_| FxHashMap::default()).collect(),
            columns: vec![Vec::new(); n],
            values: vec![Vec::new(); n],
            n_rows: 0,
            next_null_code: vec![0; n],
        }
    }

    /// Selects the missing-value semantics (default:
    /// [`NullSemantics::NullsEqual`], the paper behaviour). Must be called
    /// before the first row is pushed to have a consistent encoding.
    pub fn null_semantics(mut self, nulls: NullSemantics) -> Self {
        self.nulls = nulls;
        self
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// [`RelationError::ArityMismatch`] if the row length differs from the
    /// schema; [`RelationError::DictionaryOverflow`] if a column exceeds
    /// `u32::MAX` distinct values.
    pub fn push_row<I>(&mut self, row: I) -> Result<(), RelationError>
    where
        I: IntoIterator<Item = Value>,
    {
        let mut count = 0usize;
        for (a, v) in row.into_iter().enumerate() {
            if a >= self.schema.len() {
                count = a + 1;
                continue; // keep counting to report the true arity
            }
            count = a + 1;
            let code = if v.is_missing() && self.nulls == NullSemantics::NullsDistinct {
                // Fresh code per missing cell; real values use even codes,
                // nulls odd codes, so they can never collide.
                let c = self.next_null_code[a];
                self.next_null_code[a] =
                    c.checked_add(1)
                        .ok_or_else(|| RelationError::DictionaryOverflow {
                            attribute: self.schema.name(a).to_string(),
                        })?;
                c.checked_mul(2)
                    .and_then(|x| x.checked_add(1))
                    .ok_or_else(|| RelationError::DictionaryOverflow {
                        attribute: self.schema.name(a).to_string(),
                    })?
            } else {
                let dict = &mut self.dicts[a];
                let next = dict.len() as u64;
                let stride: u64 = if self.nulls == NullSemantics::NullsDistinct {
                    2
                } else {
                    1
                };
                match dict.get(&v) {
                    Some(&c) => c,
                    None => {
                        let c64 = next * stride;
                        if c64 > u32::MAX as u64 {
                            return Err(RelationError::DictionaryOverflow {
                                attribute: self.schema.name(a).to_string(),
                            });
                        }
                        let c = c64 as u32;
                        dict.insert(v.clone(), c);
                        c
                    }
                }
            };
            self.columns[a].push(code);
            self.values[a].push(v);
        }
        if count != self.schema.len() {
            // Roll back the partial row so the builder stays consistent.
            for a in 0..count.min(self.schema.len()) {
                self.columns[a].pop();
                self.values[a].pop();
            }
            return Err(RelationError::ArityMismatch {
                row: self.n_rows,
                expected: self.schema.len(),
                got: count,
            });
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of rows pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// `true` iff no rows have been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Finalizes the relation.
    pub fn build(self) -> Relation {
        let columns = self
            .columns
            .into_iter()
            .zip(self.values)
            .map(|(codes, values)| {
                let mut seen = codes.clone();
                seen.sort_unstable();
                seen.dedup();
                Column {
                    codes,
                    cardinality: seen.len() as u32,
                    values: Some(values),
                }
            })
            .collect();
        Relation {
            schema: self.schema,
            n_rows: self.n_rows,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 relation.
    pub(crate) fn figure1() -> Relation {
        let schema = Schema::new(["A", "B", "C", "D"]).unwrap();
        let mut b = Relation::builder(schema);
        for row in [
            ["1", "a", "$", "Flower"],
            ["1", "A", "L", "Tulip"],
            ["2", "A", "$", "Daffodil"],
            ["2", "A", "$", "Flower"],
            ["2", "b", "L", "Lily"],
            ["3", "b", "$", "Orchid"],
            ["3", "c", "L", "Flower"],
            ["3", "c", "#", "Rose"],
        ] {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn figure1_shape_and_cardinalities() {
        let r = figure1();
        assert_eq!(r.num_rows(), 8);
        assert_eq!(r.num_attrs(), 4);
        assert_eq!(r.cardinality(0), 3); // A: 1,2,3
        assert_eq!(r.cardinality(1), 4); // B: a,A,b,c
        assert_eq!(r.cardinality(2), 3); // C: $,L,#
        assert_eq!(r.cardinality(3), 6); // D: Flower,Tulip,Daffodil,Lily,Orchid,Rose
    }

    #[test]
    fn codes_are_first_occurrence_order() {
        let r = figure1();
        // Column A: values 1,1,2,2,2,3,3,3 → codes 0,0,1,1,1,2,2,2
        assert_eq!(r.column_codes(0), &[0, 0, 1, 1, 1, 2, 2, 2]);
        // Column D: Flower repeats on rows 0,3,6
        let d = r.column_codes(3);
        assert_eq!(d[0], d[3]);
        assert_eq!(d[0], d[6]);
        assert_eq!(d.iter().copied().max(), Some(5));
    }

    #[test]
    fn values_are_retained() {
        let r = figure1();
        assert_eq!(r.value(1, 3), Some(&Value::from("Tulip")));
        assert_eq!(r.value(0, 0), Some(&Value::from("1")));
        assert_eq!(r.render_row(2), vec!["2", "A", "$", "Daffodil"]);
    }

    #[test]
    fn agree_sets_match_paper_example() {
        let r = figure1();
        // Rows 3 and 4 (ids 4,5 in the paper) share only A.
        assert_eq!(r.agree_set(3, 4), AttrSet::singleton(0));
        // Rows 2 and 3 share A, B, C.
        assert_eq!(r.agree_set(2, 3), AttrSet::from_indices([0, 1, 2]));
        // A row agrees with itself on everything.
        assert_eq!(r.agree_set(5, 5), AttrSet::full(4));
    }

    #[test]
    fn arity_mismatch_is_detected_and_rolled_back() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let mut b = Relation::builder(schema);
        b.push_row([Value::Int(1), Value::Int(2)]).unwrap();
        let err = b.push_row([Value::Int(1)]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                row: 1,
                expected: 2,
                got: 1
            }
        ));
        let err = b
            .push_row([Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                row: 1,
                expected: 2,
                got: 3
            }
        ));
        // The builder is still usable and consistent after errors.
        b.push_row([Value::Int(3), Value::Int(4)]).unwrap();
        let r = b.build();
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.column_codes(0), &[0, 1]);
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::new(["A"]).unwrap();
        let r = Relation::builder(schema).build();
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.cardinality(0), 0);
    }

    #[test]
    fn from_codes_validates_shape() {
        let schema = Schema::new(["A", "B"]).unwrap();
        let r = Relation::from_codes(schema.clone(), vec![vec![5, 5, 9], vec![0, 1, 0]]).unwrap();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.cardinality(0), 2); // codes need not be dense
        assert_eq!(r.cardinality(1), 2);
        assert_eq!(r.value(0, 0), None);

        let err = Relation::from_codes(schema.clone(), vec![vec![1]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        let err = Relation::from_codes(schema, vec![vec![1, 2], vec![1]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn nulls_equal_vs_distinct() {
        let schema = Schema::new(["A"]).unwrap();
        let mut b = Relation::builder(schema.clone());
        b.push_row([Value::Missing]).unwrap();
        b.push_row([Value::Missing]).unwrap();
        let r = b.build();
        assert_eq!(r.cardinality(0), 1); // NullsEqual: ? = ?

        let mut b = Relation::builder(schema).null_semantics(NullSemantics::NullsDistinct);
        b.push_row([Value::Missing]).unwrap();
        b.push_row([Value::Missing]).unwrap();
        b.push_row([Value::Int(7)]).unwrap();
        b.push_row([Value::Int(7)]).unwrap();
        let r = b.build();
        assert_eq!(r.cardinality(0), 3); // two distinct nulls + one value
        assert_eq!(r.column_codes(0)[2], r.column_codes(0)[3]);
        assert_ne!(r.column_codes(0)[0], r.column_codes(0)[1]);
    }

    #[test]
    fn nulls_distinct_never_collides_with_values() {
        let schema = Schema::new(["A"]).unwrap();
        let mut b = Relation::builder(schema).null_semantics(NullSemantics::NullsDistinct);
        // Interleave many values and nulls; codes must stay distinct classes.
        for i in 0..50 {
            b.push_row([Value::Int(i)]).unwrap();
            b.push_row([Value::Missing]).unwrap();
        }
        let r = b.build();
        assert_eq!(r.cardinality(0), 100);
    }

    #[test]
    fn concat_disjoint_copies_preserves_structure() {
        let r = figure1();
        let r4 = r.concat_disjoint_copies(4).unwrap();
        assert_eq!(r4.num_rows(), 32);
        assert_eq!(r4.num_attrs(), 4);
        assert_eq!(r4.cardinality(0), 12); // 3 values × 4 copies
                                           // Within a copy, the agree structure is identical to the original.
        assert_eq!(r4.agree_set(3, 4), r.agree_set(3, 4));
        assert_eq!(r4.agree_set(8 + 3, 8 + 4), r.agree_set(3, 4));
        // Across copies nothing agrees.
        for a in 0..4 {
            for t in 0..8 {
                assert!(r4.agree_set(t, 8 + t).is_empty(), "attr {a} row {t}");
            }
        }
        // n = 1 is identity on codes.
        let r1 = r.concat_disjoint_copies(1).unwrap();
        assert_eq!(r1.column_codes(2), r.column_codes(2));
    }

    #[test]
    fn concat_overflow_detected() {
        let schema = Schema::new(["A"]).unwrap();
        let r = Relation::from_codes(schema, vec![vec![u32::MAX - 1]]).unwrap();
        assert!(matches!(
            r.concat_disjoint_copies(4),
            Err(RelationError::DictionaryOverflow { .. })
        ));
    }

    #[test]
    fn content_hash_tracks_content() {
        let r = figure1();
        assert_eq!(r.content_hash(), figure1().content_hash());
        // Any change to codes, shape, or names must move the hash.
        assert_ne!(r.content_hash(), r.head(7).content_hash());
        assert_ne!(
            r.content_hash(),
            r.project(AttrSet::from_indices([0, 1, 2]))
                .unwrap()
                .content_hash()
        );
        let renamed = Relation::from_codes(
            Schema::new(["A", "B", "C", "X"]).unwrap(),
            (0..4).map(|a| r.column_codes(a).to_vec()).collect(),
        )
        .unwrap();
        assert_ne!(r.content_hash(), renamed.content_hash());
        // Name-boundary ambiguity is separated out.
        let ab =
            Relation::from_codes(Schema::new(["ab", "c"]).unwrap(), vec![vec![], vec![]]).unwrap();
        let a_bc =
            Relation::from_codes(Schema::new(["a", "bc"]).unwrap(), vec![vec![], vec![]]).unwrap();
        assert_ne!(ab.content_hash(), a_bc.content_hash());
    }

    #[test]
    fn project_and_head() {
        let r = figure1();
        let p = r.project(AttrSet::from_indices([1, 3])).unwrap();
        assert_eq!(p.num_attrs(), 2);
        assert_eq!(p.schema().name(0), "B");
        assert_eq!(p.schema().name(1), "D");
        assert_eq!(p.column_codes(0), r.column_codes(1));

        let h = r.head(3);
        assert_eq!(h.num_rows(), 3);
        assert_eq!(h.cardinality(0), 2); // values 1,1,2
        assert_eq!(h.value(2, 3), Some(&Value::from("Daffodil")));
        assert_eq!(r.head(100).num_rows(), 8);
    }
}
