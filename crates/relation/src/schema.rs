//! Relation schemas: ordered, named attributes.

use crate::error::RelationError;
use tane_util::{AttrSet, FxHashMap, MAX_ATTRS};

/// An ordered list of attribute names with O(1) name→index lookup.
///
/// # Examples
///
/// ```
/// use tane_relation::Schema;
///
/// let schema = Schema::new(["A", "B", "C"]).unwrap();
/// assert_eq!(schema.len(), 3);
/// assert_eq!(schema.index_of("B"), Some(1));
/// assert_eq!(schema.name(2), "C");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    index: FxHashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from attribute names.
    ///
    /// # Errors
    ///
    /// * [`RelationError::TooManyAttributes`] if more than 64 names are given
    ///   (the `AttrSet` bitset is one machine word, matching the paper's
    ///   "bit vectors of O(1) words").
    /// * [`RelationError::DuplicateAttribute`] if two names collide.
    pub fn new<I, S>(names: I) -> Result<Schema, RelationError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() > MAX_ATTRS {
            return Err(RelationError::TooManyAttributes { got: names.len() });
        }
        let mut index = FxHashMap::default();
        for (i, n) in names.iter().enumerate() {
            if index.insert(n.clone(), i).is_some() {
                return Err(RelationError::DuplicateAttribute { name: n.clone() });
            }
        }
        Ok(Schema { names, index })
    }

    /// Generates a schema with `n` anonymous attributes `A0, A1, …`.
    pub fn anonymous(n: usize) -> Result<Schema, RelationError> {
        Schema::new((0..n).map(|i| format!("A{i}")))
    }

    /// Number of attributes, `|R|` in the paper.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of attribute `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn name(&self, a: usize) -> &str {
        &self.names[a]
    }

    /// All attribute names in order.
    #[inline]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of the attribute called `name`, if any.
    #[inline]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The full attribute set `R = {0, …, |R|-1}`.
    #[inline]
    pub fn all_attrs(&self) -> AttrSet {
        AttrSet::full(self.len())
    }

    /// Resolves a list of attribute names to an [`AttrSet`], reporting the
    /// first unknown name.
    pub fn attr_set_of<'a, I: IntoIterator<Item = &'a str>>(
        &self,
        names: I,
    ) -> Result<AttrSet, String> {
        let mut s = AttrSet::empty();
        for n in names {
            match self.index_of(n) {
                Some(i) => {
                    s.insert(i);
                }
                None => return Err(format!("unknown attribute `{n}`")),
            }
        }
        Ok(s)
    }

    /// Renders an attribute set using this schema's names, e.g. `{A,C}`.
    pub fn display_set(&self, set: AttrSet) -> String {
        format!("{}", set.display_with(&self.names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let s = Schema::new(["A", "B", "C"]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.name(0), "A");
        assert_eq!(s.index_of("C"), Some(2));
        assert_eq!(s.index_of("Z"), None);
        assert_eq!(s.names(), &["A".to_string(), "B".into(), "C".into()]);
    }

    #[test]
    fn anonymous_names() {
        let s = Schema::anonymous(4).unwrap();
        assert_eq!(s.name(0), "A0");
        assert_eq!(s.name(3), "A3");
        assert_eq!(s.index_of("A2"), Some(2));
    }

    #[test]
    fn empty_schema() {
        let s = Schema::new(Vec::<String>::new()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.all_attrs(), AttrSet::empty());
    }

    #[test]
    fn too_many_attributes_rejected() {
        let err = Schema::anonymous(65).unwrap_err();
        assert!(matches!(err, RelationError::TooManyAttributes { got: 65 }));
        assert!(Schema::anonymous(64).is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(["A", "B", "A"]).unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn attr_set_resolution() {
        let s = Schema::new(["A", "B", "C"]).unwrap();
        assert_eq!(
            s.attr_set_of(["A", "C"]).unwrap(),
            AttrSet::from_indices([0, 2])
        );
        assert_eq!(s.attr_set_of([]).unwrap(), AttrSet::empty());
        assert!(s.attr_set_of(["A", "nope"]).unwrap_err().contains("nope"));
    }

    #[test]
    fn display_set_uses_names() {
        let s = Schema::new(["A", "B", "C"]).unwrap();
        assert_eq!(s.display_set(AttrSet::from_indices([0, 2])), "{A,C}");
        assert_eq!(s.all_attrs(), AttrSet::full(3));
    }
}
