#![forbid(unsafe_code)]
//! Relational substrate for the TANE suite.
//!
//! TANE and the baseline algorithms do not care about concrete values — only
//! about *which rows agree on which attributes* (paper, Section 2). This
//! crate therefore represents a relation column-wise with **dictionary
//! (integer) encoding**: each column stores a `u32` code per row, and two
//! rows agree on an attribute iff their codes are equal. The paper's
//! implementations read flat files into exactly this kind of representation.
//!
//! What this crate provides:
//!
//! * [`Value`] — a typed cell value (integer, float, string, missing), used
//!   at the ingestion boundary (CSV files, builders, examples).
//! * [`Schema`] — attribute names with index lookup.
//! * [`Relation`] / [`RelationBuilder`] — the dictionary-encoded relation,
//!   plus the `×n` disjoint-concatenation construction the paper uses for
//!   its scale-up experiments.
//! * [`csv`] — a dependency-free RFC-4180-style CSV reader/writer with type
//!   inference, so the CLI and examples can run on arbitrary files.
//! * [`delta`] — mutable row storage with stable dictionary codes: the
//!   write path behind the incremental discovery engine (`tane-delta`).

pub mod csv;
pub mod delta;
pub mod error;
pub mod relation;
pub mod schema;
pub mod value;

pub use delta::{DeltaStore, DeltaView, RowPatch};
pub use error::RelationError;
pub use relation::{NullSemantics, Relation, RelationBuilder};
pub use schema::Schema;
pub use value::Value;
