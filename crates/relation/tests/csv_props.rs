//! Property tests for the CSV layer: arbitrary relations survive a
//! write→read round trip with values, schema, and dependency structure
//! intact.
//!
//! Requires the `proptest` cargo feature (and a restored `proptest`
//! dev-dependency): the offline build environment cannot resolve registry
//! crates, so this suite is compiled out of the default build.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use tane_relation::csv::{read_csv_from, write_csv, CsvOptions};
use tane_relation::{Relation, Schema, Value};

/// Arbitrary cell values, including the characters CSV quoting must handle.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN canonicalization is tested in the unit
        // tests; round-tripping NaN through decimal text is out of scope.
        (-1e6f64..1e6).prop_map(Value::Float),
        "[a-zA-Z0-9 ,\"'\n£$#?-]{0,12}".prop_map(|s| {
            // The reader interprets "?" / "" as Missing and re-parses
            // numerics; normalize through the same lens the writer's output
            // will be read with.
            Value::parse(&s)
        }),
        Just(Value::Missing),
    ]
}

fn relation() -> impl Strategy<Value = Relation> {
    (1usize..=5, 0usize..=20).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(
            proptest::collection::vec(value(), n_attrs..=n_attrs),
            n_rows..=n_rows,
        )
        .prop_map(move |rows| {
            let schema = Schema::anonymous(n_attrs).unwrap();
            let mut b = Relation::builder(schema);
            for row in rows {
                b.push_row(row).unwrap();
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_preserves_cells(r in relation()) {
        let mut buf = Vec::new();
        write_csv(&r, &mut buf, b',').unwrap();
        let r2 = read_csv_from(buf.as_slice(), &CsvOptions::default()).unwrap();
        prop_assert_eq!(r2.num_rows(), r.num_rows());
        prop_assert_eq!(r2.num_attrs(), r.num_attrs());
        for t in 0..r.num_rows() {
            for a in 0..r.num_attrs() {
                let before = r.value(t, a).unwrap();
                let after = r2.value(t, a).unwrap();
                // Floats re-parse from shortest-round-trip decimal text,
                // which Rust guarantees to be exact; everything else must
                // be literally equal.
                prop_assert_eq!(before, after, "cell ({}, {})", t, a);
            }
        }
    }

    #[test]
    fn roundtrip_preserves_dictionary_structure(r in relation()) {
        let mut buf = Vec::new();
        write_csv(&r, &mut buf, b',').unwrap();
        let r2 = read_csv_from(buf.as_slice(), &CsvOptions::default()).unwrap();
        // Same agreement structure => same partitions => same FDs.
        for a in 0..r.num_attrs() {
            prop_assert_eq!(r2.cardinality(a), r.cardinality(a), "attr {}", a);
        }
        for t in 0..r.num_rows() {
            for u in (t + 1)..r.num_rows() {
                prop_assert_eq!(r2.agree_set(t, u), r.agree_set(t, u));
            }
        }
    }

    #[test]
    fn semicolon_dialect_roundtrip(r in relation()) {
        let mut buf = Vec::new();
        write_csv(&r, &mut buf, b';').unwrap();
        let opts = CsvOptions { delimiter: b';', ..CsvOptions::default() };
        let r2 = read_csv_from(buf.as_slice(), &opts).unwrap();
        prop_assert_eq!(r2.num_rows(), r.num_rows());
        for t in 0..r.num_rows() {
            for u in (t + 1)..r.num_rows() {
                prop_assert_eq!(r2.agree_set(t, u), r.agree_set(t, u));
            }
        }
    }
}
